#!/usr/bin/env python
"""N-seed fault-injection campaign over the gadget corpus and a set of
SPEC profiles, refereed by the functional oracle.

Every run perturbs the pipeline with seeded, architecturally-neutral
faults (forced mispredicts, delayed fills, spurious squashes, filter
blackouts, dropped wakeups) while the structural invariant lint stays
on.  The campaign fails — exit status 1 — if any run diverges from the
in-order oracle, violates a pipeline invariant, deadlocks, or fails to
halt.  Divergences print the case name and campaign seed, which replay
the exact run deterministically.

Run:  PYTHONPATH=src python tools/fault_campaign.py [options]

    --seeds N        number of campaign seeds (default 10)
    --smoke          quick CI configuration (2 seeds, gadgets +
                     1 SPEC profile at small scale)
    --aggressive     use the high-rate fault plan
    --benchmarks ... SPEC profiles to include (default hmmer mcf astar)
    --scale F        SPEC workload scale (default 0.1)
    --json PATH      also dump the per-run results as JSON
"""
import argparse
import json
import sys
import time

from repro.robustness import (
    FaultPlan,
    gadget_cases,
    run_campaign,
    spec_cases,
)
from repro.robustness.campaign import DEFAULT_SPEC_PROFILES


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="seeded fault-injection campaign, oracle-refereed")
    parser.add_argument("--seeds", type=int, default=10,
                        help="number of campaign seeds (default 10)")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI configuration")
    parser.add_argument("--aggressive", action="store_true",
                        help="use the high-rate fault plan")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help=f"SPEC profiles "
                             f"(default {' '.join(DEFAULT_SPEC_PROFILES)})")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="SPEC workload scale (default 0.1)")
    parser.add_argument("--json", default=None,
                        help="dump per-run results as JSON")
    parser.add_argument("--verbose", action="store_true",
                        help="print every run, not just divergences")
    args = parser.parse_args(argv)

    if args.smoke:
        seeds = range(2)
        cases = gadget_cases() + spec_cases(
            args.benchmarks or ["hmmer"], scale=min(args.scale, 0.1))
    else:
        seeds = range(args.seeds)
        cases = gadget_cases() + spec_cases(
            args.benchmarks, scale=args.scale)

    plan = FaultPlan.aggressive() if args.aggressive \
        else FaultPlan.moderate()

    def progress(outcome):
        if args.verbose or not outcome.ok:
            print(outcome.render(), flush=True)

    started = time.time()
    result = run_campaign(cases, seeds=list(seeds), plan=plan,
                          progress=progress)
    elapsed = time.time() - started

    print(f"\n{len(result.results)} runs over {len(cases)} cases x "
          f"{len(list(seeds))} seeds in {elapsed:.1f}s: "
          f"{result.total_injected} injected events, "
          f"{len(result.failures)} divergences")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"wrote {args.json}")
    if result.failures:
        print("\nDIVERGENT RUNS:")
        for failure in result.failures:
            print(failure.render())
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
