#!/usr/bin/env python3
"""Static-precision ratchet (CI entry point).

Runs the three-tier precision study (taint -> +valueset -> +symx) over
the gadget corpus and the SPEC-like workloads and enforces the
committed baseline ``benchmarks/BENCH_precision.json``::

    python tools/precision_smoke.py                  # run + check
    python tools/precision_smoke.py --write-baseline # record new floor

The check fails (exit 1) when any of these regress against the
baseline:

- the certifier's program-level ``UNKNOWN`` count **rises** — loop
  summarization/path merging resolved these rows once; they must not
  quietly come back;
- any corpus or ingested row's symbolic **verdict changes** — the
  labelled gadgets are ground truth, so a flipped verdict is a
  soundness bug, not a precision tradeoff;
- the symx tier stops being **strictly stronger** than taint+valueset.

``--raise-floor`` makes the ratchet self-tightening: a clean run whose
UNKNOWN count is *lower* than the baseline rewrites the file, so the
floor tracks genuine precision gains.
"""
from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.experiments.precision_study import (  # noqa: E402
    PrecisionStudyResult,
    run_precision_study,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks",
                                "BENCH_precision.json")
BASELINE_FORMAT = "repro-precision-baseline"

#: Labelled groups whose verdicts are pinned verbatim.
PINNED_GROUPS = ("corpus", "ingested")


def baseline_payload(result: PrecisionStudyResult) -> dict:
    """The committed shape: enough to ratchet, nothing volatile."""
    document = result.to_dict()
    return {
        "format": BASELINE_FORMAT,
        "window": document["window"],
        "scale": document["scale"],
        "unknown_count": document["unknown_count"],
        "resolved_by_tier": document["resolved_by_tier"],
        "symx_strictly_stronger": document["symx_strictly_stronger"],
        "summaries": document["summaries"],
        "verdicts": {
            row["name"]: row["verdict"]
            for row in document["rows"]
            if row["group"] in PINNED_GROUPS
        },
        "spec_verdicts": {
            row["name"]: row["verdict"]
            for row in document["rows"]
            if row["group"] == "spec"
        },
    }


def check(result: PrecisionStudyResult, baseline: dict) -> list:
    """Ratchet verdict: list of problems (empty = pass)."""
    problems = []
    current = baseline_payload(result)
    if current["unknown_count"] > baseline["unknown_count"]:
        problems.append(
            f"UNKNOWN count rose: {current['unknown_count']} > "
            f"baseline {baseline['unknown_count']}"
        )
    for name, verdict in sorted(baseline["verdicts"].items()):
        got = current["verdicts"].get(name)
        if got is None:
            problems.append(f"pinned corpus row vanished: {name}")
        elif got != verdict:
            problems.append(
                f"corpus verdict changed: {name} {verdict} -> {got}"
            )
    if not current["symx_strictly_stronger"]:
        problems.append("symx tier no longer strictly stronger than "
                        "taint+valueset")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="SPEC-like subset (default: all)")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="SPEC workload scale (default 0.1, the "
                             "study default the baseline was recorded "
                             "at)")
    parser.add_argument("--workers", type=int, default=1,
                        help="fan rows across N worker processes")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline path (default benchmarks/"
                             "BENCH_precision.json)")
    parser.add_argument("--out", default=None,
                        help="also dump the full study table as JSON")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record this run as the new baseline")
    parser.add_argument("--raise-floor", action="store_true",
                        help="rewrite the baseline when this clean run "
                             "lowers the UNKNOWN count (ratchet)")
    args = parser.parse_args(argv)

    result = run_precision_study(benchmarks=args.benchmarks,
                                 scale=args.scale, workers=args.workers)
    print(result.render())
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.to_dict(), handle, indent=1, sort_keys=True)
        print(f"wrote {args.out}")

    payload = baseline_payload(result)
    if args.write_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote baseline {args.baseline}")
        return 0

    if not os.path.exists(args.baseline):
        print(f"precision: no baseline at {args.baseline}; run "
              f"tools/precision_smoke.py --write-baseline first",
              file=sys.stderr)
        return 2
    with open(args.baseline) as handle:
        baseline = json.load(handle)
    if baseline.get("format") != BASELINE_FORMAT:
        print(f"precision: {args.baseline} is not a precision baseline "
              f"(format={baseline.get('format')!r})", file=sys.stderr)
        return 2

    problems = check(result, baseline)
    for problem in problems:
        print(f"precision REGRESSION: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"precision: UNKNOWN count {payload['unknown_count']} <= "
          f"baseline {baseline['unknown_count']}; "
          f"{len(baseline['verdicts'])} pinned verdict(s) unchanged")
    if args.raise_floor and \
            payload["unknown_count"] < baseline["unknown_count"]:
        with open(args.baseline, "w") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"precision: raised floor — UNKNOWN count "
              f"{baseline['unknown_count']} -> "
              f"{payload['unknown_count']}; rewrote {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
