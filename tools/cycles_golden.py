#!/usr/bin/env python
"""Capture / check the cycle-exactness golden file.

The hot-path optimizations in :mod:`repro.perf` (and any future
pipeline refactor) must be *cycle-exact*: the same program on the same
machine under the same protection mode must report exactly the same
:attr:`~repro.pipeline.report.SimReport.cycles` and the same attack
leakage verdicts as the unoptimized simulator.  This tool pins that
contract in ``tests/data/cycles_golden.json``:

- every corpus gadget driver (kind x variant) under all four
  protection modes — committed cycles;
- every SPEC profile at a reduced scale under all four modes —
  committed cycles;
- every Spectre PoC under all four modes — cycles *and* the leakage
  verdict (did the attack recover the secret?).

``python tools/cycles_golden.py --write`` regenerates the file (only
legitimate after an intentional timing-model change, never for a
performance-only PR); without flags it verifies and exits non-zero on
any drift.  ``tests/test_cycle_exact_golden.py`` runs the same
comparison inside the tier-1 suite.
"""
from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.analysis.corpus import (  # noqa: E402
    CORPUS_VARIANTS,
    GADGET_KINDS,
    build_corpus_variant,
)
from repro.attacks import (  # noqa: E402
    build_spectre_prime,
    build_spectre_rsb,
    build_spectre_v1,
    build_spectre_v2,
    build_spectre_v4,
    run_attack,
)
from repro.core.policy import EVALUATION_MODES, SecurityConfig  # noqa: E402
from repro.params import paper_config  # noqa: E402
from repro.pipeline.processor import Processor  # noqa: E402
from repro.workloads import spec_names, spec_program  # noqa: E402

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "tests", "data", "cycles_golden.json",
)

#: SPEC profiles are pinned at a reduced scale so the golden sweep
#: stays fast enough for the tier-1 suite.
SPEC_SCALE = 0.1

_ATTACKS = {
    "v1": build_spectre_v1,
    "v2": build_spectre_v2,
    "v4": build_spectre_v4,
    "rsb": build_spectre_rsb,
    "prime": build_spectre_prime,
}


def capture() -> Dict[str, Any]:
    """Run the pinned workloads and collect cycles + verdicts."""
    machine = paper_config()
    golden: Dict[str, Any] = {
        "format": "repro-cycles-golden",
        "version": 1,
        "spec_scale": SPEC_SCALE,
        "corpus": {},
        "spec": {},
        "attacks": {},
    }
    for kind in GADGET_KINDS:
        for variant in CORPUS_VARIANTS:
            program = build_corpus_variant(kind, variant)
            per_mode: Dict[str, int] = {}
            for mode in EVALUATION_MODES:
                cpu = Processor(program, machine=machine,
                                security=SecurityConfig(mode=mode))
                per_mode[mode.value] = cpu.run().cycles
            golden["corpus"][f"{kind}:{variant}"] = per_mode
    for name in spec_names():
        per_mode = {}
        for mode in EVALUATION_MODES:
            program = spec_program(name, scale=SPEC_SCALE)
            cpu = Processor(program, machine=machine,
                            security=SecurityConfig(mode=mode))
            per_mode[mode.value] = cpu.run().cycles
        golden["spec"][name] = per_mode
    for name, build in _ATTACKS.items():
        per_mode_attack: Dict[str, Dict[str, Any]] = {}
        for mode in EVALUATION_MODES:
            attack = build(machine=machine)
            result = run_attack(attack, machine=machine,
                                security=SecurityConfig(mode=mode))
            per_mode_attack[mode.value] = {
                "cycles": result.report.cycles,
                "leaked": bool(result.success),
            }
        golden["attacks"][name] = per_mode_attack
    return golden


def diff(expected: Dict[str, Any], actual: Dict[str, Any]) -> list:
    """Human-readable list of mismatches between two captures."""
    problems = []
    for section in ("corpus", "spec", "attacks"):
        exp, act = expected.get(section, {}), actual.get(section, {})
        for key in sorted(set(exp) | set(act)):
            if exp.get(key) != act.get(key):
                problems.append(
                    f"{section}/{key}: expected {exp.get(key)!r}, "
                    f"got {act.get(key)!r}"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="(re)write the golden file")
    args = parser.parse_args(argv)
    actual = capture()
    if args.write:
        os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
        with open(GOLDEN_PATH, "w") as handle:
            json.dump(actual, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote {os.path.relpath(GOLDEN_PATH)}")
        return 0
    with open(GOLDEN_PATH) as handle:
        expected = json.load(handle)
    problems = diff(expected, actual)
    if problems:
        print("cycle-exactness golden MISMATCH:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    runs = (len(expected["corpus"]) + len(expected["spec"])
            + len(expected["attacks"])) * len(EVALUATION_MODES)
    print(f"cycle-exactness golden OK ({runs} pinned runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
