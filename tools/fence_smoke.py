#!/usr/bin/env python
"""Fence-synthesis smoke check: repair every corpus gadget and attack.

The three-way verification contract of ``repro.analysis.fencesynth``
is asserted end to end:

1. every unsafe corpus gadget gets a synthesized placement that is
   strictly smaller than fence-all, and the rewritten image re-scans
   clean (taint scan + value-set refinement);
2. the fenced image is architecturally equivalent to the original on
   the in-order oracle (modulo the documented address remapping);
3. every full Spectre attack program (V1/V2/V4/RSB), fenced by the
   synthesizer, recovers nothing on the *unprotected* core — zero
   secret leakage where the unfenced attack demonstrably leaks.

Masked corpus variants must synthesize to zero fences (the value-set
refinement proves the masking sufficient).

Run:  PYTHONPATH=src python tools/fence_smoke.py [--verbose]

Exit status 0 iff every assertion holds.
"""
from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.analysis import (
    analyze_program,
    fence_all,
    oracle_equivalent,
    refine_report,
    synthesize_fences,
    uses_rdcycle,
)
from repro.analysis.corpus import (
    GADGET_KINDS,
    build_corpus_variant,
    corpus_secret_words,
)
from repro.attacks import (
    build_spectre_rsb,
    build_spectre_v1,
    build_spectre_v2,
    build_spectre_v4,
)
from repro.attacks.harness import run_attack
from repro.core.policy import SecurityConfig

_ATTACK_BUILDERS = {
    "v1": build_spectre_v1,
    "v2": build_spectre_v2,
    "v4": build_spectre_v4,
    "rsb": build_spectre_rsb,
}


def check_corpus(verbose: bool) -> int:
    failures = 0
    secrets = corpus_secret_words()
    print("== corpus repair ==")
    for kind in GADGET_KINDS:
        program = build_corpus_variant(kind, "unsafe")
        synthesis = synthesize_fences(program, secret_words=secrets,
                                      name=f"{kind}-unsafe")
        blanket = fence_all(program)
        rescan = analyze_program(synthesis.program)
        refined = refine_report(synthesis.program, rescan,
                                secret_words=secrets)
        oracle_ok = oracle_equivalent(program, synthesis.rewrite)
        ok = (synthesis.clean
              and 1 <= synthesis.fence_count < blanket.inserted
              and not refined.confirmed
              and oracle_ok)
        failures += 0 if ok else 1
        print(f"  {kind:4s} unsafe: {synthesis.fence_count} fence(s) "
              f"vs fence-all {blanket.inserted}, rescan "
              f"{'clean' if not refined.confirmed else 'DIRTY'}, "
              f"oracle {'OK' if oracle_ok else 'MISMATCH'}  "
              f"{'ok' if ok else 'FAIL'}")
        if verbose:
            print(f"       {synthesis.render()}")

        masked = build_corpus_variant(kind, "masked")
        msynth = synthesize_fences(masked, secret_words=secrets,
                                   name=f"{kind}-masked")
        mok = msynth.clean and msynth.fence_count == 0
        failures += 0 if mok else 1
        print(f"  {kind:4s} masked: {msynth.fence_count} fence(s) "
              f"(refinement proves masking)  {'ok' if mok else 'FAIL'}")
    return failures


def check_attacks(verbose: bool) -> int:
    failures = 0
    print("== fenced attacks leak nothing ==")
    for kind, builder in _ATTACK_BUILDERS.items():
        attack = builder()
        synthesis = synthesize_fences(
            attack.program, secret_words=corpus_secret_words(),
            name=f"spectre-{kind}",
        )
        # attacks read RDCYCLE, so the oracle leg is out of scope;
        # the zero-leak run below is their equivalence check
        assert uses_rdcycle(attack.program)
        baseline = run_attack(builder(),
                              security=SecurityConfig.origin())
        fenced = dataclasses.replace(builder(), program=synthesis.program)
        repaired = run_attack(fenced, security=SecurityConfig.origin())
        ok = (synthesis.clean
              and baseline.success
              and not repaired.success)
        failures += 0 if ok else 1
        print(f"  {kind:4s}: unfenced "
              f"{'LEAKED' if baseline.success else 'NO-LEAK (FAIL)'}, "
              f"fenced ({synthesis.fence_count} fence(s)) "
              f"{'no-leak' if not repaired.success else 'LEAKED'}  "
              f"{'ok' if ok else 'FAIL'}")
        if verbose:
            print(f"       {synthesis.render()}")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()
    failures = check_corpus(args.verbose)
    failures += check_attacks(args.verbose)
    if failures:
        print(f"\nFAILED: {failures} check(s)")
        return 1
    print("\nall fence-synthesis checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
