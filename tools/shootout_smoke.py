#!/usr/bin/env python3
"""Defense-shootout security ratchet (CI entry point).

Runs a reduced-scale shootout — every registered defense against the
full attack suite, one secret per attack, one SPEC profile for the
overhead column — and enforces the committed baseline
``benchmarks/BENCH_shootout.json``::

    python tools/shootout_smoke.py                  # run + check
    python tools/shootout_smoke.py --write-baseline # record new floor

The check fails (exit 1) when any of these regress:

- the ``origin`` positive control stops leaking on any attack — the
  channel itself broke, so every "defense blocks it" claim below is
  vacuous;
- any defense recovers **more** secrets on an attack than its
  committed baseline — a protection regression (fewer is fine: the
  ratchet only tightens);
- a registered defense is missing from the run, or a baseline row
  disappeared from the registry without ``--write-baseline``;
- a **pinned** V4 cell drifts, in either direction: ``delay_on_miss``
  and ``eager_delay`` must keep their documented store-bypass leak
  (the blind spot of docs/defenses.md stays reproduced), and
  ``delay_on_miss_ss`` — the store-set closure of that blind spot —
  must block every attack outright.  Pins apply to the *run*, so even
  ``--write-baseline`` cannot retire them.
"""
from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.defense import defense_names  # noqa: E402
from repro.experiments.shootout import (  # noqa: E402
    ShootoutResult,
    print_progress,
    run_defense_shootout,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks",
                                "BENCH_shootout.json")
BASELINE_FORMAT = "repro-shootout-baseline"

#: The reduced CI configuration: every defense, every attack, one
#: secret each, one benchmark for the overhead column, no evolve leg.
SMOKE_BENCHMARKS = ["bzip2"]
SMOKE_SCALE = 0.02
SMOKE_TRIALS = 1


def baseline_payload(result: ShootoutResult) -> dict:
    """The committed shape: leak counts only — overhead and area are
    informational, not ratcheted (they move with honest model work)."""
    return {
        "format": BASELINE_FORMAT,
        "attacks": list(result.attacks),
        "trials": {row.defense: dict(row.trials) for row in result.rows},
        "recovered": {row.defense: dict(row.recovered)
                      for row in result.rows},
    }


#: Defenses whose V4 leak is a *documented* blind spot: the cell must
#: keep leaking (tests/test_attacks.py pins the same fact end-to-end).
BLIND_SPOT_DEFENSES = ("delay_on_miss", "eager_delay")
#: The store-set closure: zero leaks everywhere, by construction.
CLOSURE_DEFENSE = "delay_on_miss_ss"


def check_pinned(result: ShootoutResult) -> list:
    """Baseline-independent pins on the V4 blind spot and its closure."""
    problems = []
    rows = {row.defense: row for row in result.rows}
    for name in BLIND_SPOT_DEFENSES:
        row = rows.get(name)
        if row is None:
            continue  # reported by check() already
        if row.recovered.get("v4", 0) < row.trials.get("v4", 0):
            problems.append(
                f"{name}: the pinned V4 blind-spot leak disappeared "
                f"({row.recovered.get('v4', 0)}/{row.trials.get('v4', 0)} "
                f"recovered) — if the defense really grew store "
                f"coverage, update docs/defenses.md and the pinned "
                f"tests, not just this baseline")
    closure = rows.get(CLOSURE_DEFENSE)
    if closure is not None:
        for attack, n in closure.trials.items():
            got = closure.recovered.get(attack, 0)
            if got:
                problems.append(
                    f"{CLOSURE_DEFENSE}: must block every attack but "
                    f"recovered {got}/{n} on {attack}")
    return problems


def check(result: ShootoutResult, baseline: dict) -> list:
    problems = []
    rows = {row.defense: row for row in result.rows}

    origin = rows.get("origin")
    if origin is None:
        problems.append("origin control missing from the run")
    else:
        for attack, n in origin.trials.items():
            if origin.recovered.get(attack, 0) < n:
                problems.append(
                    f"origin positive control stopped leaking on "
                    f"{attack} ({origin.recovered.get(attack, 0)}/{n})")

    recovered = baseline.get("recovered", {})
    for name in defense_names():
        if name not in rows:
            problems.append(f"registered defense '{name}' missing "
                            f"from the run")
            continue
        if name not in recovered:
            problems.append(
                f"defense '{name}' has no committed baseline row — "
                f"run with --write-baseline")
            continue
        for attack, ceiling in recovered[name].items():
            got = rows[name].recovered.get(attack)
            if got is None:
                problems.append(f"{name}: attack '{attack}' missing "
                                f"from the run")
            elif got > ceiling:
                problems.append(
                    f"{name}: leaks more on {attack} than the "
                    f"baseline allows ({got} > {ceiling})")
    for name in recovered:
        if name not in rows:
            problems.append(
                f"baseline row '{name}' no longer registered — "
                f"run with --write-baseline")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--write-baseline", action="store_true",
                        help="record the current leak counts as the "
                             "new committed ceiling")
    parser.add_argument("--out", default=None,
                        help="also write the full frontier JSON here")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    result = run_defense_shootout(
        benchmarks=SMOKE_BENCHMARKS, scale=SMOKE_SCALE,
        trials=SMOKE_TRIALS, evolve=False,
        progress=None if args.quiet else print_progress,
    )
    print(result.render())

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
            handle.write("\n")

    pinned_problems = check_pinned(result)
    if pinned_problems:
        print("\nshootout pinned cells FAILED:", file=sys.stderr)
        for problem in pinned_problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1

    if args.write_baseline:
        with open(args.baseline, "w") as handle:
            json.dump(baseline_payload(result), handle, indent=2)
            handle.write("\n")
        print(f"baseline written: {args.baseline}")
        return 0

    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; "
              f"run with --write-baseline first", file=sys.stderr)
        return 1
    if baseline.get("format") != BASELINE_FORMAT:
        print(f"unrecognized baseline format in {args.baseline}",
              file=sys.stderr)
        return 1

    problems = check(result, baseline)
    if problems:
        print("\nshootout ratchet FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nshootout ratchet OK: origin leaks everywhere, "
          "no defense leaks above its committed ceiling")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
