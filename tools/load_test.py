#!/usr/bin/env python3
"""Replayable load test for the ``repro serve`` daemon.

Starts an in-process server, replays a seeded mixed workload against
it from concurrent client threads, and writes
``benchmarks/BENCH_serve.json`` with the service-level numbers the
repo tracks: p50/p99 latency, completed jobs/sec, shed rate, degraded
rate, cache hit rate::

    python tools/load_test.py                    # full run (>=1000 requests)
    python tools/load_test.py --smoke            # reduced scale for CI
    python tools/load_test.py --check            # also assert invariants
    python tools/load_test.py --seed 7 --out /tmp/bench.json

The workload mixes every traffic class the daemon must survive:

- cache-friendly taint/valueset scans (duplicate-heavy on purpose, to
  measure the content-addressed cache);
- symx certification jobs, some under deliberately impossible
  wall-clock budgets (must *degrade*, never hang);
- simulations, some poisoned with a never-filling fault plan (must
  come back as degraded deadlock results, not dead workers);
- a hot client that outruns its token bucket (must be shed with
  explicit 429s).

``--check`` asserts the acceptance invariants: zero unhandled errors,
every shed explicit, degradation tagged, duplicates cache-served.
"""
import argparse
import asyncio
import json
import os
import platform
import random
import statistics
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import (  # noqa: E402
    ReproServer,
    ServeClient,
    ServeClientError,
    ServeConfig,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_OUT = os.path.join(REPO_ROOT, "benchmarks", "BENCH_serve.json")

FORMAT = "repro-bench-serve"
VERSION = 1

#: The duplicate-heavy program pool (small on purpose: most requests
#: repeat one of these, which is what exercises the cache).
CORPUS_POOL = ["corpus:v1", "corpus:v1:fenced", "corpus:v2",
               "corpus:v4", "corpus:rsb"]
SYMX_POOL = ["corpus:v1", "corpus:v2", "corpus:v4"]

#: Tight enough that even the smallest corpus gadget cannot finish
#: certification before the deadline passes (the explorer's solver
#: work alone takes milliseconds): forces the degradation path.
TIGHT_WALL_CLOCK = 0.0005

POISON_FAULT = {"fill_delay_rate": 1.0, "fill_delay_max": 1_000_000_000}


def build_workload(rng, total):
    """The seeded request list: ``(class_name, body)`` pairs."""
    requests = []
    for index in range(total):
        roll = rng.random()
        client = f"client-{rng.randrange(16)}"
        if roll < 0.58:
            body = {"spec": rng.choice(CORPUS_POOL), "tier": "taint",
                    "client": client}
            requests.append(("taint", body))
        elif roll < 0.76:
            body = {"spec": rng.choice(CORPUS_POOL), "tier": "valueset",
                    "client": client}
            requests.append(("valueset", body))
        elif roll < 0.84:
            body = {"spec": rng.choice(SYMX_POOL), "tier": "symx",
                    "client": client}
            requests.append(("symx", body))
        elif roll < 0.90:
            body = {"spec": rng.choice(SYMX_POOL), "tier": "symx",
                    "budgets": {"wall_clock": TIGHT_WALL_CLOCK},
                    "client": client}
            requests.append(("symx_tight", body))
        elif roll < 0.95:
            body = {"spec": rng.choice(CORPUS_POOL), "kind": "simulate",
                    "mode": "cache_hit_tpbuf",
                    "budgets": {"max_cycles": 50_000},
                    "client": client}
            requests.append(("simulate", body))
        else:
            body = {"spec": "corpus:v1", "kind": "simulate",
                    "fault": dict(POISON_FAULT),
                    "budgets": {"watchdog_cycles": 2_000},
                    "client": client}
            requests.append(("poisoned", body))
    return requests


class Outcome:
    """One request's fate, as the client saw it."""

    __slots__ = ("cls", "latency_s", "status", "shed", "degraded",
                 "cached", "error")

    def __init__(self, cls, latency_s, status, shed=False,
                 degraded=False, cached=False, error=None):
        self.cls = cls
        self.latency_s = latency_s
        self.status = status
        self.shed = shed
        self.degraded = degraded
        self.cached = cached
        self.error = error


def drive_one(client, cls, body, job_timeout):
    started = time.monotonic()
    try:
        response = client.submit(body)
    except ServeClientError as exc:
        return Outcome(cls, time.monotonic() - started, 0,
                       error=f"transport: {exc}")
    if response.shed:
        reason = response.payload.get("reason")
        if reason not in ("rate_limited", "queue_full"):
            return Outcome(cls, time.monotonic() - started, 429,
                           error=f"shed without explicit reason: "
                                 f"{response.payload}")
        return Outcome(cls, time.monotonic() - started, 429, shed=True)
    if not response.ok:
        return Outcome(cls, time.monotonic() - started, response.status,
                       error=f"unexpected status {response.status}: "
                             f"{response.payload}")
    payload = response.payload
    cached = bool(payload.get("cached"))
    if "result" in payload:
        result = payload["result"]
    else:
        job_id = payload["job_id"]
        try:
            view = client.wait(job_id, timeout=job_timeout)
        except ServeClientError as exc:
            return Outcome(cls, time.monotonic() - started,
                           response.status, error=str(exc))
        result = view.get("result", {})
    latency = time.monotonic() - started
    if not isinstance(result, dict) or result.get("status") == "error":
        return Outcome(cls, latency, response.status,
                       error=f"job error: {result}")
    return Outcome(cls, latency, response.status,
                   degraded=bool(result.get("degraded")), cached=cached)


def run_load(args):
    rng = random.Random(args.seed)
    requests = build_workload(rng, args.requests)

    loop = asyncio.new_event_loop()
    holder = {}
    started = threading.Event()

    def runner():
        asyncio.set_event_loop(loop)

        async def main():
            server = ReproServer(ServeConfig(
                port=0, workers=args.workers,
                queue_depth=args.queue_depth,
                rate=args.rate, burst=args.burst,
                checkpoint=args.checkpoint))
            await server.start()
            holder["server"] = server
            started.set()
            await server.serve_forever()

        loop.run_until_complete(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    if not started.wait(10):
        raise RuntimeError("server failed to start")
    server = holder["server"]
    port = server.port

    outcomes = []
    outcomes_lock = threading.Lock()
    cursor = {"next": 0}

    def worker():
        client = ServeClient(port=port, timeout=30.0)
        while True:
            with outcomes_lock:
                index = cursor["next"]
                if index >= len(requests):
                    return
                cursor["next"] = index + 1
            cls, body = requests[index]
            outcome = drive_one(client, cls, body, args.job_timeout)
            with outcomes_lock:
                outcomes.append(outcome)

    wall_started = time.monotonic()
    threads = [threading.Thread(target=worker)
               for _ in range(args.clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # The hot client: one identity firing cache-warm requests
    # back-to-back, deliberately faster than its token bucket refills.
    # The excess MUST come back as explicit 429s.
    hot_client = ServeClient(port=port, timeout=30.0)
    hot_total = args.hot_burst or int(args.burst * 3)
    for _ in range(hot_total):
        outcome = drive_one(
            hot_client, "hot",
            {"spec": "corpus:v1", "tier": "taint",
             "client": "hot-client"},
            args.job_timeout)
        outcomes.append(outcome)
    wall = time.monotonic() - wall_started

    stats = ServeClient(port=port).stats()
    drain_started = time.monotonic()
    future = asyncio.run_coroutine_threadsafe(server.shutdown(), loop)
    future.result(timeout=120)
    drain_s = time.monotonic() - drain_started
    thread.join(timeout=10)

    return summarize(args, outcomes, wall, drain_s, stats)


def percentile(values, fraction):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def summarize(args, outcomes, wall, drain_s, stats):
    errors = [o for o in outcomes if o.error]
    completed = [o for o in outcomes if not o.error and not o.shed]
    shed = [o for o in outcomes if o.shed]
    degraded = [o for o in completed if o.degraded]
    latencies = [o.latency_s for o in completed]

    by_class = {}
    for outcome in outcomes:
        row = by_class.setdefault(outcome.cls, {
            "requests": 0, "completed": 0, "shed": 0,
            "degraded": 0, "errors": 0})
        row["requests"] += 1
        if outcome.error:
            row["errors"] += 1
        elif outcome.shed:
            row["shed"] += 1
        else:
            row["completed"] += 1
            if outcome.degraded:
                row["degraded"] += 1

    total = len(outcomes)
    report = {
        "format": FORMAT,
        "version": VERSION,
        "python": platform.python_version(),
        "seed": args.seed,
        "requests": total,
        "clients": args.clients,
        "workers": args.workers,
        "queue_depth": args.queue_depth,
        "rate": args.rate,
        "burst": args.burst,
        "wall_s": round(wall, 3),
        "drain_s": round(drain_s, 3),
        "jobs_per_sec": round(len(completed) / wall, 2) if wall else 0.0,
        "completed": len(completed),
        "shed": len(shed),
        "shed_rate": round(len(shed) / total, 4) if total else 0.0,
        "degraded": len(degraded),
        "degraded_rate": round(len(degraded) / len(completed), 4)
        if completed else 0.0,
        "unhandled_errors": len(errors),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1e3, 2),
            "p90": round(percentile(latencies, 0.90) * 1e3, 2),
            "p99": round(percentile(latencies, 0.99) * 1e3, 2),
            "mean": round(statistics.fmean(latencies) * 1e3, 2)
            if latencies else 0.0,
        },
        "cache": stats["cache"],
        "admission": stats["admission"],
        "server": stats["server"],
        "by_class": by_class,
    }
    if errors:
        report["error_samples"] = sorted(
            {o.error for o in errors})[:10]
    return report


def check(report):
    """The acceptance invariants; returns a list of violations."""
    problems = []
    if report["unhandled_errors"]:
        problems.append(
            f"{report['unhandled_errors']} unhandled error(s): "
            f"{report.get('error_samples')}")
    if report["cache"]["hits"] == 0:
        problems.append("duplicate submissions never hit the cache")
    admission = report["admission"]
    if admission["shed"] != report["shed"]:
        problems.append(
            f"shed accounting mismatch: admission says "
            f"{admission['shed']}, clients saw {report['shed']}")
    by_class = report["by_class"]
    hot = by_class.get("hot", {"requests": 0, "shed": 0})
    if hot["requests"] and hot["shed"] == 0:
        problems.append("hot client was never rate-limited")
    for cls in ("symx_tight", "poisoned"):
        row = by_class.get(cls)
        if row and row["completed"] and not row["degraded"]:
            problems.append(
                f"{cls} jobs completed without a degraded tag")
        if row and row["errors"]:
            problems.append(f"{cls} produced unhandled errors")
    if report["latency_ms"]["p99"] <= 0 and report["completed"]:
        problems.append("latency percentiles are empty")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads (default 8)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--queue-depth", type=int, default=64)
    parser.add_argument("--rate", type=float, default=50.0)
    parser.add_argument("--burst", type=float, default=60.0)
    parser.add_argument("--seed", type=int, default=20260808)
    parser.add_argument("--job-timeout", type=float, default=120.0)
    parser.add_argument("--hot-burst", type=int, default=None,
                        help="hot-client burst size "
                             "(default: 3x --burst)")
    parser.add_argument("--checkpoint", default=None,
                        help="journal path (default: ephemeral)")
    parser.add_argument("--out", default=DEFAULT_OUT)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scale for CI (200 requests)")
    parser.add_argument("--check", action="store_true",
                        help="assert the acceptance invariants")
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests = min(args.requests, 200)

    report = run_load(args)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")

    print(f"load test: {report['requests']} request(s) in "
          f"{report['wall_s']}s -> {report['jobs_per_sec']} jobs/sec")
    print(f"  latency p50={report['latency_ms']['p50']}ms "
          f"p99={report['latency_ms']['p99']}ms")
    print(f"  shed={report['shed']} ({report['shed_rate']:.1%}) "
          f"degraded={report['degraded']} "
          f"({report['degraded_rate']:.1%}) "
          f"cache_hit_rate={report['cache']['hit_rate']:.1%}")
    print(f"  unhandled_errors={report['unhandled_errors']}")
    print(f"  wrote {args.out}")

    if args.check:
        problems = check(report)
        if problems:
            for problem in problems:
                print(f"CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print("  all acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
