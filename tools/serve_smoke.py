#!/usr/bin/env python3
"""CI smoke test for the ``repro serve`` daemon — the real thing.

Unlike ``tools/load_test.py`` (in-process server, statistical load),
this drives the daemon exactly the way an operator does: spawn
``python -m repro.cli serve`` as a subprocess, speak HTTP to it, then
SIGTERM it and require a clean drain.  Asserts, end to end:

1.  health check answers;
2.  a sync taint scan answers correctly (the v1 gadget is flagged,
    its fenced variant is clean);
3.  a symx certification job completes with the right verdict;
4.  a duplicate submission pair is cache-served (second one instant);
5.  an impossible budget degrades (tagged, UNKNOWN, never hangs);
6.  a poisoned program (never-filling fault plan) comes back as a
    degraded deadlock result and the worker pool stays healthy;
7.  a hot client is shed with explicit 429s;
8.  jobs survive the daemon: the journal holds every background job;
9.  SIGTERM drains within the grace window, exit code 0.

Exits non-zero on the first violated assertion.  Budget: well under
two minutes.
"""
import os
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeClient  # noqa: E402
from repro.serve.jobs import JobStore  # noqa: E402

PORT = int(os.environ.get("SERVE_SMOKE_PORT", "18431"))

FAILURES = []


def check(condition, label):
    marker = "ok" if condition else "FAIL"
    print(f"  [{marker}] {label}")
    if not condition:
        FAILURES.append(label)


def main():
    started = time.monotonic()
    journal = os.path.join(tempfile.mkdtemp(prefix="repro-serve-"),
                           "jobs.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(__file__), "..", "src")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(PORT), "--workers", "2",
         "--rate", "30", "--burst", "20",
         "--checkpoint", journal, "--drain-grace", "60"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        client = ServeClient(port=PORT, timeout=30.0)
        client.wait_healthy(15.0)
        check(True, "daemon healthy")

        # 2. Sync tier correctness.
        _, unsafe = client.submit_and_wait(
            {"spec": "corpus:v1", "tier": "taint", "client": "smoke"})
        _, fenced = client.submit_and_wait(
            {"spec": "corpus:v1:fenced", "tier": "taint",
             "client": "smoke"})
        check(unsafe and unsafe["status"] == "ok"
              and unsafe["taint"]["findings"], "v1 gadget flagged")
        check(fenced and fenced["status"] == "ok"
              and not fenced["taint"]["findings"],
              "fenced v1 clean")

        # 3 + 4. Background certification and the duplicate pair.
        body = {"spec": "corpus:v1", "tier": "symx", "client": "smoke"}
        first = client.submit(body)
        job_id = first.payload["job_id"]
        view = client.wait(job_id, timeout=60.0)
        result = view["result"]
        check(result["symx"]["verdict"] == "LEAKY"
              and not result["degraded"], "symx verdict LEAKY")
        dup = client.submit(body)
        check(dup.payload.get("cached") is True
              and dup.payload.get("state") == "done",
              "duplicate submission cache-served")

        # 5. Impossible budget -> tagged degradation, instantly.
        _, tight = client.submit_and_wait(
            {"spec": "corpus:v2", "tier": "symx",
             "budgets": {"wall_clock": 0.0005}, "client": "smoke"},
            timeout=60.0)
        check(tight and tight["degraded"]
              and tight["tier_answered"] == "valueset"
              and tight["symx"]["verdict"] == "UNKNOWN",
              "tight budget degrades to valueset")

        # 6. Poisoned program: degraded deadlock, pool survives.
        _, poisoned = client.submit_and_wait(
            {"spec": "corpus:v1", "kind": "simulate",
             "fault": {"fill_delay_rate": 1.0,
                       "fill_delay_max": 1_000_000_000},
             "budgets": {"watchdog_cycles": 2_000},
             "client": "smoke"}, timeout=60.0)
        check(poisoned and poisoned["degraded"]
              and poisoned["warnings"][0]["kind"] == "deadlock",
              "poisoned job degrades to deadlock report")
        check(client.health().ok, "pool healthy after poison")
        _, after = client.submit_and_wait(
            {"spec": "corpus:v2", "tier": "taint", "client": "smoke"})
        check(after is not None and after["status"] == "ok",
              "work still served after poison")

        # 7. Hot client shed with explicit 429s.
        shed = 0
        for _ in range(60):
            response = client.submit(
                {"spec": "corpus:v1", "tier": "taint",
                 "client": "hot"})
            if response.shed:
                shed += 1
                reason = response.payload.get("reason")
                check(reason in ("rate_limited", "queue_full"),
                      f"shed reason explicit ({reason})")
                break
        check(shed > 0, "hot client rate-limited")

        # 8. The journal holds the background jobs durably.
        _, jobs = JobStore(journal).snapshot()
        check(any(j.submission.tier.value == "symx"
                  for j in jobs.values()),
              "journal records background jobs")

        stats = client.stats()
        check(stats["server"]["errors"] == 0, "zero unhandled errors")

        # 9. Clean SIGTERM drain.
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=90)
        except subprocess.TimeoutExpired:
            check(False, "drained within grace")
        else:
            check(daemon.returncode == 0, "drain exit code 0")
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
        output = daemon.stdout.read() if daemon.stdout else ""
        if output:
            print("--- daemon output ---")
            print(output.rstrip())

    elapsed = time.monotonic() - started
    print(f"serve smoke: {elapsed:.1f}s, "
          f"{len(FAILURES)} failure(s)")
    check(elapsed < 120, "finished under two minutes")
    if FAILURES:
        for failure in FAILURES:
            print(f"FAILED: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
