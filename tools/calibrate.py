#!/usr/bin/env python
"""Profile-calibration sweep: run SPEC profiles under the four modes
and print the characteristics the profiles are tuned against
(Table V bands).

Used when adjusting `repro/workloads/spec2006.py` knobs.

Usage:
    python tools/calibrate.py            # all 22 profiles
    python tools/calibrate.py lbm mcf    # a subset
"""
import sys
import time

from repro import Processor, SecurityConfig, paper_config
from repro.workloads import spec_names, spec_program


def main(argv):
    names = argv or spec_names()
    print(f"{'bench':<11} {'l1hit':>6} {'mpred':>6} | {'base%':>7} "
          f"{'ch%':>6} {'tp%':>6} | {'b_blk':>6} {'ch_blk':>6} "
          f"{'tp_blk':>6} {'s_hit':>6} {'mism':>6}")
    start = time.time()
    for name in names:
        program = spec_program(name)
        reports = {}
        for key, security in [
            ("o", SecurityConfig.origin()),
            ("b", SecurityConfig.baseline()),
            ("c", SecurityConfig.cache_hit()),
            ("t", SecurityConfig.cache_hit_tpbuf()),
        ]:
            cpu = Processor(program, machine=paper_config(),
                            security=security)
            reports[key] = cpu.run(max_cycles=8_000_000)
        origin = reports["o"].cycles
        print(
            f"{name:<11} {reports['o'].l1d_hit_rate:>6.1%} "
            f"{reports['o'].branch_mispredict_rate:>6.1%} | "
            f"{reports['b'].cycles / origin - 1:>7.1%} "
            f"{reports['c'].cycles / origin - 1:>6.1%} "
            f"{reports['t'].cycles / origin - 1:>6.1%} | "
            f"{reports['b'].blocked_rate:>6.1%} "
            f"{reports['c'].blocked_rate:>6.1%} "
            f"{reports['t'].blocked_rate:>6.1%} "
            f"{reports['c'].speculative_hit_rate:>6.1%} "
            f"{reports['t'].spattern_mismatch_rate:>6.1%}",
            flush=True,
        )
    print(f"wall {time.time() - start:.0f}s")


if __name__ == "__main__":
    main(sys.argv[1:])
