#!/usr/bin/env python
"""Sweep the gadget corpus through the symbolic certifier.

This is the end-to-end acceptance check for ``repro.analysis.symx``:

- every *unfenced* corpus driver must be ``LEAKY`` with at least one
  witness, and every witness must replay on the dynamic pipeline
  (unsafe mode) to a real leaked cache line;
- every *fenced* and *masked* variant must be ``PROVED_SAFE``;
- the fence-synthesized repair of each unfenced driver must also be
  ``PROVED_SAFE`` (synthesize → certify closes the loop);
- no program may come back ``UNKNOWN`` at the default budgets.

Run:  PYTHONPATH=src python tools/certify_corpus.py [--verbose]

Exit status 0 iff every assertion holds.
"""
from __future__ import annotations

import argparse
import sys

from repro.analysis.corpus import (
    CORPUS_VARIANTS,
    GADGET_KINDS,
    build_corpus_variant,
    corpus_secret_words,
)
from repro.analysis.fencesynth import synthesize_fences
from repro.analysis.symx import CertifyResult, Verdict, certify_program


def _check(name: str, result: CertifyResult, expect: Verdict,
           verbose: bool, *, replay: bool = True) -> int:
    """Print one line per certification; return the failure count."""
    failures = 0
    problems = []
    if result.verdict is not expect:
        problems.append(f"expected {expect.value}")
    if result.verdict is Verdict.UNKNOWN:
        problems.append("UNKNOWN at default budgets")
    if expect is Verdict.LEAKY:
        if not result.leaks:
            problems.append("no witness")
        if replay:
            not_replayed = [
                leak for leak in result.leaks
                if leak.replay is None or not leak.replay.reproduced
            ]
            if not_replayed:
                problems.append(
                    f"{len(not_replayed)} witness(es) failed dynamic "
                    "replay"
                )
    failures += 1 if problems else 0
    status = "ok" if not problems else "FAIL: " + "; ".join(problems)
    witnesses = len(result.leaks)
    replayed = sum(1 for leak in result.leaks
                   if leak.replay is not None and leak.replay.reproduced)
    print(f"  {name:16s}: {result.verdict.value:12s} "
          f"{witnesses} witness(es), {replayed} replayed, "
          f"{result.paths} path(s)  [{status}]")
    if verbose:
        print("    " + result.render().replace("\n", "\n    "))
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true",
                        help="print the full certificate per program")
    parser.add_argument("--no-replay", action="store_true",
                        help="skip dynamic witness replay (faster; the "
                             "replay assertions are then vacuous)")
    args = parser.parse_args(argv)

    secrets = corpus_secret_words()
    replay = not args.no_replay
    failures = 0

    print("== corpus variants ==")
    for kind in GADGET_KINDS:
        for variant in CORPUS_VARIANTS:
            name = f"{kind}-{variant}"
            result = certify_program(
                build_corpus_variant(kind, variant),
                secret_words=secrets, replay=replay, name=name,
            )
            expect = (Verdict.LEAKY if variant == "unsafe"
                      else Verdict.PROVED_SAFE)
            failures += _check(name, result, expect, args.verbose,
                               replay=replay)

    print("== synthesized repairs ==")
    for kind in GADGET_KINDS:
        synthesis = synthesize_fences(
            build_corpus_variant(kind, "unsafe"),
            secret_words=secrets, name=f"{kind}-synth",
        )
        result = certify_program(
            synthesis.program, secret_words=secrets,
            replay=replay, name=f"{kind}-synth",
        )
        failures += _check(f"{kind}-synth ({len(synthesis.fence_pcs)} "
                           "fence)", result, Verdict.PROVED_SAFE,
                           args.verbose)

    if failures:
        print(f"\n{failures} certification check(s) FAILED")
        return 1
    print("\nall certification checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
