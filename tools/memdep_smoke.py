#!/usr/bin/env python3
"""Memory-dependence analysis smoke (CI entry point).

Drives the whole memdep stack end-to-end on the corpus V4 gadgets and
the attack suite::

    python tools/memdep_smoke.py

Checks, all of which must hold (exit 1 otherwise):

1. **Static store sets** — the unsafe V4 corpus gadget has a non-empty
   may-bypass table, the fenced variant has zero pairs, and the
   summary's content hash is deterministic across recomputation.
2. **The V4 blind spot and its closure** — run the Spectre V4 attack
   dynamically: ``delay_on_miss`` must leak the secret (the documented
   blind spot stays reproduced) and ``delay_on_miss_ss`` must block it
   while staying clean on every other suite attack.
3. **Pre-screen cross-validation** — the static defense-coverage
   matrix must agree with the dynamic shootout on every
   (attack, defense) cell; disagreeing cells are printed verbatim.
"""
from __future__ import annotations

import argparse
import os
import sys
from typing import List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import SecurityConfig  # noqa: E402
from repro.analysis.corpus import build_corpus_variant  # noqa: E402
from repro.analysis.memdep import compute_memdep_summary  # noqa: E402
from repro.attacks import build_spectre_v4, run_attack  # noqa: E402
from repro.experiments.prescreen import run_defense_prescreen  # noqa: E402


def check_store_sets() -> List[str]:
    problems: List[str] = []
    unsafe = build_corpus_variant("v4", "unsafe")
    summary = compute_memdep_summary(unsafe)
    print(summary.render())
    if not summary.may_bypass_table():
        problems.append("unsafe V4 gadget: empty may-bypass table — "
                        "the store-set defense would never trigger")
    if summary.content_hash() != compute_memdep_summary(
            unsafe).content_hash():
        problems.append("memdep summary content hash is not "
                        "deterministic across recomputation")
    fenced = build_corpus_variant("v4", "fenced")
    fenced_pairs = compute_memdep_summary(fenced).pair_count
    if fenced_pairs:
        problems.append(f"fenced V4 gadget: {fenced_pairs} may-bypass "
                        f"pair(s) survive the FENCE — the walk must "
                        f"stop at serialization")
    return problems


def check_blind_spot_closure() -> List[str]:
    problems: List[str] = []
    leaky = run_attack(build_spectre_v4(),
                       security=SecurityConfig.for_defense(
                           "delay_on_miss"))
    print(leaky.render())
    if not leaky.success:
        problems.append("delay_on_miss no longer leaks V4 — the "
                        "documented blind spot disappeared; update "
                        "docs/defenses.md and the pinned tests if "
                        "this is intentional")
    blocked = run_attack(build_spectre_v4(),
                         security=SecurityConfig.for_defense(
                             "delay_on_miss_ss"))
    print(blocked.render())
    if blocked.success:
        problems.append("delay_on_miss_ss leaked the V4 secret — the "
                        "store-set closure is broken")
    return problems


def check_prescreen() -> List[str]:
    validation = run_defense_prescreen(trials=1)
    print(validation.render())
    return [f"prescreen disagreement: {entry}"
            for entry in validation.disagreements]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--skip-prescreen", action="store_true",
                        help="skip the (slow) full matrix "
                             "cross-validation leg")
    args = parser.parse_args(argv)

    problems = []
    print("== static store sets ==")
    problems += check_store_sets()
    print("\n== V4 blind spot and closure ==")
    problems += check_blind_spot_closure()
    if not args.skip_prescreen:
        print("\n== pre-screen cross-validation ==")
        problems += check_prescreen()

    if problems:
        print("\nmemdep smoke FAILED:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print("\nmemdep smoke OK: store sets populated, blind spot "
          "reproduced and closed, pre-screen agrees with the shootout")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
