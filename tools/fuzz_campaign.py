#!/usr/bin/env python
"""Acceptance fuzz campaign for the static-analysis stack.

Runs the three adversarial loops of ``repro.fuzz`` at a fixed seed
and fails (non-zero exit) on any unexplained disagreement:

1. differential — generated programs, OoO core vs in-order oracle
   under all four protection modes, plus the assemble/disassemble
   round-trip property;
2. certifier agreement — symx verdicts vs dynamic two-secret replay
   (PROVED_SAFE soundness, witness reproduction, tier ordering);
3. evolve — gadget variants mutated against every defense mode; any
   verified survivor is ingested into the analysis corpus and the
   precision study re-measured over the extended corpus.

Run:  PYTHONPATH=src python tools/fuzz_campaign.py [--smoke] \
          [--seed S] [--diff N] [--certify N] [--out JSON]

``--smoke`` is the CI budget (~200 differential + 60 certify
programs, no evolve, < 2 min).  The default full campaign is the
acceptance sweep: >= 5,000 differential programs, 500 certify
programs and the evolve loop over all four modes.

Exit status 0 iff every campaign is clean.
"""
from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.analysis.corpus import IngestedGadget, register_ingested_gadget
from repro.analysis.verify import corpus_precision
from repro.fuzz import (
    run_certify_campaign,
    run_diff_campaign,
    run_evolve_campaign,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", default="acceptance-v1",
                        help="campaign master seed")
    parser.add_argument("--smoke", action="store_true",
                        help="CI budget: 200 diff + 60 certify, "
                             "no evolve")
    parser.add_argument("--diff", type=int, default=None,
                        help="differential program count override")
    parser.add_argument("--certify", type=int, default=None,
                        help="certify program count override")
    parser.add_argument("--skip-evolve", action="store_true")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="directory for resumable JSONL "
                             "checkpoints")
    parser.add_argument("--pin-dir", default=None,
                        help="write FuzzCases for disagreements here")
    parser.add_argument("--out", default=None,
                        help="write the JSON summary here")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args()

    diff_count = args.diff if args.diff is not None else \
        (200 if args.smoke else 5000)
    certify_count = args.certify if args.certify is not None else \
        (60 if args.smoke else 500)
    run_evolve = not args.smoke and not args.skip_evolve

    progress = print if args.verbose else (lambda message: None)
    checkpoints = Path(args.checkpoint_dir) if args.checkpoint_dir \
        else None
    pin_dir = Path(args.pin_dir) if args.pin_dir else None
    started = time.perf_counter()
    summary: dict = {"seed": args.seed, "smoke": args.smoke}
    failures = []

    diff = run_diff_campaign(
        args.seed, diff_count,
        checkpoint=(checkpoints / "diff.jsonl") if checkpoints
        else None,
        regressions=pin_dir, progress=progress)
    summary["diff"] = diff.to_dict()
    print(f"[diff]    {diff.cases} programs x 4 modes, "
          f"{diff.invalid} invalid, {diff.disagreements} "
          f"mismatch(es) [{diff.duration_s:.1f}s]")
    if not diff.clean:
        failures.append(f"differential: {diff.disagreements} "
                        f"mismatch(es)")

    certify = run_certify_campaign(
        args.seed, certify_count,
        checkpoint=(checkpoints / "certify.jsonl") if checkpoints
        else None,
        regressions=pin_dir, progress=progress)
    summary["certify"] = certify.to_dict()
    verdicts = ", ".join(f"{k}={v}" for k, v
                         in sorted(certify.verdicts.items()))
    print(f"[certify] {certify.cases} programs ({verdicts}), "
          f"{certify.explained} explained, "
          f"{certify.disagreements} disagreement(s) "
          f"[{certify.duration_s:.1f}s]")
    if not certify.clean:
        failures.append(f"certifier agreement: "
                        f"{certify.disagreements} disagreement(s)")

    if run_evolve:
        evolve, survivors = run_evolve_campaign(
            args.seed, regressions=pin_dir, progress=progress)
        summary["evolve"] = evolve.to_dict()
        best = {}
        for report in evolve.evolve:
            key = report.mode
            best[key] = max(best.get(key, 0), report.best_fitness)
        per_mode = ", ".join(f"{mode}={fitness}"
                             for mode, fitness in sorted(best.items()))
        print(f"[evolve]  {evolve.cases} (seed x mode) runs, best "
              f"leak per mode: {per_mode}; {len(survivors)} verified "
              f"survivor(s) [{evolve.duration_s:.1f}s]")
        if best.get("origin", 0) == 0:
            failures.append("evolve: positive control failed "
                            "(no leak under origin)")
        if survivors:
            for case in survivors:
                register_ingested_gadget(IngestedGadget(
                    name=case.case_id, source=case.source,
                    base_address=case.base_address, is_gadget=True,
                    secret_words=case.secret_words,
                    origin=f"fuzz-evolve:{','.join(case.modes)}"))
            precision = corpus_precision()
            summary["extended_precision"] = precision.to_dict()
            print("[evolve]  precision over the extended corpus:")
            print(precision.render())
            if precision.fn_rate_after > 0:
                failures.append(
                    "evolve: a surviving gadget evades the static "
                    "stack (fn_rate_after > 0 on extended corpus)")
        else:
            precision = corpus_precision()
            summary["extended_precision"] = precision.to_dict()

    summary["total_s"] = round(time.perf_counter() - started, 1)
    summary["failures"] = failures
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"summary -> {args.out}")

    if failures:
        print("FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"clean ({summary['total_s']}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
