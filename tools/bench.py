#!/usr/bin/env python3
"""Sweep benchmark harness driver (CI entry point).

Measures simulated-instructions/sec and serial-vs-parallel sweep
wall-clock via :mod:`repro.perf.bench`, writes ``BENCH_sweep.json``,
and optionally enforces the committed regression baseline::

    python tools/bench.py                      # full harness
    python tools/bench.py --smoke              # reduced scale for CI
    python tools/bench.py --smoke --check      # fail on >20% regression
    python tools/bench.py --smoke --write-baseline

``--check`` compares simulated-instructions/sec against
``benchmarks/BENCH_baseline.json`` (written with ``--write-baseline``
on a comparable machine) and exits non-zero when throughput drops more
than ``--tolerance`` (default 20%), when the parallel pass loses
determinism, or when sweep failures appear.  ``--check --raise-floor``
additionally ratchets the committed baseline upward: a clean run that
beats it by more than 10% rewrites the file, so the floor tracks real
speedups without churning on noise.
"""
import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.perf.bench import (  # noqa: E402
    RAISE_FLOOR_MARGIN,
    check_regression,
    load_bench_json,
    run_bench,
    should_raise_floor,
    write_bench_json,
)

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "benchmarks",
                                "BENCH_baseline.json")

#: The --smoke configuration: small enough for a CI job, large enough
#: that process-pool overhead does not dominate the parallel pass.
SMOKE_BENCHMARKS = ["bzip2", "mcf", "hmmer", "libquantum"]
SMOKE_SCALE = 0.3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help=f"reduced CI configuration "
                             f"({', '.join(SMOKE_BENCHMARKS)} at scale "
                             f"{SMOKE_SCALE})")
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        help="explicit benchmark subset")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale (default: 1.0, or the "
                             "--smoke scale)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel-pass pool size (default: one "
                             "per CPU, minimum 2)")
    parser.add_argument("--serial-only", action="store_true",
                        help="skip the parallel pass")
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="result path (default BENCH_sweep.json)")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE,
                        help="baseline path for --check/--write-baseline")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the baseline")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed throughput drop for --check "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="record this run as the new baseline")
    parser.add_argument("--raise-floor", action="store_true",
                        help="with --check: rewrite the baseline when "
                             "this (clean) run beats it by more than "
                             f"{RAISE_FLOOR_MARGIN:.0%} (ratchet)")
    args = parser.parse_args(argv)

    benchmarks = args.benchmarks
    scale = args.scale
    if args.smoke:
        if benchmarks is None:
            benchmarks = SMOKE_BENCHMARKS
        if scale is None:
            scale = SMOKE_SCALE
    result = run_bench(
        benchmarks=benchmarks,
        scale=scale if scale is not None else 1.0,
        workers=args.workers,
        parallel=not args.serial_only,
    )
    print(result.render())
    write_bench_json(result, args.out)
    print(f"wrote {args.out}")

    if args.write_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        write_bench_json(result, args.baseline)
        print(f"wrote baseline {args.baseline}")
        return 0
    if args.check:
        if not os.path.exists(args.baseline):
            print(f"bench: no baseline at {args.baseline}; run "
                  f"tools/bench.py --write-baseline first",
                  file=sys.stderr)
            return 2
        baseline = load_bench_json(args.baseline)
        problems = check_regression(result, baseline,
                                    tolerance=args.tolerance)
        for problem in problems:
            print(f"bench REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"bench: within {args.tolerance:.0%} of baseline "
              f"({baseline.instructions_per_sec:,.0f} instructions/s)")
        if args.raise_floor and should_raise_floor(result, baseline):
            write_bench_json(result, args.baseline)
            print(f"bench: raised floor "
                  f"{baseline.instructions_per_sec:,.0f} -> "
                  f"{result.instructions_per_sec:,.0f} instructions/s "
                  f"(> {RAISE_FLOOR_MARGIN:.0%} improvement); "
                  f"rewrote {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
