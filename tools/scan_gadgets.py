#!/usr/bin/env python
"""Sweep every built-in gadget and workload through the static scanner.

The sweep is an end-to-end acceptance check for ``repro.analysis``:

- each Spectre V1/V2/V4/RSB gadget driver must produce at least one
  finding *of its own kind*;
- each fence-mitigated variant must analyze clean;
- each full attack program (gadget + training loop + receiver) must
  produce at least one finding;
- every synthetic SPEC workload is scanned and reported (workloads may
  legitimately contain S-Patterns — pointer chases under data-dependent
  branches — so these are informational, not failures).

Run:  PYTHONPATH=src python tools/scan_gadgets.py [--verbose]

Exit status 0 iff every assertion holds.
"""
from __future__ import annotations

import argparse
import sys

from repro.analysis import GadgetKind, analyze_program
from repro.analysis.corpus import GADGET_KINDS, build_gadget_program
from repro.attacks import (
    build_spectre_rsb,
    build_spectre_v1,
    build_spectre_v2,
    build_spectre_v4,
)
from repro.workloads import spec_names, spec_program

_EXPECTED_KIND = {
    "v1": GadgetKind.SPECTRE_V1,
    "v2": GadgetKind.SPECTRE_V2,
    "v4": GadgetKind.SPECTRE_V4,
    "rsb": GadgetKind.SPECTRE_RSB,
}

_ATTACK_BUILDERS = {
    "v1": build_spectre_v1,
    "v2": build_spectre_v2,
    "v4": build_spectre_v4,
    "rsb": build_spectre_rsb,
}


def scan_gadget_drivers(verbose: bool) -> int:
    failures = 0
    print("== gadget drivers ==")
    for kind in GADGET_KINDS:
        expected = _EXPECTED_KIND[kind]
        report = analyze_program(build_gadget_program(kind, fenced=False),
                                 name=f"gadget/{kind}")
        hits = report.count(expected)
        ok = hits >= 1
        failures += 0 if ok else 1
        print(f"  {kind:4s} unfenced: {report.count()} finding(s), "
              f"{hits} x {expected.value}  "
              f"[{'ok' if ok else 'FAIL: gadget not detected'}]")
        if verbose and not report.clean:
            for finding in report.findings:
                print("    " + finding.render().replace("\n", "\n    "))

        fenced = analyze_program(build_gadget_program(kind, fenced=True),
                                 name=f"gadget/{kind}-fenced")
        ok = fenced.clean
        failures += 0 if ok else 1
        print(f"  {kind:4s} fenced  : {fenced.count()} finding(s)  "
              f"[{'ok' if ok else 'FAIL: fenced variant flagged'}]")
    return failures


def scan_attack_programs(verbose: bool) -> int:
    failures = 0
    print("== full attack programs ==")
    for kind, build in _ATTACK_BUILDERS.items():
        attack = build()
        report = analyze_program(attack.program, name=attack.name)
        expected = _EXPECTED_KIND[kind]
        hits = report.count(expected)
        ok = hits >= 1
        failures += 0 if ok else 1
        print(f"  {attack.name}: {report.count()} finding(s), "
              f"{hits} x {expected.value}  "
              f"[{'ok' if ok else 'FAIL'}]")
        if verbose:
            for finding in report.findings:
                print("    " + finding.render().replace("\n", "\n    "))
    return failures


def scan_workloads(scale: float, verbose: bool) -> None:
    print(f"== synthetic SPEC workloads (scale {scale}) ==")
    for name in spec_names():
        report = analyze_program(spec_program(name, scale=scale), name=name)
        print(f"  {name:12s}: {report.count():3d} finding(s), "
              f"{len(report.suspect_pcs):3d} statically-suspect "
              f"memory PCs / {report.instructions} instructions")
        if verbose:
            for finding in report.findings:
                print("    " + finding.render().replace("\n", "\n    "))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--verbose", action="store_true",
                        help="print every finding")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workload scale factor (default 0.05)")
    args = parser.parse_args(argv)

    failures = scan_gadget_drivers(args.verbose)
    failures += scan_attack_programs(args.verbose)
    scan_workloads(args.scale, args.verbose)
    if failures:
        print(f"\n{failures} check(s) FAILED")
        return 1
    print("\nall gadget checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
