"""End-to-end daemon behaviour: sync/background flow, single-flight
dedup, explicit shed, cancellation, graceful drain and — the big one —
kill-resume on the crash-safe job journal."""
import asyncio
import threading
import time

import pytest

from repro.serve import ReproServer, ServeClient, ServeConfig
from repro.serve.engine import strip_timing
from repro.serve.jobs import JobStore

#: A long-running simulate body the tests can cancel/coalesce against.
SLOW_SIM = {
    "asm": "loop:\naddi r1, r1, 1\njmp loop",
    "kind": "simulate",
    "budgets": {"max_cycles": 400_000_000,
                "watchdog_cycles": 300_000_000},
}


class ServerHarness:
    """Run a ReproServer on a private event loop in a daemon thread,
    exposing a blocking client to the test body."""

    def __init__(self, **config):
        config.setdefault("port", 0)
        config.setdefault("workers", 2)
        self.config = ServeConfig(**config)
        self.loop = asyncio.new_event_loop()
        self.server = None
        self._started = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        if not self._started.wait(10):
            raise RuntimeError("server failed to start")

    def _run(self):
        asyncio.set_event_loop(self.loop)

        async def main():
            self.server = ReproServer(self.config)
            await self.server.start()
            self._started.set()
            await self.server.serve_forever()

        self.loop.run_until_complete(main())
        self.loop.close()

    def client(self):
        return ServeClient(port=self.server.port, timeout=30.0)

    def _finish(self, coroutine, timeout=60):
        future = asyncio.run_coroutine_threadsafe(coroutine, self.loop)
        future.result(timeout=timeout)
        self.thread.join(timeout=10)

    def shutdown(self, timeout=60):
        self._finish(self.server.shutdown(), timeout)

    def abort(self, timeout=60):
        self._finish(self.server.abort(), timeout)


@pytest.fixture
def harness(request):
    started = []

    def factory(**config):
        instance = ServerHarness(**config)
        started.append(instance)
        return instance

    yield factory
    for instance in started:
        if not instance.server._stopped.is_set():
            try:
                instance.abort()
            except Exception:
                pass


class TestSyncFlow:
    def test_sync_answer_and_cache(self, harness):
        server = harness()
        client = server.client()
        first = client.submit({"spec": "corpus:v1", "tier": "taint"})
        assert first.status == 200
        assert first.payload["cached"] is False
        assert first.payload["result"]["taint"]["findings"]
        second = client.submit({"spec": "corpus:v1", "tier": "taint"})
        assert second.payload["cached"] is True
        server.shutdown()

    def test_malformed_submission_is_400(self, harness):
        server = harness()
        response = server.client().submit({"asm": "frobnicate"})
        assert response.status == 400
        assert "error" in response.payload
        server.shutdown()

    def test_unknown_paths_and_jobs_are_404(self, harness):
        server = harness()
        client = server.client()
        assert client.request("GET", "/nope").status == 404
        assert client.job("job-999999-cafebabe").status == 404
        server.shutdown()


class TestBackgroundJobs:
    def test_job_lifecycle(self, harness):
        server = harness()
        client = server.client()
        response = client.submit({"spec": "corpus:v1", "tier": "symx"})
        assert response.status == 202
        view = client.wait(response.payload["job_id"], timeout=60)
        assert view["result"]["symx"]["verdict"] == "LEAKY"
        server.shutdown()

    def test_duplicate_of_finished_job_is_cache_served(self, harness):
        server = harness()
        client = server.client()
        body = {"spec": "corpus:v1", "tier": "symx"}
        first = client.submit(body)
        client.wait(first.payload["job_id"], timeout=60)
        dup = client.submit(body)
        assert dup.payload["cached"] is True
        assert dup.payload["state"] == "done"
        view = client.job(dup.payload["job_id"])
        assert view.payload["state"] == "done"
        server.shutdown()

    def test_stats_reports_region_cache(self, harness):
        server = harness()
        client = server.client()
        response = client.submit({"spec": "corpus:v1", "tier": "symx"})
        client.wait(response.payload["job_id"], timeout=60)
        stats = client.request("GET", "/v1/stats")
        assert stats.status == 200
        region = stats.payload["region_cache"]
        assert region["stores"] >= 1
        server.shutdown()

    def test_concurrent_duplicates_coalesce(self, harness):
        server = harness(workers=1)
        client = server.client()
        first = client.submit(SLOW_SIM)
        second = client.submit(SLOW_SIM)
        assert second.payload.get("coalesced") is True
        assert second.payload["job_id"] == first.payload["job_id"]
        assert server.server.stats.coalesced == 1
        client.cancel(first.payload["job_id"])
        client.wait(first.payload["job_id"], timeout=30)
        server.shutdown()

    def test_cancel_running_job(self, harness):
        server = harness(workers=1)
        client = server.client()
        job_id = client.submit(SLOW_SIM).payload["job_id"]
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if client.job(job_id).payload["state"] == "running":
                break
            time.sleep(0.02)
        response = client.cancel(job_id)
        assert response.ok
        view = client.wait(job_id, timeout=30)
        assert view["result"]["cancelled"] is True
        # A cancelled result must not satisfy future submissions.
        retry = client.submit(SLOW_SIM)
        assert retry.payload.get("cached") is not True
        client.cancel(retry.payload["job_id"])
        client.wait(retry.payload["job_id"], timeout=30)
        server.shutdown()

    def test_cancel_queued_job(self, harness):
        server = harness(workers=1)
        client = server.client()
        running = client.submit(SLOW_SIM).payload["job_id"]
        queued_body = dict(SLOW_SIM,
                           budgets={"max_cycles": 400_000_001,
                                    "watchdog_cycles": 300_000_000})
        queued = client.submit(queued_body).payload["job_id"]
        response = client.cancel(queued)
        assert response.ok
        assert client.job(queued).payload["state"] == "done"
        assert client.job(queued).payload["result"]["cancelled"] is True
        client.cancel(running)
        client.wait(running, timeout=30)
        server.shutdown()


class TestShedding:
    def test_rate_limit_shed_is_explicit(self, harness):
        server = harness(rate=5.0, burst=3.0)
        client = server.client()
        responses = [
            client.submit({"spec": "corpus:v1", "tier": "taint",
                           "client": "hot"})
            for _ in range(10)
        ]
        shed = [r for r in responses if r.shed]
        assert shed
        assert all(r.payload["reason"] == "rate_limited" for r in shed)
        server.shutdown()

    def test_queue_bound_shed(self, harness):
        server = harness(workers=1, queue_depth=1)
        client = server.client()
        first = client.submit(SLOW_SIM)  # occupies the worker
        bodies = [
            dict(SLOW_SIM, budgets={"max_cycles": 400_000_000 + i,
                                    "watchdog_cycles": 300_000_000})
            for i in range(1, 6)
        ]
        responses = [client.submit(dict(body, client=f"c{i}"))
                     for i, body in enumerate(bodies)]
        shed = [r for r in responses if r.shed]
        assert shed
        assert all(r.payload["reason"] == "queue_full" for r in shed)
        for job in [first] + [r for r in responses if r.ok]:
            job_id = job.payload["job_id"]
            client.cancel(job_id)
            client.wait(job_id, timeout=30)
        server.shutdown()


class TestDrain:
    def test_drain_finishes_queued_work(self, harness, tmp_path):
        server = harness(
            checkpoint=str(tmp_path / "jobs.jsonl"), workers=1)
        client = server.client()
        job_id = client.submit(
            {"spec": "corpus:v1", "tier": "symx"}).payload["job_id"]
        server.shutdown()
        # The job finished (durably) before the server stopped.
        _, jobs = JobStore(str(tmp_path / "jobs.jsonl")).snapshot()
        assert jobs[job_id].done
        assert jobs[job_id].result["symx"]["verdict"] == "LEAKY"

    def test_draining_rejects_new_submissions(self, harness):
        server = harness(workers=1, drain_grace=30.0)
        client = server.client()
        slow = client.submit(SLOW_SIM).payload["job_id"]
        drain = asyncio.run_coroutine_threadsafe(
            server.server.shutdown(), server.loop)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline \
                and not server.server.draining:
            time.sleep(0.01)
        # The listener is closed during drain: either the submit is
        # refused with 503 (raced the close) or the connection fails.
        try:
            response = client.submit(
                {"spec": "corpus:v1", "tier": "taint"})
            assert response.status == 503
        except Exception:
            pass
        try:
            client.cancel(slow)
        except Exception:
            pass
        # Grace period may outlast the cancel; force it through the
        # server object (the drain path sets cancel events itself
        # after grace, but the test should not wait 30s).
        for event in server.server._cancels.values():
            event.set()
        drain.result(timeout=60)


class TestKillResume:
    def test_killed_server_resumes_and_converges(self, harness,
                                                 tmp_path):
        journal = str(tmp_path / "jobs.jsonl")
        server = harness(checkpoint=journal, workers=1)
        client = server.client()

        done_body = {"spec": "corpus:v1", "tier": "symx"}
        done_id = client.submit(done_body).payload["job_id"]
        done_view = client.wait(done_id, timeout=60)

        pending = [
            client.submit({"spec": spec, "tier": "symx"}
                          ).payload["job_id"]
            for spec in ("corpus:v2", "corpus:v4", "corpus:rsb")
        ]
        server.abort()  # kill -9, as close as a live object gets

        # Restart on the same journal.
        revived = harness(checkpoint=journal, workers=2)
        client2 = revived.client()
        assert revived.server.stats.jobs_recovered >= 4

        # Finished work survived byte-for-byte (modulo timing).
        recovered = client2.wait(done_id, timeout=60)
        assert strip_timing(recovered["result"]) == \
            strip_timing(done_view["result"])

        # Interrupted work re-ran to completion...
        views = {job_id: client2.wait(job_id, timeout=120)
                 for job_id in pending}
        assert all(v["state"] == "done" for v in views.values())

        # ...and converged on the same answers a never-killed server
        # gives for the same submissions.
        reference = harness(workers=2)
        ref_client = reference.client()
        for job_id, spec in zip(pending,
                                ("corpus:v2", "corpus:v4",
                                 "corpus:rsb")):
            ref_id = ref_client.submit(
                {"spec": spec, "tier": "symx"}).payload["job_id"]
            ref_view = ref_client.wait(ref_id, timeout=120)
            assert strip_timing(views[job_id]["result"]) == \
                strip_timing(ref_view["result"]), spec
        reference.shutdown()
        revived.shutdown()

    def test_journal_lock_is_exclusive(self, harness, tmp_path):
        journal = str(tmp_path / "jobs.jsonl")
        server = harness(checkpoint=journal)
        from repro.robustness.checkpoint import CheckpointWriterConflict
        with pytest.raises(CheckpointWriterConflict):
            JobStore(journal).open()
        server.shutdown()
