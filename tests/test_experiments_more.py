"""Additional experiment-layer tests: table6 export, ablation renders,
figure5 helpers and runner utilities."""
import pytest

from repro.core.policy import ProtectionMode
from repro.experiments import run_figure5, run_table6
from repro.experiments.export import table6_to_dict
from repro.experiments.runner import average
from repro.params import a57_like


class TestRunnerHelpers:
    def test_average(self):
        assert average([1.0, 2.0, 3.0]) == 2.0
        assert average([]) == 0.0


class TestTable6Export:
    def test_shape(self):
        result = run_table6(machines=[a57_like()], benchmarks=["hmmer"],
                            scale=0.05)
        payload = table6_to_dict(result)
        machine = payload["machines"]["a57-like"]
        assert "hmmer" in machine
        assert "baseline" in machine["hmmer"]


class TestFigure5Helpers:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(benchmarks=["hmmer"], scale=0.05)

    def test_overhead_is_normalized_minus_one(self, result):
        row = result.row("hmmer")
        for mode in (ProtectionMode.BASELINE, ProtectionMode.CACHE_HIT):
            assert row.overhead(mode) == \
                pytest.approx(row.normalized(mode) - 1.0)

    def test_origin_normalized_is_one(self, result):
        assert result.row("hmmer").normalized(ProtectionMode.ORIGIN) == 1.0

    def test_render_and_bars_agree_on_benchmarks(self, result):
        assert "hmmer" in result.render()
        assert "hmmer" in result.render_bars()
