"""Tests for the speculative-taint gadget scanner."""
import pytest

from repro.analysis import (
    DEFAULT_WINDOW,
    GadgetKind,
    analyze_program,
    static_suspect_pcs,
)
from repro.analysis.corpus import GADGET_KINDS, build_gadget_program
from repro.isa import ProgramBuilder

_KIND_OF = {
    "v1": GadgetKind.SPECTRE_V1,
    "v2": GadgetKind.SPECTRE_V2,
    "v4": GadgetKind.SPECTRE_V4,
    "rsb": GadgetKind.SPECTRE_RSB,
}


class TestGadgetCorpus:
    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_unfenced_gadget_detected(self, kind):
        report = analyze_program(build_gadget_program(kind, fenced=False))
        assert report.count(_KIND_OF[kind]) >= 1

    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_fenced_gadget_clean(self, kind):
        report = analyze_program(build_gadget_program(kind, fenced=True))
        assert report.clean, report.render()


def _v1_program(with_fence=False, window=None):
    b = ProgramBuilder()
    b.li(1, 0)              # index
    b.li(2, 0x2000)         # array base
    b.li(3, 8)              # bound
    b.bge(1, 3, "done")
    if with_fence:
        b.fence()
    b.load(4, 2)            # arr[index] -- speculative load
    b.add(5, 4, 4)          # derive address from loaded value
    b.load(6, 5)            # S-Pattern sink
    b.label("done")
    b.halt()
    return b.build()


class TestSPattern:
    def test_finding_fields(self):
        program = _v1_program()
        report = analyze_program(program, name="v1")
        assert report.count() == 1
        finding = report.findings[0]
        assert finding.kind is GadgetKind.SPECTRE_V1
        assert finding.source_pc == program.address_of(3)   # the bge
        assert finding.sink_pc == program.address_of(6)     # second load
        assert finding.tainting_loads == (program.address_of(4),)
        # fence goes before the first speculative load of the chain
        assert finding.suggested_fence_pc == program.address_of(4)

    def test_fence_breaks_the_pattern(self):
        report = analyze_program(_v1_program(with_fence=True))
        assert report.clean

    def test_single_load_is_not_a_gadget(self):
        """One speculative load without a dependent access is the
        leak-free half of the pattern; CS leaves it unprotected too."""
        b = ProgramBuilder()
        b.li(1, 0).li(3, 8)
        b.bge(1, 3, "done")
        b.li(2, 0x2000)
        b.load(4, 2)
        b.add(5, 4, 4)       # derived value never reaches memory
        b.label("done")
        b.halt()
        assert analyze_program(b.build()).clean

    def test_store_sink_detected(self):
        """A tainted *store* address leaks exactly like a load."""
        b = ProgramBuilder()
        b.li(1, 0).li(3, 8).li(2, 0x2000)
        b.bge(1, 3, "done")
        b.load(4, 2)
        b.store(1, 4)        # address from the speculative load
        b.label("done")
        b.halt()
        report = analyze_program(b.build())
        assert report.count(GadgetKind.SPECTRE_V1) == 1

    def test_window_bounds_the_search(self):
        """With a tiny window the dependent access falls outside the
        speculation window and must not be flagged."""
        b = ProgramBuilder()
        b.li(1, 0).li(3, 8).li(2, 0x2000)
        b.bge(1, 3, "done")
        b.load(4, 2)
        for _ in range(6):
            b.nop()
        b.add(5, 4, 4)
        b.load(6, 5)
        b.label("done")
        b.halt()
        program = b.build()
        assert analyze_program(program).count() == 1
        assert analyze_program(program, window=4).clean

    def test_taint_cleared_by_overwrite(self):
        b = ProgramBuilder()
        b.li(1, 0).li(3, 8).li(2, 0x2000)
        b.bge(1, 3, "done")
        b.load(4, 2)
        b.li(4, 0x3000)      # overwrite kills the taint
        b.load(6, 4)
        b.label("done")
        b.halt()
        assert analyze_program(b.build()).clean

    def test_r0_never_tainted(self):
        b = ProgramBuilder()
        b.li(1, 0).li(3, 8).li(2, 0x2000)
        b.bge(1, 3, "done")
        b.load(0, 2)         # writes the hardwired zero register
        b.load(6, 0)         # r0 is always 0 -> not a gadget
        b.label("done")
        b.halt()
        assert analyze_program(b.build()).clean

    def test_v4_store_opens_window(self):
        b = ProgramBuilder()
        b.li(1, 0x2000).li(2, 7)
        b.store(2, 1)        # V4 source: later loads may bypass it
        b.load(4, 1)
        b.add(5, 4, 4)
        b.load(6, 5)
        b.halt()
        report = analyze_program(b.build())
        assert report.count(GadgetKind.SPECTRE_V4) >= 1


class TestReport:
    def test_render_and_to_dict(self):
        report = analyze_program(build_gadget_program("v1"), name="v1")
        text = report.render()
        assert "spectre-v1" in text and "suggested fence" in text
        data = report.to_dict()
        assert data["name"] == "v1"
        assert data["findings"][0]["kind"] == "spectre-v1"
        assert isinstance(data["findings"][0]["source_pc"], int)

    def test_clean_render(self):
        b = ProgramBuilder()
        b.li(1, 1).halt()
        report = analyze_program(b.build())
        assert report.clean
        assert "no speculative gadgets" in report.render()

    def test_by_kind_partitions_findings(self):
        report = analyze_program(build_gadget_program("v2"))
        by_kind = report.by_kind()
        assert sum(len(v) for v in by_kind.values()) == report.count()
        for kind, findings in by_kind.items():
            assert all(f.kind is kind for f in findings)


class TestStaticSuspects:
    def test_default_window_positive(self):
        assert DEFAULT_WINDOW > 0

    def test_memory_after_branch_is_suspect(self):
        program = _v1_program()
        suspects = static_suspect_pcs(program)
        assert program.address_of(4) in suspects   # load after bge
        assert program.address_of(6) in suspects

    def test_leading_memory_not_suspect(self):
        """Memory accesses before any speculation source stay clear."""
        b = ProgramBuilder()
        b.li(1, 0x2000)
        b.load(2, 1)         # no prior branch or store
        b.halt()
        assert static_suspect_pcs(b.build()) == set()

    def test_fence_clears_suspicion(self):
        b = ProgramBuilder()
        b.li(1, 0).li(3, 8).li(2, 0x2000)
        b.bge(1, 3, "done")
        b.fence()
        b.load(4, 2)
        b.label("done")
        b.halt()
        program = b.build()
        assert program.address_of(5) not in static_suspect_pcs(program)
