"""Tests of fetch-stage behaviour: line-bounded fetch groups, I-cache
stalls, wrong-path fetch of unmapped memory, and the ICache-hit filter
decision unit."""

from conftest import run_to_halt
from repro import Processor, tiny_config
from repro.core.icache_filter import ICacheHitFilter
from repro.isa import ProgramBuilder
from repro.params import with_core


class TestICacheFilterUnit:
    def test_disabled_always_allows(self):
        filt = ICacheHitFilter(enabled=False)
        assert filt.allow_fetch(False, True)

    def test_safe_npc_allows_miss(self):
        filt = ICacheHitFilter(enabled=True)
        assert filt.allow_fetch(False, unresolved_branch_in_flight=False)

    def test_unsafe_hit_allows(self):
        filt = ICacheHitFilter(enabled=True)
        assert filt.allow_fetch(True, unresolved_branch_in_flight=True)

    def test_unsafe_miss_stalls(self):
        filt = ICacheHitFilter(enabled=True)
        assert not filt.allow_fetch(False, unresolved_branch_in_flight=True)
        assert filt.stats.get("unsafe_miss_stalls") == 1


class TestFetchGroups:
    def test_fetch_group_stops_at_line_boundary(self):
        """A fetch group never crosses an instruction line, so a timed
        block aligned to a line fetches atomically (the receiver
        alignment guarantee)."""
        machine = tiny_config()   # fetch_width=2, 64B lines
        b = ProgramBuilder()
        for _ in range(40):
            b.nop()
        b.halt()
        cpu = Processor(b.build(), machine=machine)
        # Track the fetch buffer growth: per cycle at most fetch_width
        # and never across the current line.
        last_line = None
        while not cpu.halted and cpu.cycle < 10_000:
            before = len(cpu._fetch_buffer)
            cpu.step()
            added = len(cpu._fetch_buffer) - before
            assert added <= machine.core.fetch_width + \
                machine.core.dispatch_width

    def test_cold_icache_lines_cost_full_misses(self):
        """A long straight-line program pays one I-miss per line."""
        machine = tiny_config()
        b = ProgramBuilder()
        for i in range(64):     # 256 bytes = 4 lines
            b.addi(1, 1, 1)
        b.halt()
        cpu, report = run_to_halt(b.build(), machine=machine)
        assert report.l1i_misses >= 4

    def test_wrong_path_into_unmapped_memory_is_harmless(self):
        """A mispredicted branch to unmapped space fetches NOPs until
        the squash redirects."""
        b = ProgramBuilder()
        b.data_word(0x4000, 1)
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)
        b.beq(2, 0, 0x800000)    # never taken, but predicted? cold: NT
        b.li(3, 7)
        b.halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(3) == 7

    def test_halt_stops_fetch(self):
        b = ProgramBuilder()
        b.halt()
        cpu, report = run_to_halt(b.build())
        assert report.committed == 1


class TestFrontendDepthEffect:
    def test_deeper_frontend_pays_more_per_mispredict(self):
        def run_with_depth(depth):
            machine = with_core(tiny_config(), frontend_depth=depth)
            b = ProgramBuilder()
            b.data_words(0x4000, [1, 0] * 16)
            b.li(1, 0x4000).li(2, 32).li(3, 0)
            b.label("loop")
            b.load(4, 1)
            b.beq(4, 0, "skip")
            b.addi(3, 3, 1)
            b.label("skip")
            b.addi(1, 1, 8).addi(2, 2, -1).bne(2, 0, "loop")
            b.halt()
            _, report = run_to_halt(b.build(), machine=machine)
            return report
        shallow = run_with_depth(2)
        deep = run_with_depth(12)
        assert deep.cycles > shallow.cycles
