"""Submission canonicalization, budgets and the content-addressed key."""
import pytest

from repro.serve.protocol import (
    Budgets,
    JobKind,
    JobRecord,
    JobState,
    Submission,
    SubmissionError,
    Tier,
)


class TestSubmissionValidation:
    def test_inline_asm(self):
        sub = Submission.from_request({"asm": "li r1, 4\nhalt"})
        assert sub.kind is JobKind.ANALYZE
        assert sub.tier is Tier.SYMX
        assert sub.program().instructions

    def test_rejects_non_object_body(self):
        with pytest.raises(SubmissionError):
            Submission.from_request([1, 2, 3])

    def test_rejects_unknown_fields(self):
        with pytest.raises(SubmissionError, match="unknown field"):
            Submission.from_request({"asm": "halt", "tierr": "taint"})

    def test_rejects_bad_tier_and_mode(self):
        with pytest.raises(SubmissionError, match="unknown tier"):
            Submission.from_request({"asm": "halt", "tier": "mega"})
        with pytest.raises(SubmissionError, match="unknown mode"):
            Submission.from_request({"asm": "halt", "mode": "nope"})

    def test_rejects_assembly_errors(self):
        with pytest.raises(SubmissionError, match="assembly failed"):
            Submission.from_request({"asm": "frobnicate r1"})

    def test_requires_exactly_one_program_source(self):
        with pytest.raises(SubmissionError, match="exactly one"):
            Submission.from_request({})
        with pytest.raises(SubmissionError, match="exactly one"):
            Submission.from_request(
                {"asm": "halt", "spec": "corpus:v1"})

    def test_corpus_spec_brings_default_secrets(self):
        sub = Submission.from_request({"spec": "corpus:v1"})
        assert sub.secret_words
        assert sub.name == "corpus:v1"

    def test_bad_corpus_spec(self):
        with pytest.raises(SubmissionError, match="bad corpus spec"):
            Submission.from_request({"spec": "corpus:v9"})

    def test_fault_only_for_simulate(self):
        with pytest.raises(SubmissionError, match="simulate"):
            Submission.from_request(
                {"asm": "halt", "fault": {"seed": 1}})
        sub = Submission.from_request(
            {"asm": "halt", "kind": "simulate", "fault": {"seed": 1}})
        assert sub.fault_plan() is not None

    def test_unknown_fault_field(self):
        with pytest.raises(SubmissionError, match="unknown fault"):
            Submission.from_request(
                {"asm": "halt", "kind": "simulate",
                 "fault": {"chaos": 1.0}})

    def test_sync_tiers(self):
        assert Submission.from_request(
            {"asm": "halt", "tier": "taint"}).synchronous
        assert Submission.from_request(
            {"asm": "halt", "tier": "valueset"}).synchronous
        assert not Submission.from_request(
            {"asm": "halt", "tier": "symx"}).synchronous
        assert not Submission.from_request(
            {"asm": "halt", "kind": "simulate"}).synchronous


class TestBudgetsValidation:
    def test_rejects_non_positive(self):
        with pytest.raises(SubmissionError):
            Budgets(wall_clock=0.0)
        with pytest.raises(SubmissionError):
            Budgets(max_steps=-1)

    def test_rejects_unknown_and_bad_types(self):
        with pytest.raises(SubmissionError, match="unknown budget"):
            Budgets.from_dict({"walls": 1})
        with pytest.raises(SubmissionError, match="integer"):
            Budgets.from_dict({"max_steps": 1.5})
        with pytest.raises(SubmissionError, match="number"):
            Budgets.from_dict({"wall_clock": "fast"})

    def test_round_trip(self):
        budgets = Budgets.from_dict({"wall_clock": 2.5, "max_paths": 9})
        assert Budgets.from_dict(budgets.to_dict()) == budgets


class TestCacheKey:
    def test_spelling_variants_alias(self):
        a = Submission.from_request(
            {"asm": "li r1, 4\nhalt", "tier": "taint"})
        b = Submission.from_request(
            {"asm": "  li r1, 4 ; hi\n  halt\n", "tier": "taint"})
        assert a.cache_key() == b.cache_key()

    def test_tier_mode_budgets_and_fault_split_the_key(self):
        base = {"asm": "li r1, 4\nhalt"}
        key = Submission.from_request(base).cache_key()
        assert Submission.from_request(
            {**base, "tier": "taint"}).cache_key() != key
        assert Submission.from_request(
            {**base, "mode": "cache_hit"}).cache_key() != key
        assert Submission.from_request(
            {**base, "budgets": {"wall_clock": 1.0}}).cache_key() != key
        simulate = {**base, "kind": "simulate"}
        assert Submission.from_request({
            **simulate, "fault": {"seed": 3},
        }).cache_key() != Submission.from_request(simulate).cache_key()

    def test_client_identity_is_not_in_the_key(self):
        base = {"asm": "halt", "tier": "taint"}
        assert Submission.from_request(
            {**base, "client": "a"}).cache_key() == \
            Submission.from_request({**base, "client": "b"}).cache_key()


class TestJobRecord:
    def test_round_trip_preserves_identity(self):
        sub = Submission.from_request(
            {"spec": "corpus:v2", "kind": "simulate",
             "fault": {"fill_delay_rate": 0.5},
             "budgets": {"watchdog_cycles": 2000}})
        job = JobRecord(job_id="job-1", submission=sub,
                        state=JobState.DONE,
                        result={"status": "ok"}, submitted_at=1.0)
        back = JobRecord.from_record(job.to_record())
        assert back.submission.cache_key() == sub.cache_key()
        assert back.state is JobState.DONE
        assert back.result == {"status": "ok"}
        assert back.recovered

    def test_running_jobs_recover_as_queued(self):
        # The JobStore applies this; the record itself keeps RUNNING.
        sub = Submission.from_request({"asm": "halt"})
        job = JobRecord(job_id="job-2", submission=sub,
                        state=JobState.RUNNING)
        back = JobRecord.from_record(job.to_record())
        assert back.state is JobState.RUNNING
        assert not back.done
