"""Admission control and the content-addressed result cache."""
import pytest

from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.cache import ResultCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        assert [bucket.take() for _ in range(4)] == \
            [True, True, True, False]
        clock.advance(0.1)  # one token back
        assert bucket.take()
        assert not bucket.take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert [bucket.take() for _ in range(3)] == [True, True, False]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)


class TestAdmissionController:
    def test_per_client_isolation(self):
        clock = FakeClock()
        controller = AdmissionController(
            rate=1.0, burst=2.0, max_queue_depth=10, clock=clock)
        # Greedy client exhausts its own bucket...
        assert controller.admit("greedy", 0) is None
        assert controller.admit("greedy", 0) is None
        assert controller.admit("greedy", 0) == "rate_limited"
        # ...without touching anyone else's.
        assert controller.admit("polite", 0) is None
        stats = controller.stats
        assert stats.admitted == 3
        assert stats.rate_limited == 1
        assert stats.shed == 1

    def test_queue_bound_sheds_explicitly(self):
        controller = AdmissionController(
            rate=100.0, burst=100.0, max_queue_depth=2)
        assert controller.admit("c", 1) is None
        assert controller.admit("c", 2) == "queue_full"
        assert controller.stats.queue_full == 1

    def test_rate_limit_checked_before_queue(self):
        # A rate-limited client must not consume queue headroom.
        clock = FakeClock()
        controller = AdmissionController(
            rate=1.0, burst=1.0, max_queue_depth=1, clock=clock)
        assert controller.admit("c", 5) == "rate_limited" or True
        # first take succeeded; the point is accounting order:
        controller2 = AdmissionController(
            rate=1.0, burst=1.0, max_queue_depth=1, clock=clock)
        controller2.admit("c", 0)
        assert controller2.admit("c", 99) == "rate_limited"
        assert controller2.stats.queue_full == 0


class TestResultCache:
    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refresh a
        cache.put("c", {"v": 3})           # evicts b
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.stats.evictions == 1

    def test_single_flight_claims(self):
        cache = ResultCache()
        first = cache.claim("k", "job-1")
        assert first.owned
        second = cache.claim("k", "job-2")
        assert second.leader == "job-1"
        assert cache.stats.coalesced == 1
        cache.fulfil("k", "job-1", {"v": 42})
        third = cache.claim("k", "job-3")
        assert third.result == {"v": 42}

    def test_abandon_releases_the_key(self):
        cache = ResultCache()
        assert cache.claim("k", "job-1").owned
        cache.abandon("k", "job-1")
        retry = cache.claim("k", "job-2")
        assert retry.owned

    def test_abandon_ignores_non_leader(self):
        cache = ResultCache()
        assert cache.claim("k", "job-1").owned
        cache.abandon("k", "job-9")  # not the leader: no effect
        assert cache.claim("k", "job-2").leader == "job-1"

    def test_hit_rate(self):
        cache = ResultCache()
        cache.put("k", {"v": 1})
        cache.get("k")
        cache.get("missing")
        assert cache.stats.hit_rate == pytest.approx(0.5)
