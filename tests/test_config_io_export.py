"""Tests for JSON machine configs and result export."""

import pytest

from repro import paper_config
from repro.config_io import (
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)
from repro.errors import ConfigError


class TestMachineFromDict:
    def test_empty_spec_is_paper_config(self):
        machine = machine_from_dict({})
        assert machine.core.rob_entries == paper_config().core.rob_entries

    def test_core_overrides(self):
        machine = machine_from_dict(
            {"core": {"name": "my", "rob_entries": 96, "issue_width": 2}}
        )
        assert machine.name == "my"
        assert machine.core.rob_entries == 96
        assert machine.core.commit_width == 4   # inherited

    def test_cache_overrides_size_kb(self):
        machine = machine_from_dict(
            {"memory": {"l1d": {"size_kb": 32, "ways": 8}}}
        )
        assert machine.memory.l1d.size_bytes == 32 * 1024
        assert machine.memory.l1d.ways == 8
        assert machine.memory.l2.size_bytes == \
            paper_config().memory.l2.size_bytes

    def test_dram_latency_override(self):
        machine = machine_from_dict({"memory": {"dram_latency": 333}})
        assert machine.memory.dram_latency == 333

    def test_tlb_override(self):
        machine = machine_from_dict(
            {"memory": {"dtlb": {"entries": 16}}}
        )
        assert machine.memory.dtlb.entries == 16

    def test_unknown_top_level_rejected(self):
        with pytest.raises(ConfigError):
            machine_from_dict({"pipeline": {}})

    def test_unknown_core_field_rejected(self):
        with pytest.raises(ConfigError):
            machine_from_dict({"core": {"warp_drive": True}})

    def test_unknown_cache_field_rejected(self):
        with pytest.raises(ConfigError):
            machine_from_dict({"memory": {"l1d": {"banks": 4}}})

    def test_invalid_geometry_propagates(self):
        with pytest.raises(ConfigError):
            machine_from_dict({"memory": {"l1d": {"size_kb": 33}}})


class TestRoundTrip:
    def test_to_dict_from_dict_roundtrip(self):
        original = paper_config()
        rebuilt = machine_from_dict(machine_to_dict(original))
        assert rebuilt == original

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "machine.json"
        save_machine(paper_config(), str(path))
        loaded = load_machine(str(path))
        assert loaded == paper_config()

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError):
            load_machine(str(path))


class TestResultExport:
    def test_figure5_export(self, tmp_path):
        from repro.experiments import run_figure5
        from repro.experiments.export import (
            dump_json, figure5_to_dict, load_json,
        )
        result = run_figure5(benchmarks=["hmmer"], scale=0.05)
        payload = figure5_to_dict(result)
        assert payload["artifact"] == "figure5"
        assert "hmmer" in payload["benchmarks"]
        path = tmp_path / "fig5.json"
        dump_json(payload, str(path))
        loaded = load_json(str(path))
        assert loaded["paper"].startswith("Conditional Speculation")
        assert loaded["benchmarks"]["hmmer"]["normalized"]["baseline"] > 0

    def test_table5_export(self):
        from repro.experiments import run_table5
        from repro.experiments.export import table5_to_dict
        result = run_table5(benchmarks=["hmmer"], scale=0.05)
        payload = table5_to_dict(result)
        assert 0 <= payload["benchmarks"]["hmmer"]["l1_hit_rate"] <= 1
        assert "average" in payload

    def test_table4_export_shape(self):
        from repro.experiments import run_table4
        from repro.experiments.export import table4_to_dict
        result = run_table4(scenarios=["Flush+Reload, share data"])
        payload = table4_to_dict(result)
        scenario = payload["scenarios"]["Flush+Reload, share data"]
        assert scenario["matches_paper"]
        assert not scenario["protected"]["origin"]
        assert scenario["protected"]["cache_hit_tpbuf"]
