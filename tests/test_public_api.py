"""Guard the public API surface: everything advertised in __all__ is
importable and the README quickstart works verbatim."""
import importlib

import pytest

import repro


class TestPackageSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize("module", [
        "repro.isa", "repro.memory", "repro.frontend", "repro.pipeline",
        "repro.core", "repro.attacks", "repro.workloads",
        "repro.experiments", "repro.cli", "repro.config_io",
        "repro.paperdata",
    ])
    def test_submodules_import(self, module):
        importlib.import_module(module)

    def test_subpackage_all_names_resolve(self):
        for module_name in ("repro.isa", "repro.memory", "repro.pipeline",
                            "repro.core", "repro.attacks",
                            "repro.workloads", "repro.experiments"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), (module_name, name)


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        from repro import Processor, ProgramBuilder, SecurityConfig

        b = ProgramBuilder()
        b.li(1, 5)
        b.label("loop").addi(1, 1, -1).bne(1, 0, "loop")
        b.halt()

        cpu = Processor(b.build(),
                        security=SecurityConfig.cache_hit_tpbuf())
        report = cpu.run()
        assert report.halted
        assert "cache_hit_tpbuf" in report.render()


class TestFigure5Bars:
    def test_render_bars(self):
        from repro.experiments import run_figure5
        result = run_figure5(benchmarks=["hmmer"], scale=0.05)
        text = result.render_bars(width=20)
        assert "hmmer" in text
        assert "#" in text      # baseline glyph
        assert "=" in text      # tpbuf glyph
