"""Tests for the gshare predictor and the tag-less BTB."""
from repro.frontend.branch_predictor import BranchPredictor
from repro.isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode


def make_predictor(history_bits=6, btb_entries=64):
    return BranchPredictor(history_bits, btb_entries)


BRANCH = Instruction(Opcode.BNE, rs1=1, rs2=2, target=0x2000)
JMPI = Instruction(Opcode.JMPI, rs1=3)
JMP = Instruction(Opcode.JMP, target=0x3000)


class TestDirectionPrediction:
    def test_initial_prediction_is_not_taken(self):
        predictor = make_predictor()
        prediction = predictor.predict(0x1000, BRANCH)
        assert not prediction.taken
        assert prediction.target == 0x1000 + INSTRUCTION_BYTES

    def test_training_toward_taken(self):
        predictor = make_predictor()
        # The global history must saturate before a stable counter is
        # trained (each update shifts the gshare index).
        for _ in range(12):
            predictor.update(0x1000, BRANCH, taken=True, target=0x2000,
                             mispredicted=False)
        assert predictor.predict(0x1000, BRANCH).taken

    def test_training_toward_not_taken_after_taken(self):
        predictor = make_predictor()
        for _ in range(4):
            predictor.update(0x1000, BRANCH, True, 0x2000, False)
        for _ in range(8):
            predictor.update(0x1000, BRANCH, False, 0x2000, False)
        assert not predictor.predict(0x1000, BRANCH).taken

    def test_taken_prediction_uses_instruction_target(self):
        predictor = make_predictor()
        for _ in range(12):
            predictor.update(0x1000, BRANCH, True, 0x2000, False)
        assert predictor.predict(0x1000, BRANCH).target == 0x2000

    def test_history_affects_counter_index(self):
        predictor = make_predictor(history_bits=4)
        before = predictor._counter_index(0x1000)
        predictor.update(0x1000, BRANCH, True, 0x2000, False)
        after = predictor._counter_index(0x1000)
        assert before != after  # history shifted in a taken bit


class TestBTB:
    def test_cold_indirect_predicts_fallthrough(self):
        predictor = make_predictor()
        prediction = predictor.predict(0x1000, JMPI)
        assert not prediction.taken

    def test_indirect_learns_target(self):
        predictor = make_predictor()
        predictor.update(0x1000, JMPI, True, 0x5000, True)
        prediction = predictor.predict(0x1000, JMPI)
        assert prediction.taken and prediction.target == 0x5000

    def test_btb_aliasing_enables_cross_training(self):
        """Two jumps whose PCs differ by entries*4 share a BTB slot -
        the Spectre V2 substrate."""
        predictor = make_predictor(btb_entries=64)
        alias_distance = 64 * INSTRUCTION_BYTES
        predictor.update(0x1000, JMPI, True, 0xDEAD0, True)
        prediction = predictor.predict(0x1000 + alias_distance, JMPI)
        assert prediction.target == 0xDEAD0

    def test_non_aliasing_slots_are_independent(self):
        predictor = make_predictor(btb_entries=64)
        predictor.update(0x1000, JMPI, True, 0xDEAD0, True)
        assert not predictor.predict(0x1004, JMPI).taken

    def test_direct_jump_always_taken_with_known_target(self):
        predictor = make_predictor()
        prediction = predictor.predict(0x1000, JMP)
        assert prediction.taken and prediction.target == 0x3000


class TestStats:
    def test_misprediction_rate(self):
        predictor = make_predictor()
        predictor.update(0x1000, BRANCH, True, 0x2000, True)
        predictor.update(0x1000, BRANCH, True, 0x2000, False)
        assert predictor.misprediction_rate() == 0.5

    def test_empty_rate_is_zero(self):
        assert make_predictor().misprediction_rate() == 0.0
