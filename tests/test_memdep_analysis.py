"""The static memory-dependence analysis (repro.analysis.memdep):
store→load classification, interprocedural reachability, loop-summary
caps, content addressing, caching, and the fence-synthesis consumer."""
import pytest

from repro.analysis import (
    analyze_program,
    compute_memdep_summary,
    memdep_summary_key,
    static_store_sets,
    synthesize_fences,
)
from repro.analysis.corpus import build_corpus_variant
from repro.analysis.memdep import (
    MEMDEP_FORMAT,
    MemDepSummary,
    finding_memdep_block,
    v4_finding_may_bypass,
)
from repro.analysis.report import GadgetKind
from repro.analysis.summaries import SummaryCache
from repro.isa import ProgramBuilder
from repro.isa.instructions import Opcode


def _pcs(program, op):
    return [addr for addr, instr in program.iter_addressed()
            if instr.op is op]


def _aliasing_program():
    """Store and load hit the same provably-constant word."""
    b = ProgramBuilder()
    b.data_word(0x4000, 0)
    b.li(1, 0x4000)
    b.li(2, 7)
    b.store(2, 1)
    b.load(3, 1)
    b.halt()
    return b.build()


def _disjoint_program():
    """Store and load hit provably different constant words."""
    b = ProgramBuilder()
    b.data_word(0x4000, 0)
    b.data_word(0x5000, 0)
    b.li(1, 0x4000)
    b.li(2, 0x5000)
    b.li(3, 7)
    b.store(3, 1)
    b.load(4, 2)
    b.halt()
    return b.build()


def _unknown_store_program():
    """The store's address comes from memory: the conservative TOP
    fallback must flag every subsequent load as may-bypass."""
    b = ProgramBuilder()
    b.data_word(0x4000, 0x6000)
    b.data_word(0x5000, 0)
    b.li(1, 0x4000)
    b.load(2, 1)          # r2 = unknown (loaded) address
    b.li(3, 1)
    b.store(3, 2)         # store to TOP
    b.li(4, 0x5000)
    b.load(5, 4)          # constant load, still may-bypass vs TOP
    b.halt()
    return b.build()


def _loop_program():
    """A strided store loop: the in-loop load of the cursor stays
    may-bypass, the far post-loop load is refuted by the induction
    caps of the loop summaries."""
    b = ProgramBuilder()
    b.data_word(0x8000, 0)
    b.li(1, 0x4000)       # base (loop-invariant)
    b.li(2, 0)            # i — capped by the loop summary
    b.li(3, 4)            # bound
    b.li(7, 0x8000)       # far word, outside the strided range
    b.label("loop")
    b.shli(4, 2, 3)       # offset = i * 8
    b.add(4, 4, 1)        # addr = base + offset
    b.store(2, 4)         # [addr] = i (loop-carried strided store)
    b.load(5, 4)          # in-loop read-back of the strided word
    b.addi(2, 2, 1)
    b.blt(2, 3, "loop")
    b.load(6, 7)          # post-loop far load
    b.halt()
    return b.build()


def _call_program():
    """Store, CALL into a loading callee, load after the return; an
    uncalled function's load must stay unreached."""
    b = ProgramBuilder()
    b.data_word(0x4000, 0)
    b.li(1, 0x4000)
    b.li(2, 1)
    b.store(2, 1)
    b.call("callee")
    b.load(4, 1)          # load B: reached through callee's RET
    b.halt()
    b.label("orphan")     # never called: its load is unreachable
    b.load(6, 1)
    b.ret()
    b.label("callee")
    b.load(3, 1)          # load A: reached through the CALL edge
    b.ret()
    return b.build()


class TestClassification:
    def test_constant_alias_is_must_alias(self):
        program = _aliasing_program()
        summary = compute_memdep_summary(program)
        [store_pc] = _pcs(program, Opcode.STORE)
        [load_pc] = _pcs(program, Opcode.LOAD)
        entry = summary.entry_for(load_pc)
        assert entry is not None
        assert store_pc in entry.may_bypass
        assert store_pc in entry.must_alias
        assert not entry.disjoint

    def test_disjoint_constants_carry_a_proof(self):
        program = _disjoint_program()
        summary = compute_memdep_summary(program)
        [store_pc] = _pcs(program, Opcode.STORE)
        [load_pc] = _pcs(program, Opcode.LOAD)
        entry = summary.entry_for(load_pc)
        assert entry is not None
        assert store_pc not in entry.may_bypass
        assert store_pc not in entry.must_alias
        [proof] = entry.disjoint
        assert proof.store_pc == store_pc
        assert proof.load_pc == load_pc
        assert "disjoint" in proof.reason

    def test_unknown_store_address_is_conservative(self):
        program = _unknown_store_program()
        summary = compute_memdep_summary(program)
        [store_pc] = _pcs(program, Opcode.STORE)
        final_load = _pcs(program, Opcode.LOAD)[-1]
        entry = summary.entry_for(final_load)
        assert entry is not None
        assert store_pc in entry.may_bypass
        assert store_pc not in entry.must_alias

    def test_fence_kills_the_walk(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(1, 0x4000)
        b.li(2, 7)
        b.store(2, 1)
        b.fence()
        b.load(3, 1)
        b.halt()
        summary = compute_memdep_summary(b.build())
        assert summary.pair_count == 0

    def test_window_bounds_the_walk(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(1, 0x4000)
        b.li(2, 7)
        b.store(2, 1)
        b.nop(8)
        b.load(3, 1)
        b.halt()
        program = b.build()
        wide = compute_memdep_summary(program, window=32)
        narrow = compute_memdep_summary(program, window=4)
        assert wide.pair_count == 1
        assert narrow.pair_count == 0


class TestLoopsAndCalls:
    def test_loop_carried_store_under_summary_caps(self):
        program = _loop_program()
        summary = compute_memdep_summary(program)
        [store_pc] = _pcs(program, Opcode.STORE)
        loads = _pcs(program, Opcode.LOAD)
        in_loop, far = loads[0], loads[-1]
        in_entry = summary.entry_for(in_loop)
        assert in_entry is not None
        assert store_pc in in_entry.may_bypass
        far_entry = summary.entry_for(far)
        assert far_entry is not None, \
            "post-loop load never reached by the store walk"
        assert store_pc not in far_entry.may_bypass, \
            "induction caps failed: strided store smeared to the far word"
        assert any(p.store_pc == store_pc for p in far_entry.disjoint)

    def test_call_ret_context_threading(self):
        program = _call_program()
        summary = compute_memdep_summary(program)
        [store_pc] = _pcs(program, Opcode.STORE)
        loads = _pcs(program, Opcode.LOAD)
        load_b, load_orphan, load_a = loads
        for reached in (load_a, load_b):
            entry = summary.entry_for(reached)
            assert entry is not None
            assert store_pc in entry.may_bypass
        # The orphan function is never called; with exact RET
        # threading the walk must not smear into it.
        assert summary.entry_for(load_orphan) is None


class TestDeterminism:
    def test_content_hash_stable_across_recomputation(self):
        program = _loop_program()
        first = compute_memdep_summary(program)
        second = compute_memdep_summary(program)
        assert first.content_hash() == second.content_hash()
        assert first == second

    def test_identical_programs_share_key_and_hash(self):
        one, two = _loop_program(), _loop_program()
        assert memdep_summary_key(one, 192) == memdep_summary_key(two, 192)
        assert (compute_memdep_summary(one).content_hash()
                == compute_memdep_summary(two).content_hash())

    def test_key_depends_on_window_and_program(self):
        program = _loop_program()
        assert memdep_summary_key(program, 192) \
            != memdep_summary_key(program, 64)
        assert memdep_summary_key(program, 192) \
            != memdep_summary_key(_aliasing_program(), 192)

    def test_round_trips_through_dict(self):
        summary = compute_memdep_summary(_loop_program())
        clone = MemDepSummary.from_dict(summary.to_dict())
        assert clone == summary
        assert clone.content_hash() == summary.content_hash()

    def test_foreign_format_rejected(self):
        payload = compute_memdep_summary(_aliasing_program()).to_dict()
        payload["format"] = MEMDEP_FORMAT + 1
        with pytest.raises(ValueError, match="format"):
            MemDepSummary.from_dict(payload)


class TestCaching:
    def test_summary_cache_round_trip(self, tmp_path):
        path = str(tmp_path / "summaries.jsonl")
        program = _loop_program()
        cache = SummaryCache(path=path)
        first = compute_memdep_summary(program, cache=cache)
        cache.close()
        reopened = SummaryCache(path=path)
        second = compute_memdep_summary(program, cache=reopened)
        reopened.close()
        assert second == first

    def test_stale_cache_entry_recomputed(self):
        program = _aliasing_program()
        cache = SummaryCache()
        key = memdep_summary_key(program, 192)
        cache.put(key, {"format": "bogus"})
        summary = compute_memdep_summary(program, window=192,
                                         cache=cache)
        assert summary.pair_count == 1
        cache.close()

    def test_static_store_sets_memoized(self):
        program = build_corpus_variant("v4", "unsafe")
        table = static_store_sets(program)
        assert table  # the unsafe V4 gadget has bypassable loads
        assert static_store_sets(program) is table


class TestCorpusFacts:
    """The facts the delay_on_miss_ss defense and the pre-screen key
    off: the unsafe V4 gadget is bypassable, the fenced one is not."""

    def test_unsafe_v4_gadget_is_may_bypass(self):
        program = build_corpus_variant("v4", "unsafe")
        summary = compute_memdep_summary(program)
        report = analyze_program(program, name="v4")
        v4 = [f for f in report.findings
              if f.kind is GadgetKind.SPECTRE_V4]
        assert v4
        assert all(v4_finding_may_bypass(summary, f) for f in v4)
        block = finding_memdep_block(summary, v4[0])
        assert v4[0].source_pc in block["may_bypass"]

    def test_fenced_v4_gadget_has_no_pairs(self):
        program = build_corpus_variant("v4", "fenced")
        assert compute_memdep_summary(program).pair_count == 0


class TestFenceSynthesisConsumer:
    def test_disjoint_v4_finding_needs_no_fence(self):
        """A V4 S-Pattern whose store→load pair is provably disjoint
        is reported memdep-refuted, not fenced."""
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.data_word(0x5000, 2)
        b.li(1, 0x4000)
        b.li(2, 0x5000)
        b.li(3, 7)
        b.store(3, 1)         # V4 source, provably at 0x4000
        b.load(4, 2)          # tainting load, provably at 0x5000
        b.shli(5, 4, 3)
        b.load(6, 5)          # transmitting second access
        b.halt()
        program = b.build()
        report = analyze_program(program, name="disjoint-v4")
        assert any(f.kind is GadgetKind.SPECTRE_V4
                   for f in report.findings)
        synthesis = synthesize_fences(program, refine=False,
                                      name="disjoint-v4")
        assert synthesis.memdep_refuted
        assert synthesis.clean
        assert synthesis.fence_count == 0

    def test_memdep_false_restores_fencing(self):
        """With the memdep pass disabled the same program is fenced."""
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.data_word(0x5000, 2)
        b.li(1, 0x4000)
        b.li(2, 0x5000)
        b.li(3, 7)
        b.store(3, 1)
        b.load(4, 2)
        b.shli(5, 4, 3)
        b.load(6, 5)
        b.halt()
        synthesis = synthesize_fences(b.build(), refine=False,
                                      memdep=False, name="disjoint-v4")
        assert not synthesis.memdep_refuted
        assert synthesis.fence_count >= 1
        assert synthesis.clean

    def test_bypassable_v4_still_fenced(self):
        program = build_corpus_variant("v4", "unsafe")
        synthesis = synthesize_fences(program, refine=False, name="v4")
        assert synthesis.fence_count >= 1
        assert synthesis.clean
