"""Edge cases and resource-pressure paths of the processor, plus the
``clear_on_resolve`` ablation knob."""
import pytest

from conftest import run_to_halt
from repro import Processor, SecurityConfig, tiny_config
from repro.core.policy import ProtectionMode
from repro.isa import ProgramBuilder, run_oracle
from repro.isa.program import InstructionMemory
from repro.params import with_core


class TestResourcePressure:
    def test_rob_pressure_long_dependence(self):
        """More in-flight instructions than ROB entries still retire
        correctly (dispatch stalls, no corruption)."""
        machine = with_core(tiny_config(), rob_entries=8)
        b = ProgramBuilder()
        b.li(1, 0)
        for i in range(100):
            b.addi(1, 1, 1)
        b.halt()
        cpu, report = run_to_halt(b.build(), machine=machine)
        assert cpu.arch_reg(1) == 100
        assert cpu.stats.get("dispatch_stall_rob") > 0

    def test_ldq_pressure(self):
        machine = with_core(tiny_config(), ldq_entries=2)
        b = ProgramBuilder()
        b.data_words(0x4000, list(range(16)))
        b.li(1, 0x4000).li(2, 0)
        for i in range(16):
            b.load(3, 1, i * 8)
            b.add(2, 2, 3)
        b.halt()
        cpu, _ = run_to_halt(b.build(), machine=machine)
        assert cpu.arch_reg(2) == sum(range(16))

    def test_stq_pressure(self):
        machine = with_core(tiny_config(), stq_entries=2,
                            store_buffer_entries=1)
        b = ProgramBuilder()
        b.li(1, 0x4000)
        for i in range(12):
            b.li(2, i).store(2, 1, i * 8)
        b.halt()
        cpu, _ = run_to_halt(b.build(), machine=machine)
        for i in range(12):
            assert cpu.read_vword(0x4000 + i * 8) == i

    def test_iq_pressure_with_blocked_loads(self):
        """Blocked loads hold IQ slots; a tiny IQ must still drain."""
        machine = with_core(tiny_config(), iq_entries=4)
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)
        b.bne(2, 0, "skip")
        for i in range(4):
            b.li(3, 0x40000 + i * 4096)
            b.load(4, 3)
        b.label("skip")
        b.halt()
        cpu, report = run_to_halt(b.build(), machine=machine,
                                  security=SecurityConfig.cache_hit())
        assert report.halted

    def test_phys_regfile_exhaustion_path(self):
        """With ROB bigger than the PRF margin, dispatch must stall on
        free physical registers rather than corrupt state."""
        machine = with_core(tiny_config(), rob_entries=16)
        b = ProgramBuilder()
        for i in range(60):
            b.li(1 + (i % 5), i)
        b.halt()
        cpu, _ = run_to_halt(b.build(), machine=machine)
        assert cpu.arch_reg(1) == 55   # last write of r1: i == 55


class TestTLBEffects:
    def test_tlb_miss_latency_visible(self):
        """First touch of a page pays the walk; second touch does not."""
        machine = tiny_config()
        b = ProgramBuilder()
        b.li(1, 0x400000)
        b.rdcycle(2).load(3, 1).rdcycle(4)          # TLB miss + mem miss
        b.li(5, 0x400000 + 64)
        b.rdcycle(6).load(7, 5).rdcycle(8)          # TLB hit + mem miss
        b.halt()
        cpu, _ = run_to_halt(b.build(), machine=machine)
        first = cpu.arch_reg(4) - cpu.arch_reg(2)
        second = cpu.arch_reg(8) - cpu.arch_reg(6)
        assert first > second

    def test_shared_pages_through_processor(self):
        """Two virtual pages mapped to one physical page really share
        data."""
        from repro.memory.tlb import PageTable
        table = PageTable()
        table.map_page(0x10)          # vaddr 0x10000
        table.map_shared(0x20, 0x10)  # vaddr 0x20000 -> same frame
        b = ProgramBuilder()
        b.li(1, 0x10000).li(2, 42).store(2, 1)
        b.li(3, 0x20000).load(4, 3)
        b.halt()
        cpu, _ = run_to_halt(b.build(), machine=tiny_config(),
                             page_table=table)
        assert cpu.arch_reg(4) == 42


class TestMultiProgramImage:
    def test_two_programs_one_image(self):
        a = ProgramBuilder(0x1000)
        a.li(1, 5).jmp(0x2000)
        b = ProgramBuilder(0x2000)
        b.addi(1, 1, 10).halt()
        imem = InstructionMemory(a.build(), b.build())
        cpu = Processor(imem, machine=tiny_config())
        report = cpu.run(max_cycles=100_000)
        assert report.halted
        assert cpu.arch_reg(1) == 15


class TestInitialRegisters:
    def test_initial_registers_respected(self):
        b = ProgramBuilder()
        b.add(3, 1, 2).halt()
        cpu, _ = run_to_halt(b.build(),
                             initial_registers={1: 40, 2: 2})
        assert cpu.arch_reg(3) == 42

    def test_r0_initial_ignored(self):
        b = ProgramBuilder()
        b.add(3, 0, 0).halt()
        cpu, _ = run_to_halt(b.build(), initial_registers={0: 99})
        assert cpu.arch_reg(3) == 0


class TestClearOnResolve:
    def _program(self):
        b = ProgramBuilder()
        b.data_words(0x4000, [2, 3, 5, 7])
        b.li(1, 0x4000).li(2, 4).li(3, 0)
        b.label("loop")
        b.load(4, 1).add(3, 3, 4).addi(1, 1, 8).addi(2, 2, -1)
        b.bne(2, 0, "loop")
        b.halt()
        return b.build()

    def _config(self, mode):
        return SecurityConfig(mode=mode, clear_on_resolve=True)

    @pytest.mark.parametrize("mode", [
        ProtectionMode.BASELINE, ProtectionMode.CACHE_HIT,
        ProtectionMode.CACHE_HIT_TPBUF,
    ], ids=lambda m: m.value)
    def test_architecturally_equivalent(self, mode):
        program = self._program()
        oracle = run_oracle(program)
        cpu, report = run_to_halt(program, security=self._config(mode))
        assert cpu.arch_reg(3) == oracle.reg(3) == 17

    def test_at_least_as_conservative_as_issue_clearing(self):
        """Clearing at resolution keeps dependences alive longer, so
        blocking can only increase."""
        program = self._program()
        _, issue_clear = run_to_halt(
            program, security=SecurityConfig.baseline())
        _, resolve_clear = run_to_halt(
            program, security=self._config(ProtectionMode.BASELINE))
        assert resolve_clear.block_events >= issue_clear.block_events

    def test_still_blocks_spectre_v1(self):
        from repro.attacks import build_spectre_v1, run_attack
        result = run_attack(
            build_spectre_v1(),
            security=SecurityConfig(mode=ProtectionMode.CACHE_HIT_TPBUF,
                                    clear_on_resolve=True),
        )
        assert not result.success
