"""The unified experiment API and the bench harness CLI."""
import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.experiments import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
    run_figure5,
)
from repro.perf.bench import (
    BenchResult,
    check_regression,
    load_bench_json,
    run_bench,
    write_bench_json,
)

SCALE = 0.05


class TestRegistry:
    def test_headline_experiments_registered(self):
        assert set(experiment_names()) >= {
            "figure5", "table4", "table5", "table6",
            "fence_study", "lru_study", "precision_study",
        }

    def test_get_unknown_experiment(self):
        with pytest.raises(ConfigError, match="unknown experiment"):
            get_experiment("figure6")

    def test_spec_rejects_unknown_unified_option(self):
        with pytest.raises(ConfigError, match="unknown unified"):
            ExperimentSpec(name="bad", runner=lambda: None,
                           description="", supports=("turbo",))

    def test_register_custom_experiment(self):
        spec = ExperimentSpec(
            name="_test_probe", runner=lambda scale=1.0: scale,
            description="test", supports=("scale",),
        )
        register_experiment(spec)
        try:
            assert run_experiment("_test_probe", scale=0.5) == 0.5
        finally:
            from repro.experiments import api
            del api._REGISTRY["_test_probe"]


class TestFacade:
    def test_matches_direct_runner(self):
        direct = run_figure5(benchmarks=["bzip2"], scale=SCALE)
        via_api = run_experiment("figure5", benchmarks=["bzip2"],
                                 scale=SCALE)
        assert [row.cycles for row in via_api.rows] == \
            [row.cycles for row in direct.rows]

    def test_unsupported_option_is_an_error(self):
        with pytest.raises(ConfigError, match="does not support"):
            run_experiment("table4", checkpoint="x.jsonl")
        with pytest.raises(ConfigError, match="does not support"):
            run_experiment("lru_study", workers=4)

    def test_unknown_extra_is_an_error(self):
        with pytest.raises(ConfigError, match="has no option"):
            run_experiment("figure5", gadgets=["v1"])

    def test_defaults_not_forwarded(self):
        # fence_study defaults to scale=0.3; the facade must not
        # override it with its own default.
        spec = get_experiment("fence_study")
        import inspect
        signature = inspect.signature(spec.runner)
        assert signature.parameters["scale"].default == 0.3

    def test_checkpoint_resume_through_facade(self, tmp_path):
        path = str(tmp_path / "fig5.jsonl")
        first = run_experiment("figure5", benchmarks=["bzip2"],
                               scale=SCALE, checkpoint=path)
        resumed = run_experiment("figure5", benchmarks=["bzip2"],
                                 scale=SCALE, checkpoint=path,
                                 resume=True)
        assert [row.cycles for row in first.rows] == \
            [row.cycles for row in resumed.rows]


class TestBenchHarness:
    def test_run_bench_serial_only(self):
        result = run_bench(benchmarks=["bzip2"], scale=SCALE,
                           parallel=False)
        assert result.rows == 4
        assert result.sim_instructions > 0
        assert result.instructions_per_sec > 0
        assert result.speedup == 1.0

    def test_json_round_trip(self, tmp_path):
        result = run_bench(benchmarks=["bzip2"], scale=SCALE,
                           parallel=False)
        path = str(tmp_path / "BENCH_sweep.json")
        write_bench_json(result, path)
        loaded = load_bench_json(path)
        assert loaded.instructions_per_sec == \
            result.instructions_per_sec
        assert loaded.benchmarks == ["bzip2"]
        with open(path) as handle:
            assert json.load(handle)["format"] == "repro-bench-sweep"

    def test_check_regression(self):
        baseline = BenchResult(machine="paper", scale=1.0,
                               benchmarks=["bzip2"], modes=["origin"],
                               workers=2, instructions_per_sec=10_000)
        good = BenchResult(machine="paper", scale=1.0,
                           benchmarks=["bzip2"], modes=["origin"],
                           workers=2, instructions_per_sec=9_000)
        assert check_regression(good, baseline) == []
        slow = BenchResult(machine="paper", scale=1.0,
                           benchmarks=["bzip2"], modes=["origin"],
                           workers=2, instructions_per_sec=7_000)
        problems = check_regression(slow, baseline)
        assert problems and "regressed" in problems[0]
        diverged = BenchResult(machine="paper", scale=1.0,
                               benchmarks=["bzip2"], modes=["origin"],
                               workers=2, instructions_per_sec=9_500,
                               deterministic=False)
        assert any("diverged" in p
                   for p in check_regression(diverged, baseline))

    def test_should_raise_floor_ratchet(self):
        from repro.perf.bench import should_raise_floor

        def run(ips, deterministic=True, failures=0):
            return BenchResult(machine="paper", scale=1.0,
                               benchmarks=["bzip2"], modes=["origin"],
                               workers=2, instructions_per_sec=ips,
                               deterministic=deterministic,
                               failures=failures)

        baseline = run(10_000)
        # >10% improvement raises the floor; anything at or below the
        # margin is treated as noise
        assert should_raise_floor(run(11_001), baseline)
        assert not should_raise_floor(run(11_000), baseline)
        assert not should_raise_floor(run(10_500), baseline)
        assert not should_raise_floor(run(9_000), baseline)
        # a fast-but-broken run never becomes the new bar
        assert not should_raise_floor(run(20_000, deterministic=False),
                                      baseline)
        assert not should_raise_floor(run(20_000, failures=1), baseline)

    def test_bench_tool_raise_floor_rewrites_baseline(self, tmp_path):
        import importlib.util
        import pathlib

        tool_path = (pathlib.Path(__file__).parent.parent
                     / "tools" / "bench.py")
        spec = importlib.util.spec_from_file_location("bench_tool",
                                                      tool_path)
        bench_tool = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(bench_tool)

        out = str(tmp_path / "BENCH_sweep.json")
        baseline = str(tmp_path / "BENCH_baseline.json")
        # seed an artificially slow baseline, then --check --raise-floor
        # must ratchet it up to the measured run
        slow = BenchResult(machine="paper", scale=SCALE,
                           benchmarks=["bzip2"], modes=["origin"],
                           workers=1, instructions_per_sec=1.0,
                           rows=4, deterministic=True)
        write_bench_json(slow, baseline)
        code = bench_tool.main(["--benchmarks", "bzip2",
                                "--scale", str(SCALE), "--serial-only",
                                "--out", out, "--baseline", baseline,
                                "--check", "--raise-floor"])
        assert code == 0
        raised = load_bench_json(baseline)
        assert raised.instructions_per_sec > 1.0
        measured = load_bench_json(out)
        assert raised.instructions_per_sec == \
            measured.instructions_per_sec

    def test_cli_bench_suite(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_sweep.json")
        code = cli_main(["bench", "--suite", "bzip2",
                         "--scale", str(SCALE), "--serial-only",
                         "--out", out])
        assert code == 0
        captured = capsys.readouterr().out
        assert "simulated throughput" in captured
        assert load_bench_json(out).rows == 4

    def test_cli_bench_single_benchmark_still_works(self, capsys):
        code = cli_main(["bench", "bzip2", "--scale", str(SCALE)])
        assert code == 0
        assert "origin" in capsys.readouterr().out

    def test_cli_bench_rejects_ambiguity(self, capsys):
        assert cli_main(["bench"]) == 2
        assert cli_main(["bench", "bzip2", "mcf"]) == 2
        assert cli_main(["bench", "nonesuch"]) == 2
