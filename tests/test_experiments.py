"""Smoke tests for the experiment drivers on reduced inputs.

Full-size regenerations live in benchmarks/; here each driver runs on
a small benchmark subset at reduced scale and its invariants are
checked.
"""
import pytest

from repro.core.policy import ProtectionMode
from repro.experiments import (
    run_area_study,
    run_benchmark,
    run_fence_ablation,
    run_figure5,
    run_icache_filter_study,
    run_lru_study,
    run_matrix_ablation,
    run_modes,
    run_table5,
    run_table6,
    suite_overheads,
)
from repro.experiments.area_study import render_area_study
from repro.experiments.formatting import percent, text_table
from repro.memory.replacement import SpeculativeLRUPolicy
from repro.params import a57_like

_BENCH = ["hmmer"]
_SCALE = 0.1


class TestFormatting:
    def test_percent(self):
        assert percent(0.1234) == "12.3%"
        assert percent(0.1234, 2) == "12.34%"

    def test_text_table_alignment(self):
        table = text_table(["name", "v"], [["a", "1"], ["bb", "22"]],
                           title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5


class TestRunner:
    def test_run_benchmark_names_report(self):
        report = run_benchmark("hmmer", scale=_SCALE)
        assert report.name == "hmmer"
        assert report.halted

    def test_run_modes_covers_requested(self):
        reports = run_modes("hmmer", scale=_SCALE,
                            modes=[ProtectionMode.ORIGIN,
                                   ProtectionMode.BASELINE])
        assert set(reports) == {ProtectionMode.ORIGIN,
                                ProtectionMode.BASELINE}

    def test_suite_overheads_shape(self):
        result = suite_overheads([ProtectionMode.BASELINE],
                                 benchmarks=_BENCH, scale=_SCALE)
        assert set(result) == set(_BENCH)
        assert ProtectionMode.BASELINE in result["hmmer"]


class TestFigure5:
    def test_rows_and_render(self):
        result = run_figure5(benchmarks=_BENCH, scale=_SCALE)
        assert len(result.rows) == 1
        row = result.row("hmmer")
        assert row.normalized(ProtectionMode.ORIGIN) == 1.0
        text = result.render()
        assert "hmmer" in text and "average" in text

    def test_unknown_row_raises(self):
        result = run_figure5(benchmarks=_BENCH, scale=_SCALE)
        with pytest.raises(KeyError):
            result.row("nonesuch")


class TestTable5:
    def test_rates_are_probabilities(self):
        result = run_table5(benchmarks=_BENCH, scale=_SCALE)
        row = result.row("hmmer")
        for value in (row.l1_hit_rate, row.baseline_blocked,
                      row.cachehit_blocked, row.spec_hit_rate,
                      row.tpbuf_blocked, row.spattern_mismatch):
            assert 0.0 <= value <= 1.0
        assert "hmmer" in result.render()

    def test_tpbuf_blocks_at_most_cache_hit(self):
        result = run_table5(benchmarks=_BENCH, scale=_SCALE)
        row = result.row("hmmer")
        assert row.tpbuf_blocked <= row.cachehit_blocked + 0.02

    def test_averages_row(self):
        result = run_table5(benchmarks=_BENCH, scale=_SCALE)
        assert result.averages().benchmark == "average"


class TestTable6:
    def test_single_machine_subset(self):
        result = run_table6(machines=[a57_like()], benchmarks=_BENCH,
                            scale=_SCALE)
        assert result.machines == ["a57-like"]
        value = result.average_overhead("a57-like",
                                        ProtectionMode.BASELINE)
        assert isinstance(value, float)
        assert "a57-like" in result.render()


class TestLRUStudy:
    def test_policies_compared(self):
        result = run_lru_study(benchmarks=_BENCH, scale=_SCALE)
        assert SpeculativeLRUPolicy.NO_UPDATE in result.cycles["hmmer"]
        text = result.render()
        assert "no_update" in text
        # no_update overhead vs normal should be small either way.
        assert abs(result.average_overhead(
            SpeculativeLRUPolicy.NO_UPDATE)) < 0.2


class TestAreaStudy:
    def test_reports_per_machine(self):
        reports = run_area_study()
        names = [name for name, _ in reports]
        assert "paper" in names
        assert "Section VI.E" in render_area_study(reports)

    def test_larger_iq_larger_matrix(self):
        reports = dict(run_area_study())
        assert reports["xeon-like"].matrix_mm2 > \
            reports["a57-like"].matrix_mm2


class TestAblations:
    def test_matrix_ablation_security_consequence(self):
        result = run_matrix_ablation(benchmarks=_BENCH, scale=_SCALE)
        assert result.v4_leaks_with_branch_only
        assert result.v4_blocked_with_full
        assert "branch-only" in result.render()

    def test_branch_only_is_cheaper(self):
        result = run_matrix_ablation(benchmarks=["lbm"], scale=0.3)
        assert result.average_overhead("branch_only") <= \
            result.average_overhead("full") + 0.02

    def test_icache_filter_study(self):
        result = run_icache_filter_study(benchmarks=_BENCH, scale=_SCALE)
        assert "hmmer" in result.overheads
        assert "icache" in result.render().lower()

    def test_fence_ablation_lfence_is_expensive(self):
        result = run_fence_ablation(benchmarks=["lbm"], scale=0.3)
        per = result.overheads["lbm"]
        assert per["lfence"] > per["tpbuf"]
        assert "lfence" in result.render()
