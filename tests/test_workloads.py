"""Tests for the synthetic workload generators and the SPEC profiles."""
import pytest

from repro import Processor, SecurityConfig, paper_config, run_oracle
from repro.errors import ConfigError
from repro.workloads import (
    SyntheticSpec,
    build_workload,
    spec_names,
    spec_program,
    spec_spec,
)


class TestGenerator:
    def test_deterministic(self):
        spec = SyntheticSpec(name="d", seed=5)
        a = build_workload(spec)
        b = build_workload(spec)
        assert [str(i) for i in a.instructions] == \
            [str(i) for i in b.instructions]

    def test_seed_changes_program(self):
        a = build_workload(SyntheticSpec(name="a", seed=1))
        b = build_workload(SyntheticSpec(name="b", seed=2))
        assert [str(i) for i in a.instructions] != \
            [str(i) for i in b.instructions]

    def test_scale_multiplies_iterations(self):
        spec = SyntheticSpec(name="s", iterations=100)
        program = build_workload(spec, scale=0.1)
        oracle = run_oracle(program, max_instructions=1_000_000)
        small = oracle.retired
        big = run_oracle(build_workload(spec, scale=0.2),
                         max_instructions=1_000_000).retired
        assert big > small

    def test_workload_halts_and_matches_oracle(self):
        spec = SyntheticSpec(name="w", iterations=20, stream_loads=2,
                             stores=1, chase_loads=1, indirect_loads=1,
                             random_loads=1, random_branches=1,
                             page_streams=2, stream_bytes=4096,
                             chase_pages=4)
        program = build_workload(spec)
        oracle = run_oracle(program, max_instructions=1_000_000)
        assert oracle.halted
        cpu = Processor(program, machine=paper_config(),
                        security=SecurityConfig.cache_hit_tpbuf())
        report = cpu.run(max_cycles=2_000_000)
        assert report.halted
        for reg in range(32):
            assert cpu.arch_reg(reg) == oracle.reg(reg)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", page_streams=0)
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", stream_bytes=3000)
        with pytest.raises(ConfigError):
            SyntheticSpec(name="x", stride=7)

    def test_chase_chain_is_a_cycle(self):
        spec = SyntheticSpec(name="c", chase_loads=1, chase_pages=4)
        program = build_workload(spec)
        chain = {addr: value for addr, value in
                 program.initial_memory.items() if addr >= 0xA00000}
        start = next(iter(chain.values()))
        seen = set()
        node = start
        while node not in seen:
            seen.add(node)
            node = chain[node]
        assert len(seen) == len(chain)   # a single cycle covers all nodes


class TestSpecProfiles:
    def test_all_22_benchmarks_present(self):
        assert len(spec_names()) == 22
        for expected in ("astar", "lbm", "libquantum", "mcf", "zeusmp",
                         "GemsFDTD"):
            assert expected in spec_names()

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            spec_spec("nonesuch")

    def test_profiles_build_and_halt(self):
        # A cheap sanity pass over every profile at tiny scale.
        for name in spec_names():
            program = spec_program(name, scale=0.05)
            oracle = run_oracle(program, max_instructions=2_000_000)
            assert oracle.halted, name

    def test_lbm_is_single_stream(self):
        assert spec_spec("lbm").page_streams == 1
        assert spec_spec("lbm").stores_share_stream

    def test_libquantum_is_many_stream(self):
        assert spec_spec("libquantum").page_streams >= 6


@pytest.mark.slow
class TestSpecCharacteristics:
    """Coarse Table V bands on the key benchmarks (full-size runs)."""

    @pytest.fixture(scope="class")
    def reports(self):
        from repro.experiments import run_modes
        from repro.core.policy import ProtectionMode
        names = ("lbm", "GemsFDTD", "libquantum")
        return {name: run_modes(name) for name in names}

    def test_hit_rate_bands(self, reports):
        from repro.core.policy import ProtectionMode
        origin = {n: r[ProtectionMode.ORIGIN] for n, r in reports.items()}
        assert origin["GemsFDTD"].l1d_hit_rate > 0.93
        assert 0.45 < origin["lbm"].l1d_hit_rate < 0.75
        assert origin["GemsFDTD"].l1d_hit_rate > origin["lbm"].l1d_hit_rate

    def test_lbm_tpbuf_rescue(self, reports):
        """The paper's flagship result: TPBuf recovers most of lbm's
        Cache-hit-filter loss (38.1% improvement in the paper)."""
        from repro.core.policy import ProtectionMode
        lbm = reports["lbm"]
        origin = lbm[ProtectionMode.ORIGIN].cycles
        cachehit = lbm[ProtectionMode.CACHE_HIT].cycles / origin - 1
        tpbuf = lbm[ProtectionMode.CACHE_HIT_TPBUF].cycles / origin - 1
        assert tpbuf < cachehit / 2
        assert lbm[ProtectionMode.CACHE_HIT_TPBUF].spattern_mismatch_rate \
            > 0.4

    def test_libquantum_spattern_pathology(self, reports):
        """libquantum's misses overwhelmingly match the S-Pattern, so
        TPBuf gains almost nothing over the Cache-hit filter."""
        from repro.core.policy import ProtectionMode
        lib = reports["libquantum"]
        assert lib[ProtectionMode.CACHE_HIT_TPBUF].spattern_mismatch_rate \
            < 0.1
        origin = lib[ProtectionMode.ORIGIN].cycles
        cachehit = lib[ProtectionMode.CACHE_HIT].cycles / origin
        tpbuf = lib[ProtectionMode.CACHE_HIT_TPBUF].cycles / origin
        assert abs(tpbuf - cachehit) < 0.05

    def test_mode_ordering(self, reports):
        """Baseline >= Cache-hit >= TPBuf (within noise) per benchmark."""
        from repro.core.policy import ProtectionMode
        for name, per_mode in reports.items():
            origin = per_mode[ProtectionMode.ORIGIN].cycles
            base = per_mode[ProtectionMode.BASELINE].cycles / origin
            cachehit = per_mode[ProtectionMode.CACHE_HIT].cycles / origin
            tpbuf = per_mode[ProtectionMode.CACHE_HIT_TPBUF].cycles / origin
            assert base >= cachehit - 0.05, name
            assert cachehit >= tpbuf - 0.05, name
