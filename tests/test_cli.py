"""Tests for the command-line interface."""
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "prog.s"])
        assert args.machine == "paper"
        assert args.mode == "cache_hit_tpbuf"

    def test_attack_choices(self):
        args = build_parser().parse_args(
            ["attack", "v1", "--channel", "prime+probe", "--same-page"]
        )
        assert args.variant == "v1" and args.same_page

    def test_bad_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "v9"])


class TestCommands:
    def test_run_program(self, tmp_path, capsys):
        source = tmp_path / "prog.s"
        source.write_text("li r1, 5\naddi r1, r1, 2\nhalt\n")
        code = main(["run", str(source), "--machine", "tiny", "--regs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "halted=True" in out
        assert "r1 = 0x7" in out

    def test_run_non_halting_returns_error(self, tmp_path, capsys):
        source = tmp_path / "spin.s"
        source.write_text("loop:\njmp loop\n")
        code = main(["run", str(source), "--machine", "tiny",
                     "--max-cycles", "2000"])
        assert code == 1

    def test_attack_v1_origin(self, capsys):
        code = main(["attack", "v1", "--mode", "origin"])
        out = capsys.readouterr().out
        assert code == 0
        assert "LEAKED" in out

    def test_attack_v1_defended(self, capsys):
        code = main(["attack", "v1", "--mode", "cache_hit_tpbuf"])
        out = capsys.readouterr().out
        assert "no-leak" in out

    def test_bench_command(self, capsys):
        code = main(["bench", "hmmer", "--scale", "0.05",
                     "--machine", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "origin" in out and "cache_hit_tpbuf" in out

    def test_bench_unknown_benchmark(self, capsys):
        assert main(["bench", "nonesuch"]) == 2

    def test_area_command(self, capsys):
        assert main(["area"]) == 0
        assert "mm^2" in capsys.readouterr().out

    def test_figure5_subset(self, capsys):
        code = main(["figure5", "--scale", "0.05", "hmmer"])
        out = capsys.readouterr().out
        assert code == 0
        assert "hmmer" in out and "average" in out

    def test_table5_subset(self, capsys):
        code = main(["table5", "--scale", "0.05", "hmmer"])
        assert code == 0
        assert "S-mismatch" in capsys.readouterr().out


_GADGET_SOURCE = """\
li r1, 0
li r2, 0x2000
li r3, 8
bge r1, r3, done
load r4, r2
add r5, r4, r4
load r6, r5
done:
halt
"""

_CLEAN_SOURCE = "li r1, 5\naddi r1, r1, 2\nhalt\n"


class TestAnalyzeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["analyze", "prog.s"])
        assert args.window is None
        assert not args.verify and not args.fail_on_findings

    def test_analyze_finds_gadget(self, tmp_path, capsys):
        source = tmp_path / "gadget.s"
        source.write_text(_GADGET_SOURCE)
        code = main(["analyze", str(source)])
        out = capsys.readouterr().out
        assert code == 0
        assert "spectre-v1" in out and "suggested fence" in out

    def test_analyze_clean_program(self, tmp_path, capsys):
        source = tmp_path / "clean.s"
        source.write_text(_CLEAN_SOURCE)
        code = main(["analyze", str(source), "--fail-on-findings"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no speculative gadgets" in out

    def test_fail_on_findings_exits_nonzero(self, tmp_path, capsys):
        source = tmp_path / "gadget.s"
        source.write_text(_GADGET_SOURCE)
        assert main(["analyze", str(source), "--fail-on-findings"]) == 1

    def test_analyze_json_export(self, tmp_path, capsys):
        import json
        source = tmp_path / "gadget.s"
        source.write_text(_GADGET_SOURCE)
        out_json = tmp_path / "report.json"
        code = main(["analyze", str(source), "--json", str(out_json)])
        assert code == 0
        data = json.loads(out_json.read_text())
        assert data["findings"][0]["kind"] == "spectre-v1"

    def test_analyze_verify(self, tmp_path, capsys):
        source = tmp_path / "gadget.s"
        source.write_text(_GADGET_SOURCE)
        code = main(["analyze", str(source), "--verify",
                     "--machine", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cross-validation" in out and "100%" in out

    def test_analyze_json_matches_golden_schema(self, tmp_path):
        # golden-file pin of the machine-readable report format: any
        # field change must bump SCHEMA_VERSION and regenerate
        # tests/data/analyze_golden.json
        import json
        import pathlib

        from repro.analysis import SCHEMA_VERSION

        golden_path = (pathlib.Path(__file__).parent
                       / "data" / "analyze_golden.json")
        golden = json.loads(golden_path.read_text())
        source = tmp_path / "gadget.s"
        source.write_text(_GADGET_SOURCE)
        out_json = tmp_path / "report.json"
        code = main(["analyze", str(source), "--window", "64",
                     "--refine", "--json", str(out_json)])
        assert code == 0
        produced = json.loads(out_json.read_text())
        # the program name embeds the (tmp) source path
        assert produced.pop("name").endswith("gadget.s")
        golden.pop("name")
        assert produced == golden
        assert produced["schema_version"] == SCHEMA_VERSION == 5

    def test_analyze_corpus_spec(self, capsys):
        code = main(["analyze", "corpus:v1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "spectre-v1" in out

    def test_analyze_corpus_bad_spec_rejected(self, capsys):
        assert main(["analyze", "corpus:nonesuch"]) == 2
        assert main(["analyze", "corpus:v1:bogus"]) == 2

    def test_analyze_refine_refutes_masked_corpus(self, capsys):
        code = main(["analyze", "corpus:v1:masked", "--refine",
                     "--fail-on-findings"])
        out = capsys.readouterr().out
        # the masked variant is flagged by the taint pass but refuted
        # by the value-set pass, so lint mode passes
        assert code == 0
        assert "REFUTED (in-bounds)" in out

    def test_analyze_fail_on_findings_uses_confirmed(self, capsys):
        assert main(["analyze", "corpus:v1", "--refine",
                     "--fail-on-findings"]) == 1

    def test_analyze_fix_synthesizes_and_verifies(self, tmp_path, capsys):
        import json
        out_json = tmp_path / "fix.json"
        code = main(["analyze", "corpus:v1", "--fix",
                     "--json", str(out_json)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fence synthesis" in out
        assert "oracle equivalence: OK" in out
        doc = json.loads(out_json.read_text())
        assert doc["fence_synthesis"]["clean"]
        assert doc["fence_synthesis"]["fence_count"] >= 1

    def test_analyze_secret_flag_parses_hex(self):
        args = build_parser().parse_args(
            ["analyze", "p.s", "--secret", "0x10FC0", "--secret", "8"])
        assert args.secret == ["0x10FC0", "8"]

    def test_analyze_certify_leaky_corpus(self, tmp_path, capsys):
        import json
        out_json = tmp_path / "certified.json"
        code = main(["analyze", "corpus:v1", "--certify",
                     "--json", str(out_json)])
        out = capsys.readouterr().out
        assert code == 0
        assert "LEAKY" in out
        doc = json.loads(out_json.read_text())
        assert doc["schema_version"] == 5
        assert doc["certify"]["verdict"] == "LEAKY"
        certificates = [f["certificate"] for f in doc["findings"]
                        if "certificate" in f]
        assert certificates
        assert any(c["verdict"] == "LEAKY" for c in certificates)
        # v4: every certificate carries its summary provenance
        assert all("summary" in c for c in certificates)
        summary = certificates[0]["summary"]
        assert set(summary) == {"merged_paths", "summarized_loops",
                                "accelerated_loops", "summary_cache_hit"}


class TestCertifyCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["certify", "corpus:v1"])
        assert args.programs == ["corpus:v1"]
        assert not args.fail_on_leak
        assert not args.no_replay

    def test_certify_fenced_corpus_proved_safe(self, capsys):
        code = main(["certify", "corpus:v1:fenced", "corpus:v4:fenced"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.count("PROVED_SAFE") >= 2

    def test_certify_fail_on_leak(self, tmp_path, capsys):
        import json
        out_json = tmp_path / "certify.json"
        code = main(["certify", "corpus:v4", "--fail-on-leak",
                     "--json", str(out_json)])
        out = capsys.readouterr().out
        assert code == 1
        assert "LEAKY" in out
        doc = json.loads(out_json.read_text())
        result = doc["results"][0]
        assert result["verdict"] == "LEAKY"
        assert result["leaks"][0]["replay"]["reproduced"] is True

    def test_certify_leaky_without_fail_flag_exits_zero(self, capsys):
        assert main(["certify", "corpus:rsb", "--no-replay"]) == 0


class TestFenceCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fence"])
        assert args.benchmarks == []
        assert args.scale == pytest.approx(0.3)
        assert args.window is None

    def test_fence_study_smoke(self, tmp_path, capsys):
        import json
        out_json = tmp_path / "fence.json"
        code = main(["fence", "hmmer", "--scale", "0.05",
                     "--machine", "tiny", "--json", str(out_json)])
        out = capsys.readouterr().out
        assert code == 0
        assert "fence study" in out and "hmmer" in out
        doc = json.loads(out_json.read_text())
        assert doc["modes"] == ["unsafe", "fence-all", "synthesized",
                                "cache-hit", "tpbuf"]
        names = {row["name"] for row in doc["rows"]}
        assert {"gadget-v1", "gadget-v2", "gadget-v4",
                "gadget-rsb", "hmmer"} <= names
