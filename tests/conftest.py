"""Shared fixtures and helpers for the test suite."""
from __future__ import annotations

import pytest

from repro import Processor, SecurityConfig, paper_config, tiny_config
from repro.isa.builder import ProgramBuilder


@pytest.fixture
def tiny():
    """A small, fast machine for unit-level pipeline tests."""
    return tiny_config()


@pytest.fixture
def paper():
    """The paper's Table III machine."""
    return paper_config()


@pytest.fixture
def builder():
    return ProgramBuilder()


def run_to_halt(program, machine=None, security=None, max_cycles=200_000,
                initial_registers=None, page_table=None):
    """Run a program to completion and return (processor, report)."""
    cpu = Processor(
        program,
        machine=machine or tiny_config(),
        security=security or SecurityConfig.origin(),
        initial_registers=initial_registers,
        page_table=page_table,
    )
    report = cpu.run(max_cycles=max_cycles)
    assert report.halted, "program did not reach HALT"
    return cpu, report


ALL_SECURITY_CONFIGS = [
    SecurityConfig.origin(),
    SecurityConfig.baseline(),
    SecurityConfig.cache_hit(),
    SecurityConfig.cache_hit_tpbuf(),
]
