"""Tests for the analytic area/timing model (Section VI.E).

The model is calibrated so the paper's reported design points hold;
these tests pin the calibration and the scaling laws.
"""
import pytest

from repro.core.area_model import (
    area_report,
    cache_area_mm2,
    matrix_area_mm2,
    matrix_timing_penalty,
    tpbuf_area_mm2,
)


class TestCalibrationPoints:
    """The paper's numbers: 0.05 mm^2 matrix (3.5% of a 4-way 32KB
    cache), 0.00079 mm^2 TPBuf (0.055%), +1.4% timing."""

    def test_matrix_area_at_64_entries(self):
        assert matrix_area_mm2(64, 4, 4) == pytest.approx(0.05, rel=0.05)

    def test_matrix_fraction_of_reference_cache(self):
        report = area_report(iq_entries=64, lsq_entries=56)
        assert report.matrix_vs_cache == pytest.approx(0.035, rel=0.10)

    def test_tpbuf_area_at_56_entries(self):
        assert tpbuf_area_mm2(56) == pytest.approx(0.00079, rel=0.05)

    def test_tpbuf_fraction_of_reference_cache(self):
        report = area_report(iq_entries=64, lsq_entries=56)
        assert report.tpbuf_vs_cache == pytest.approx(0.00055, rel=0.10)

    def test_timing_penalty_at_64_entries(self):
        assert matrix_timing_penalty(64) == pytest.approx(0.014, rel=0.05)


class TestScalingLaws:
    def test_matrix_scales_quadratically(self):
        small = matrix_area_mm2(32)
        large = matrix_area_mm2(64)
        assert 3.0 < large / small < 4.5   # ~4x for 2x entries

    def test_matrix_grows_with_port_count(self):
        assert matrix_area_mm2(64, 8, 8) > matrix_area_mm2(64, 2, 2)

    def test_tpbuf_scales_superlinearly_with_entries(self):
        # entries x (ppn + status + mask-bits-per-entry)
        assert tpbuf_area_mm2(112) > 2 * tpbuf_area_mm2(56)

    def test_timing_grows_logarithmically(self):
        p32, p64, p128 = (matrix_timing_penalty(n) for n in (32, 64, 128))
        assert p32 < p64 < p128
        assert (p64 - p32) == pytest.approx(p128 - p64, rel=0.01)

    def test_cache_area_monotone_in_size(self):
        assert cache_area_mm2(64 * 1024, 4) > cache_area_mm2(32 * 1024, 4)

    def test_report_renders(self):
        text = area_report().render()
        assert "mm^2" in text and "critical-path" in text
