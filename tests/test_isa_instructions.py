"""Unit tests for instruction classification and ALU/branch semantics."""
import pytest

from repro.isa.instructions import (
    Instruction,
    Opcode,
    OpClass,
    branch_taken,
    evaluate_alu,
    mask64,
    to_signed,
)


class TestClassification:
    def test_load_is_memory(self):
        inst = Instruction(Opcode.LOAD, rd=1, rs1=2)
        assert inst.is_load and inst.is_memory and not inst.is_store

    def test_store_is_memory(self):
        inst = Instruction(Opcode.STORE, rs1=1, rs2=2)
        assert inst.is_store and inst.is_memory and not inst.is_load

    def test_clflush_is_memory(self):
        inst = Instruction(Opcode.CLFLUSH, rs1=1)
        assert inst.is_flush and inst.is_memory

    def test_alu_is_not_memory(self):
        assert not Instruction(Opcode.ADD, rd=1, rs1=2, rs2=3).is_memory

    @pytest.mark.parametrize("op", [Opcode.BEQ, Opcode.BNE, Opcode.BLT,
                                    Opcode.BGE])
    def test_conditional_branches(self, op):
        inst = Instruction(op, rs1=1, rs2=2, target=0x100)
        assert inst.is_branch and inst.is_conditional_branch
        assert inst.opclass is OpClass.BRANCH

    def test_jmp_is_branch_not_conditional(self):
        inst = Instruction(Opcode.JMP, target=0x100)
        assert inst.is_branch and not inst.is_conditional_branch

    def test_jmpi_is_indirect(self):
        inst = Instruction(Opcode.JMPI, rs1=5)
        assert inst.is_branch and inst.is_indirect

    @pytest.mark.parametrize("op", [Opcode.FENCE, Opcode.RDCYCLE])
    def test_serializing(self, op):
        assert Instruction(op, rd=1).is_serializing

    def test_branch_is_not_serializing(self):
        assert not Instruction(Opcode.BEQ, rs1=1, rs2=2).is_serializing


class TestRegisterUsage:
    def test_alu_dest_and_sources(self):
        inst = Instruction(Opcode.ADD, rd=3, rs1=1, rs2=2)
        assert inst.dest == 3
        assert inst.sources == (1, 2)

    def test_alu_imm_sources(self):
        inst = Instruction(Opcode.ADDI, rd=3, rs1=1, imm=5)
        assert inst.dest == 3
        assert inst.sources == (1,)

    def test_li_has_dest_no_sources(self):
        inst = Instruction(Opcode.LI, rd=4, imm=9)
        assert inst.dest == 4
        assert inst.sources == ()

    def test_load_dest_and_sources(self):
        inst = Instruction(Opcode.LOAD, rd=2, rs1=7, imm=8)
        assert inst.dest == 2
        assert inst.sources == (7,)

    def test_store_has_no_dest(self):
        inst = Instruction(Opcode.STORE, rs1=7, rs2=3)
        assert inst.dest is None
        assert inst.sources == (7, 3)

    def test_branch_has_no_dest(self):
        inst = Instruction(Opcode.BNE, rs1=1, rs2=2)
        assert inst.dest is None

    def test_rdcycle_dest(self):
        assert Instruction(Opcode.RDCYCLE, rd=9).dest == 9

    def test_jmpi_source(self):
        assert Instruction(Opcode.JMPI, rs1=6).sources == (6,)

    def test_clflush_source(self):
        assert Instruction(Opcode.CLFLUSH, rs1=6).sources == (6,)

    def test_nop_no_regs(self):
        inst = Instruction(Opcode.NOP)
        assert inst.dest is None and inst.sources == ()


class TestALUSemantics:
    def test_add_wraps(self):
        assert evaluate_alu(Opcode.ADD, (1 << 64) - 1, 1) == 0

    def test_sub_wraps(self):
        assert evaluate_alu(Opcode.SUB, 0, 1) == (1 << 64) - 1

    def test_mul(self):
        assert evaluate_alu(Opcode.MUL, 7, 6) == 42

    def test_div(self):
        assert evaluate_alu(Opcode.DIV, 42, 5) == 8

    def test_div_by_zero_is_all_ones(self):
        assert evaluate_alu(Opcode.DIV, 42, 0) == (1 << 64) - 1

    def test_logical(self):
        assert evaluate_alu(Opcode.AND, 0b1100, 0b1010) == 0b1000
        assert evaluate_alu(Opcode.OR, 0b1100, 0b1010) == 0b1110
        assert evaluate_alu(Opcode.XOR, 0b1100, 0b1010) == 0b0110

    def test_shift_amount_masked_to_6_bits(self):
        assert evaluate_alu(Opcode.SHL, 1, 64) == 1
        assert evaluate_alu(Opcode.SHL, 1, 65) == 2

    def test_shr_logical(self):
        assert evaluate_alu(Opcode.SHR, 1 << 63, 63) == 1

    def test_mov_passes_first_operand(self):
        assert evaluate_alu(Opcode.MOV, 123, 0) == 123

    def test_non_alu_raises(self):
        with pytest.raises(ValueError):
            evaluate_alu(Opcode.LOAD, 1, 2)


class TestBranchSemantics:
    def test_beq(self):
        assert branch_taken(Opcode.BEQ, 5, 5)
        assert not branch_taken(Opcode.BEQ, 5, 6)

    def test_bne(self):
        assert branch_taken(Opcode.BNE, 5, 6)
        assert not branch_taken(Opcode.BNE, 5, 5)

    def test_blt_signed(self):
        minus_one = (1 << 64) - 1
        assert branch_taken(Opcode.BLT, minus_one, 0)
        assert not branch_taken(Opcode.BLT, 0, minus_one)

    def test_bge_signed(self):
        minus_one = (1 << 64) - 1
        assert branch_taken(Opcode.BGE, 0, minus_one)
        assert branch_taken(Opcode.BGE, 3, 3)

    def test_non_branch_raises(self):
        with pytest.raises(ValueError):
            branch_taken(Opcode.ADD, 1, 2)


class TestHelpers:
    def test_mask64(self):
        assert mask64(1 << 64) == 0
        assert mask64(-1) == (1 << 64) - 1

    def test_to_signed(self):
        assert to_signed((1 << 64) - 1) == -1
        assert to_signed(5) == 5
        assert to_signed(1 << 63) == -(1 << 63)
