"""Tests for the Trusted Page Buffer (Section V.D semantics)."""
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tpbuf import TPBuf
from repro.errors import ConfigError


def allocate_entry(tpbuf, index, ppn=None, suspect=False, writeback=False):
    tpbuf.allocate(index)
    if ppn is not None:
        tpbuf.set_ppn(index, ppn)
    tpbuf.set_suspect(index, suspect)
    if writeback:
        tpbuf.set_writeback(index)


class TestLifecycle:
    def test_mask_snapshots_older_entries(self):
        tpbuf = TPBuf(8)
        tpbuf.allocate(0)
        tpbuf.allocate(3)
        tpbuf.allocate(5)
        assert tpbuf.slot(0).mask == 0
        assert tpbuf.slot(3).mask == 0b000001
        assert tpbuf.slot(5).mask == 0b001001

    def test_deallocate_clears_from_younger_masks(self):
        tpbuf = TPBuf(8)
        tpbuf.allocate(0)
        tpbuf.allocate(1)
        tpbuf.deallocate(0)
        assert tpbuf.slot(1).mask == 0

    def test_double_allocation_rejected(self):
        tpbuf = TPBuf(4)
        tpbuf.allocate(2)
        with pytest.raises(ConfigError):
            tpbuf.allocate(2)

    def test_slot_reuse_after_deallocate(self):
        tpbuf = TPBuf(4)
        allocate_entry(tpbuf, 1, ppn=7, suspect=True, writeback=True)
        tpbuf.deallocate(1)
        tpbuf.allocate(1)
        slot = tpbuf.slot(1)
        assert not slot.suspect and not slot.writeback and not slot.valid

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigError):
            TPBuf(0)

    def test_allocated_count(self):
        tpbuf = TPBuf(4)
        tpbuf.allocate(0)
        tpbuf.allocate(2)
        assert tpbuf.allocated_count() == 2


class TestSPatternDetection:
    """Equation 1 / Table II: unsafe iff an *older* entry has
    V & W & S and a different PPN."""

    def test_different_page_older_suspect_writeback_is_unsafe(self):
        tpbuf = TPBuf(8)
        allocate_entry(tpbuf, 0, ppn=0x100, suspect=True, writeback=True)
        tpbuf.allocate(1)
        assert not tpbuf.is_safe(1, incoming_ppn=0x200)

    def test_same_page_is_safe(self):
        tpbuf = TPBuf(8)
        allocate_entry(tpbuf, 0, ppn=0x100, suspect=True, writeback=True)
        tpbuf.allocate(1)
        assert tpbuf.is_safe(1, incoming_ppn=0x100)

    def test_not_suspect_entry_is_ignored(self):
        tpbuf = TPBuf(8)
        allocate_entry(tpbuf, 0, ppn=0x100, suspect=False, writeback=True)
        tpbuf.allocate(1)
        assert tpbuf.is_safe(1, incoming_ppn=0x200)

    def test_no_writeback_entry_is_ignored(self):
        """A suspect access whose data is not yet available cannot have
        fed the incoming access's address - not an S-Pattern."""
        tpbuf = TPBuf(8)
        allocate_entry(tpbuf, 0, ppn=0x100, suspect=True, writeback=False)
        tpbuf.allocate(1)
        assert tpbuf.is_safe(1, incoming_ppn=0x200)

    def test_no_valid_ppn_entry_is_ignored(self):
        tpbuf = TPBuf(8)
        tpbuf.allocate(0)
        tpbuf.set_suspect(0, True)
        tpbuf.set_writeback(0)
        tpbuf.allocate(1)
        assert tpbuf.is_safe(1, incoming_ppn=0x200)

    def test_younger_entries_do_not_flag(self):
        """Only entries older in program order (the Mask) matter."""
        tpbuf = TPBuf(8)
        tpbuf.allocate(1)   # incoming allocated first
        allocate_entry(tpbuf, 0, ppn=0x999, suspect=True, writeback=True)
        assert tpbuf.is_safe(1, incoming_ppn=0x200)

    def test_empty_buffer_is_safe(self):
        tpbuf = TPBuf(8)
        tpbuf.allocate(0)
        assert tpbuf.is_safe(0, incoming_ppn=0x100)

    def test_any_one_matching_entry_suffices(self):
        tpbuf = TPBuf(8)
        allocate_entry(tpbuf, 0, ppn=0x100, suspect=True, writeback=True)
        allocate_entry(tpbuf, 1, ppn=0x200, suspect=False, writeback=True)
        tpbuf.allocate(2)
        assert not tpbuf.is_safe(2, incoming_ppn=0x300)

    def test_mismatch_rate(self):
        tpbuf = TPBuf(8)
        allocate_entry(tpbuf, 0, ppn=0x100, suspect=True, writeback=True)
        tpbuf.allocate(1)
        tpbuf.is_safe(1, incoming_ppn=0x100)   # safe
        tpbuf.is_safe(1, incoming_ppn=0x200)   # unsafe
        assert tpbuf.mismatch_rate() == 0.5

    def test_clear_writeback(self):
        tpbuf = TPBuf(8)
        allocate_entry(tpbuf, 0, ppn=0x100, suspect=True, writeback=True)
        tpbuf.clear_writeback(0)
        tpbuf.allocate(1)
        assert tpbuf.is_safe(1, incoming_ppn=0x200)


class TestTPBufProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        entries=st.lists(
            st.tuples(st.integers(0x100, 0x104), st.booleans(),
                      st.booleans()),
            min_size=0, max_size=6,
        ),
        incoming_ppn=st.integers(0x100, 0x104),
    )
    def test_is_safe_matches_reference_predicate(self, entries,
                                                 incoming_ppn):
        """Model-based check of equation 1 over arbitrary older-entry
        populations."""
        tpbuf = TPBuf(8)
        for index, (ppn, suspect, writeback) in enumerate(entries):
            allocate_entry(tpbuf, index, ppn=ppn, suspect=suspect,
                           writeback=writeback)
        incoming = len(entries)
        tpbuf.allocate(incoming)
        expected_unsafe = any(
            suspect and writeback and ppn != incoming_ppn
            for ppn, suspect, writeback in entries
        )
        assert tpbuf.is_safe(incoming, incoming_ppn) == (not expected_unsafe)
