"""Tests for the value-set lattice and finding refutation."""
import pytest

from repro.analysis import (
    ValueSet,
    ValueSetLattice,
    ValueSetState,
    analyze_program,
    compute_value_sets,
    corpus_precision,
    cross_validate,
    refine_report,
)
from repro.analysis.corpus import (
    CORPUS_VARIANTS,
    GADGET_KINDS,
    build_corpus_variant,
    corpus_secret_words,
)
from repro.analysis.valueset import (
    TOP,
    U64_MAX,
    ZERO,
    constant,
    data_regions,
    vs_add,
    vs_and,
    vs_div,
    vs_join,
    vs_mul,
    vs_shl,
    vs_shr,
    vs_sub,
    vs_widen,
)
from repro.isa import ProgramBuilder


def interval(lo, hi, stride=1):
    return ValueSet(lo, hi, stride)


class TestValueSetOps:
    def test_constant_and_top_predicates(self):
        assert constant(5).is_constant and not constant(5).is_top
        assert TOP.is_top and not TOP.is_bounded
        assert ZERO == constant(0)

    def test_invalid_intervals_rejected(self):
        with pytest.raises(ValueError):
            ValueSet(5, 4, 1)
        with pytest.raises(ValueError):
            ValueSet(1, 2, 0)  # stride 0 must mean constant

    def test_join_hull_and_stride_gcd(self):
        joined = vs_join(constant(0x6000), constant(0x6018))
        assert (joined.lo, joined.hi, joined.stride) == (0x6000, 0x6018, 0x18)
        # mixing strides takes the gcd of strides and offsets
        joined = vs_join(interval(0, 8, 4), interval(16, 32, 8))
        assert joined.stride == 4
        assert vs_join(TOP, constant(1)).is_top

    def test_widen_jumps_unstable_bounds(self):
        widened = vs_widen(interval(4, 4, 0), interval(3, 4, 1))
        assert (widened.lo, widened.hi) == (0, 4)
        widened = vs_widen(interval(0, 4, 1), interval(0, 5, 1))
        assert widened.hi == U64_MAX
        assert vs_widen(constant(7), constant(7)) == constant(7)

    def test_arithmetic(self):
        assert vs_add(constant(2), constant(3)) == constant(5)
        assert vs_add(interval(0, 56, 8), constant(0x6000)) == \
            interval(0x6000, 0x6038, 8)
        assert vs_sub(constant(10), constant(4)) == constant(6)
        assert vs_sub(constant(0), constant(1)).is_top  # wraps
        assert vs_mul(interval(0, 7), constant(8)) == interval(0, 56, 8)
        assert vs_div(interval(0, 56, 8), constant(8)) == interval(0, 7)
        assert vs_add(TOP, constant(1)).is_top

    def test_shifts(self):
        assert vs_shl(interval(0, 7), 3) == interval(0, 56, 8)
        assert vs_shr(interval(0, 56, 8), 3) == interval(0, 7)
        assert vs_shl(constant(1), 64).is_top
        assert vs_shl(interval(0, U64_MAX - 1), 1).is_top  # overflow

    def test_and_masking(self):
        # the Spectre-mask idiom: unknown & 7 is bounded by [0, 7]
        assert vs_and(TOP, constant(7)) == interval(0, 7)
        assert vs_and(constant(0b1100), constant(0b1010)) == constant(0b1000)
        assert vs_and(TOP, TOP).is_top

    def test_shift_detects_wraparound(self):
        assert constant(U64_MAX).shift(1) is None
        assert constant(1).shift(-2) is None
        assert constant(8).shift(8) == constant(16)


class TestLatticeTransfer:
    def _fixpoint(self, build):
        b = ProgramBuilder()
        build(b)
        program = b.build()
        return program, compute_value_sets(program)

    def test_straightline_mask_chain(self):
        def build(b):
            b.li(1, 0x6000)
            b.load(2, 1)           # unknown value
            b.andi(2, 2, 7)        # -> [0, 7]
            b.shli(2, 2, 3)        # -> [0, 56]/8
            b.add(3, 1, 2)         # -> [0x6000, 0x6038]/8
            b.halt()

        program, values = self._fixpoint(build)
        state = values.state_before(program.address_of(5))
        assert state.value_of(1) == constant(0x6000)
        assert state.value_of(2) == interval(0, 56, 8)
        assert state.value_of(3) == interval(0x6000, 0x6038, 8)

    def test_loads_produce_top(self):
        def build(b):
            b.li(1, 0x6000)
            b.load(2, 1)
            b.halt()

        program, values = self._fixpoint(build)
        state = values.state_before(program.address_of(2))
        assert state.value_of(2).is_top

    def test_r0_is_always_zero(self):
        state = ValueSetState()
        assert state.value_of(0) == ZERO
        assert state.with_value(0, TOP).value_of(0) == ZERO

    def test_reset_state_registers_are_zero(self):
        def build(b):
            b.addi(2, 7, 5)   # r7 is 0 at reset -> r2 == 5
            b.halt()

        program, values = self._fixpoint(build)
        state = values.state_before(program.address_of(1))
        assert state.value_of(2) == constant(5)

    def test_join_drops_conflicting_constants_to_hull(self):
        lattice = ValueSetLattice()
        a = ValueSetState().with_value(1, constant(4))
        b = ValueSetState().with_value(1, constant(8))
        joined = lattice.join(a, b)
        assert joined.value_of(1) == interval(4, 8, 4)
        # a register bounded on only one side joins to TOP (absent)
        joined = lattice.join(a, ValueSetState())
        assert joined.value_of(1).is_top

    def test_loop_counter_widens_but_invariant_survives(self):
        # back-edge convergence on the real lattice: the decremented
        # counter must widen away while the loop-invariant base
        # register stays a constant through the fixpoint
        def build(b):
            b.li(1, 100)
            b.li(2, 0x6000)
            b.label("loop")
            b.addi(1, 1, -1)
            b.bne(1, 0, "loop")
            b.mov(3, 2)
            b.halt()

        program, values = self._fixpoint(build)
        state = values.state_before(program.labels["loop"])
        assert state.value_of(2) == constant(0x6000)
        counter = state.value_of(1)
        assert counter.is_top or counter.hi == 100


class TestDataRegions:
    def test_contiguous_runs_merge(self):
        b = ProgramBuilder()
        for i in range(4):
            b.data_word(0x6000 + 8 * i, i)
        b.data_word(0x9000, 1)
        b.halt()
        regions = data_regions(b.build())
        assert (0x6000, 0x6018) in regions
        assert (0x9000, 0x9000) in regions

    def test_empty_program_has_no_regions(self):
        b = ProgramBuilder()
        b.halt()
        assert data_regions(b.build()) == []


class TestRefinement:
    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_unsafe_variants_confirmed(self, kind):
        program = build_corpus_variant(kind, "unsafe")
        report = analyze_program(program, name=kind)
        refined = refine_report(program, report,
                                secret_words=corpus_secret_words())
        assert report.findings, f"{kind}: unsafe variant must be flagged"
        assert refined.confirmed and not refined.refuted
        assert not refined.clean

    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_masked_variants_fully_refuted(self, kind):
        program = build_corpus_variant(kind, "masked")
        report = analyze_program(program, name=kind)
        refined = refine_report(program, report,
                                secret_words=corpus_secret_words())
        assert report.findings, \
            f"{kind}: masked variant is still an S-Pattern to the taint pass"
        assert refined.clean and refined.refuted
        assert refined.false_positive_reduction == 1.0

    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_fenced_variants_clean_before_refinement(self, kind):
        program = build_corpus_variant(kind, "fenced")
        report = analyze_program(program, name=kind)
        assert not report.findings

    def test_refutations_carry_machine_checkable_bounds(self):
        program = build_corpus_variant("v1", "masked")
        report = analyze_program(program, name="v1-masked")
        refined = refine_report(program, report,
                                secret_words=corpus_secret_words())
        regions = data_regions(program)
        for refuted in refined.refuted:
            assert refuted.refutation.reason in ("in-bounds", "no-alias")
            assert refuted.refutation.bounds
            for bound in refuted.refutation.bounds:
                assert bound.lo <= bound.hi
                assert (bound.region_lo, bound.region_hi) in regions
                assert bound.region_lo <= bound.lo
                assert bound.hi <= bound.region_hi + 7
                for secret in corpus_secret_words():
                    assert not (bound.lo <= secret + 7
                                and secret <= bound.hi + 7)

    def test_v4_refutation_uses_no_alias(self):
        program = build_corpus_variant("v4", "masked")
        report = analyze_program(program, name="v4-masked")
        refined = refine_report(program, report,
                                secret_words=corpus_secret_words())
        assert refined.clean
        reasons = {r.refutation.reason for r in refined.refuted
                   if r.finding.kind.value == "spectre-v4"}
        assert reasons == {"no-alias"}

    def test_secret_words_block_refutation(self):
        # a masked chain that reads the declared secret region must
        # stay confirmed no matter how bounded the address set is
        from repro.attacks.layout import AttackLayout

        layout = AttackLayout()
        b = ProgramBuilder(base_address=layout.code_base)
        for i in range(2):
            b.data_word(layout.secret_addr + 8 * i, 0x41)
        b.li(1, 0x80)
        b.beq(1, 0, "skip")
        b.li(2, layout.secret_addr)
        b.load(3, 2, note="bounded secret read")
        b.shli(3, 3, 6)
        b.li(4, layout.secret_addr)
        b.add(4, 4, 3)
        b.load(5, 4, note="transmit")
        b.label("skip")
        b.halt()
        program = b.build()
        report = analyze_program(program, name="secret-read")
        assert report.findings
        without = refine_report(program, report)
        with_secret = refine_report(
            program, report, secret_words=(layout.secret_addr,))
        assert len(with_secret.confirmed) >= len(without.confirmed)
        assert with_secret.confirmed, \
            "declared secret read must survive refinement"

    def test_refinement_preserves_static_suspects(self):
        # refinement downgrades findings, never the suspect set the
        # dynamic cross-validation is checked against
        program = build_corpus_variant("v1", "masked")
        report = analyze_program(program, name="v1-masked")
        refined = refine_report(program, report,
                                secret_words=corpus_secret_words())
        assert refined.clean
        assert refined.base.suspect_pcs == report.suspect_pcs
        assert report.suspect_pcs
        result = cross_validate(program, name="v1-masked")
        assert result.covered


class TestCorpusPrecision:
    """Satellite: asserted precision numbers on the gadget corpus."""

    @pytest.fixture(scope="class")
    def precision(self):
        return corpus_precision()

    def test_case_grid_is_complete(self, precision):
        kinds = {case.kind for case in precision.cases}
        variants = {case.variant for case in precision.cases}
        assert kinds == set(GADGET_KINDS)
        assert variants == set(CORPUS_VARIANTS)
        assert len(precision.cases) == len(GADGET_KINDS) * len(CORPUS_VARIANTS)

    def test_false_positive_rate_halves_to_zero(self, precision):
        assert precision.fp_rate_before == pytest.approx(0.5)
        assert precision.fp_rate_after == 0.0

    def test_no_false_negatives_before_or_after(self, precision):
        assert precision.fn_rate_before == 0.0
        assert precision.fn_rate_after == 0.0

    def test_refinement_strictly_reduces_suspects(self, precision):
        # the ISSUE acceptance bar: strictly fewer flagged benign
        # programs after refinement, no lost gadgets
        benign = [c for c in precision.cases if not c.is_gadget]
        gadgets = [c for c in precision.cases if c.is_gadget]
        assert sum(c.flagged_after for c in benign) < \
            sum(c.flagged_before for c in benign)
        for case in gadgets:
            assert case.flagged_before and case.flagged_after

    def test_render_smoke(self, precision):
        text = precision.render()
        assert "precision" in text
        assert "masked" in text


class TestAcceleratedWidening:
    """Regression pins for induction-variable acceleration: counter
    loops the plain widening fixpoint blows to TOP must converge to
    finite strided intervals once the summary caps are met in, and
    the refutations earned that way must carry the ``accelerated``
    reason."""

    WINDOW = 64
    BOUND = 4

    def _counter_program(self, triangular=False):
        from repro.analysis.valueset import WORD_BYTES

        base = 0x6000
        b = ProgramBuilder()
        # Cover every capped index: the cap adds (window + 1) * step
        # of speculative overshoot per loop level.
        words = self.BOUND + 2 * (self.WINDOW + 1) + 8
        for i in range(words):
            b.data_word(base + WORD_BYTES * i, i)
        b.li(5, base)
        b.li(9, self.BOUND)
        b.li(1, 0)                     # outer counter
        b.label("outer")
        b.li(2, 0)                     # inner counter
        b.label("inner")
        b.shli(3, 2, 3)
        b.add(4, 5, 3)
        b.load(6, 4, note="counter-indexed load")
        b.andi(7, 6, 7)
        b.shli(7, 7, 3)
        b.add(8, 5, 7)
        b.load(10, 8, note="transmit")
        b.addi(2, 2, 1)
        if triangular:
            b.blt(2, 1, "inner")       # inner bound = outer counter
        else:
            b.blt(2, 9, "inner")
        b.addi(1, 1, 1)
        b.blt(1, 9, "outer")
        b.halt()
        return b.build()

    def _caps(self, program):
        from repro.analysis.summaries import summarize_program

        summaries = summarize_program(program, window=self.WINDOW)
        return summaries, summaries.induction_caps()

    def test_nested_counter_loops_converge(self):
        program = self._counter_program()
        load_pc = next(addr for addr, instr in program.iter_addressed()
                       if instr.note == "counter-indexed load")
        plain = compute_value_sets(program)
        widened = plain.state_before(load_pc).value_of(2)
        assert widened.is_top or widened.hi == U64_MAX

        summaries, caps = self._caps(program)
        assert set(caps) == {1, 2}, "both counters must be recognized"
        expected_hi = self.BOUND + (self.WINDOW + 1)
        assert caps[2] == interval(0, expected_hi, 1)
        accel = compute_value_sets(program, caps=caps)
        for reg in (1, 2):
            value = accel.state_before(load_pc).value_of(reg)
            assert value.is_bounded
            assert value.hi == expected_hi
        address = accel.state_before(load_pc).value_of(4)
        assert address == interval(0x6000, 0x6000 + 8 * expected_hi, 8)

    def test_triangular_counter_loops_converge(self):
        # The inner bound *is* the outer counter; only the outer cap
        # makes the inner one derivable.
        program = self._counter_program(triangular=True)
        load_pc = next(addr for addr, instr in program.iter_addressed()
                       if instr.note == "counter-indexed load")
        summaries, caps = self._caps(program)
        assert set(caps) == {1, 2}
        outer_hi = self.BOUND + (self.WINDOW + 1)
        assert caps[1].hi == outer_hi
        assert caps[2].hi == outer_hi + (self.WINDOW + 1)
        accel = compute_value_sets(program, caps=caps)
        value = accel.state_before(load_pc).value_of(2)
        assert value.is_bounded and value.hi == caps[2].hi

    def test_accelerated_refutation_reason_pinned(self):
        program = self._counter_program()
        report = analyze_program(program, window=self.WINDOW,
                                 name="nested-counters")
        assert report.findings
        plain = refine_report(program, report)
        assert plain.confirmed, \
            "plain widening must fail so acceleration has work to do"

        summaries, _caps = self._caps(program)
        accelerated = refine_report(program, report,
                                    summaries=summaries)
        assert not accelerated.confirmed
        assert accelerated.accelerated_count >= 1
        reasons = {r.refutation.reason for r in accelerated.refuted}
        assert "accelerated" in reasons
        pinned = [r for r in accelerated.refuted
                  if r.refutation.reason == "accelerated"]
        for refuted in pinned:
            assert "induction caps" in refuted.refutation.detail
            assert refuted.refutation.bounds
        assert accelerated.to_dict()["accelerated"] == len(pinned)

    def test_acceleration_never_unrefutes(self):
        # caps only *add* information: anything the plain pass refutes
        # stays refuted, with the original (stronger) reason
        program = build_corpus_variant("v1", "masked")
        report = analyze_program(program, name="v1-masked")
        plain = refine_report(program, report,
                              secret_words=corpus_secret_words())
        from repro.analysis.summaries import summarize_program
        from repro.analysis.taint import DEFAULT_WINDOW

        summaries = summarize_program(program, window=DEFAULT_WINDOW)
        accel = refine_report(program, report,
                              secret_words=corpus_secret_words(),
                              summaries=summaries)
        assert {r.finding.sink_pc for r in accel.refuted} >= \
            {r.finding.sink_pc for r in plain.refuted}
        assert len(accel.confirmed) <= len(plain.confirmed)
