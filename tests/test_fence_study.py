"""Tests for the fence overhead study (software repair vs hardware)."""
import pytest

from repro.experiments import FENCE_STUDY_MODES, run_fence_study


@pytest.fixture(scope="module")
def study():
    return run_fence_study(benchmarks=["bzip2", "mcf"], scale=0.15)


class TestFenceStudy:
    def test_row_coverage(self, study):
        gadget_rows = study.group_rows("gadget")
        spec_rows = study.group_rows("spec")
        assert {row.name for row in gadget_rows} == \
            {"gadget-v1", "gadget-v2", "gadget-v4", "gadget-rsb"}
        assert {row.name for row in spec_rows} == {"bzip2", "mcf"}
        for row in study.rows:
            assert set(row.cycles) == set(FENCE_STUDY_MODES)
            assert all(c > 0 for c in row.cycles.values())

    def test_acceptance_ordering_on_spec(self, study):
        # the ISSUE acceptance bar: blanket fencing costs more than the
        # synthesized minimal placement, which costs more than the
        # paper's hardware filters
        fence_all = study.average_overhead("fence-all", "spec")
        synthesized = study.average_overhead("synthesized", "spec")
        cache_hit = study.average_overhead("cache-hit", "spec")
        tpbuf = study.average_overhead("tpbuf", "spec")
        assert fence_all > synthesized > cache_hit
        assert cache_hit >= tpbuf >= 0.0
        assert fence_all > 0.5, "blanket fencing must be ruinous"

    def test_ordering_holds_per_spec_row(self, study):
        for row in study.group_rows("spec"):
            assert row.overhead("fence-all") > row.overhead("synthesized")
            assert row.overhead("synthesized") > row.overhead("cache-hit")

    def test_synthesized_fence_counts_minimal(self, study):
        for row in study.rows:
            assert row.fences_synthesized <= row.fences_all
        for row in study.group_rows("gadget"):
            # every corpus gadget is repaired with a single fence
            assert row.fences_synthesized == 1
            assert row.fences_all > 1
            assert row.confirmed >= 1

    def test_render_and_to_dict(self, study):
        text = study.render()
        assert "fence study" in text
        assert "average (spec)" in text and "average (gadget)" in text
        doc = study.to_dict()
        assert doc["modes"] == list(FENCE_STUDY_MODES)
        averages = doc["averages"]["spec"]
        assert averages["fence-all"] > averages["synthesized"] > \
            averages["cache-hit"]
