"""Tests for the CFG builder and the forward dataflow engine."""
import pytest

from repro.analysis import ForwardDataflow, Lattice, build_cfg
from repro.isa import ProgramBuilder


def _cfg(build):
    b = ProgramBuilder()
    build(b)
    return build_cfg(b.build())


def diamond_program(b):
    """if (r1 == 0) r2 = 1 else r2 = 2; r3 = r2."""
    b.li(1, 0)
    b.beq(1, 0, "then")
    b.li(2, 2)
    b.jmp("join")
    b.label("then")
    b.li(2, 1)
    b.label("join")
    b.mov(3, 2)
    b.halt()


def loop_program(b):
    b.li(1, 4)
    b.label("loop")
    b.addi(1, 1, -1)
    b.bne(1, 0, "loop")
    b.halt()


class TestCfgShapes:
    def test_diamond(self):
        cfg = _cfg(diamond_program)
        entry = cfg.entry
        then_blk = cfg.block_at(cfg.program.labels["then"])
        join_blk = cfg.block_at(cfg.program.labels["join"])
        succs = cfg.successor_blocks(entry)
        # cond branch: taken target + fall-through
        assert then_blk in succs
        assert len(succs) == 2
        fall = next(s for s in succs if s is not then_blk)
        assert cfg.successor_blocks(fall) == [join_blk]  # jmp join
        assert cfg.successor_blocks(then_blk) == [join_blk]  # fall-through
        assert join_blk.predecessors and len(join_blk.predecessors) == 2

    def test_loop_backedge(self):
        cfg = _cfg(loop_program)
        loop_blk = cfg.block_at(cfg.program.labels["loop"])
        succs = cfg.successor_blocks(loop_blk)
        assert loop_blk in succs  # backedge to itself
        assert loop_blk.index in loop_blk.predecessors

    def test_indirect_jump_fans_out_to_all_blocks(self):
        def build(b):
            b.li_label(1, "target")
            b.jmpi(1)
            b.halt()
            b.label("target")
            b.halt()

        cfg = _cfg(build)
        entry = cfg.entry
        assert entry.ends_indirect
        # indirect_to_all: every block is a potential successor
        succ_idx = {s.index for s in
                    cfg.successor_blocks(entry, indirect_to_all=True)}
        assert succ_idx == {blk.index for blk in cfg}
        # direct edges only: just the architectural fall-through
        direct = cfg.successor_blocks(entry, indirect_to_all=False)
        assert len(direct) == 1 and direct[0].start == entry.end

    def test_fall_through_to_halt(self):
        def build(b):
            b.li(1, 1)
            b.beq(1, 0, "skip")
            b.li(2, 2)
            b.label("skip")
            b.halt()

        cfg = _cfg(build)
        halt_blk = cfg.block_at(cfg.program.labels["skip"])
        addr, term = halt_blk.terminator
        assert term.op.name == "HALT"
        # HALT terminates the block with no successors
        assert cfg.successor_blocks(halt_blk) == []
        # the middle block falls through into the HALT block
        middle = next(blk for blk in cfg
                      if blk is not cfg.entry and blk is not halt_blk)
        assert cfg.successor_blocks(middle) == [halt_blk]

    def test_unreachable_block_detected(self):
        def build(b):
            b.li(1, 1)
            b.halt()
            b.label("dead")      # only reachable via mispredicted
            b.li(2, 2)           # indirect control flow
            b.halt()

        cfg = _cfg(build)
        dead = cfg.block_at(cfg.program.labels["dead"])
        assert dead in cfg.unreachable_blocks()
        assert dead not in cfg.reachable_from_entry()

    def test_every_instruction_in_exactly_one_block(self):
        cfg = _cfg(diamond_program)
        seen = [addr for addr, _ in cfg.iter_instructions()]
        assert len(seen) == len(set(seen)) == len(cfg.program.instructions)

    def test_render_smoke(self):
        text = _cfg(diamond_program).render()
        assert "block" in text and "->" in text


class _ReachingConst(Lattice):
    """Toy lattice: per-register constant propagation over LI/MOV.

    Used to exercise join-at-merge and loop fixpoint behaviour of the
    generic engine independent of the taint analysis.
    """

    TOP = object()  # unknown / conflicting

    def join(self, a, b):
        out = dict(a)
        for reg, val in b.items():
            if reg in out and out[reg] != val:
                out[reg] = self.TOP
            else:
                out.setdefault(reg, val)
        return out

    def equals(self, a, b):
        return a == b

    def transfer(self, state, address, instr):
        out = dict(state)
        name = instr.op.name
        if name == "LI":
            out[instr.rd] = instr.imm
        elif name == "ADDI" and instr.imm == 0:
            out[instr.rd] = out.get(instr.rs1, self.TOP)
        elif instr.rd:
            out[instr.rd] = self.TOP
        return out


class TestDataflowEngine:
    def _run(self, build):
        cfg = _cfg(build)
        flow = ForwardDataflow(cfg, _ReachingConst())
        return cfg, flow.run({cfg.entry.index: {}})

    def test_diamond_merge_conflicting_defs(self):
        cfg, result = self._run(diamond_program)
        join_addr = cfg.program.labels["join"]
        state = result.state_before(join_addr)
        # r2 is 1 on one path, 2 on the other -> TOP at the merge
        assert state[2] is _ReachingConst.TOP
        # r1 is 0 on both paths -> still constant
        assert state[1] == 0

    def test_loop_reaches_fixpoint(self):
        cfg, result = self._run(loop_program)
        loop_addr = cfg.program.labels["loop"]
        state = result.state_before(loop_addr)
        # r1 is 4 on entry but decremented around the backedge -> TOP
        assert state[1] is _ReachingConst.TOP

    def test_straightline_propagation(self):
        def build(b):
            b.li(1, 7)
            b.addi(2, 1, 0)
            b.halt()

        cfg, result = self._run(build)
        halt_addr = cfg.program.address_of(2)
        state = result.state_before(halt_addr)
        assert state[1] == 7 and state[2] == 7

    def test_unseeded_unreachable_block_has_no_state(self):
        def build(b):
            b.halt()
            b.label("dead")
            b.li(1, 1)
            b.halt()

        cfg = _cfg(build)
        flow = ForwardDataflow(cfg, _ReachingConst())
        result = flow.run({cfg.entry.index: {}})
        dead = cfg.block_at(cfg.program.labels["dead"])
        assert result.block_entry_state(dead) is None
        assert result.state_before(dead.start) is None

    def test_seeding_unreachable_block_analyzes_it(self):
        def build(b):
            b.halt()
            b.label("dead")
            b.li(1, 9)
            b.halt()

        cfg = _cfg(build)
        dead = cfg.block_at(cfg.program.labels["dead"])
        flow = ForwardDataflow(cfg, _ReachingConst())
        result = flow.run({cfg.entry.index: {}, dead.index: {}})
        halt_addr = dead.start + 4
        assert result.state_before(halt_addr)[1] == 9

    def test_block_at_rejects_mid_block_address(self):
        cfg = _cfg(diamond_program)
        with pytest.raises(KeyError):
            cfg.block_at(0xDEAD)


class _Interval(Lattice):
    """Toy interval lattice with *infinite* ascending chains.

    State maps register -> (lo, hi); a missing register is unknown.
    A decrementing loop keeps lowering ``lo`` by one per pass, so a
    plain-join fixpoint never terminates — the engine must call
    :meth:`widen` once a back-edge block keeps growing.  A transfer
    budget turns would-be nontermination into a catchable exception.
    """

    MIN = -(2 ** 63)
    MAX = 2 ** 63 - 1

    def __init__(self, budget=50_000):
        self.budget = budget
        self.transfers = 0
        self.widen_calls = 0

    def join(self, a, b):
        out = {}
        for reg in set(a) & set(b):
            out[reg] = (min(a[reg][0], b[reg][0]),
                        max(a[reg][1], b[reg][1]))
        return out

    def equals(self, a, b):
        return a == b

    def widen(self, old, new):
        self.widen_calls += 1
        out = {}
        for reg in set(old) & set(new):
            lo = old[reg][0] if new[reg][0] >= old[reg][0] else self.MIN
            hi = old[reg][1] if new[reg][1] <= old[reg][1] else self.MAX
            out[reg] = (lo, hi)
        return out

    def transfer(self, state, address, instr):
        self.transfers += 1
        if self.transfers > self.budget:
            raise TimeoutError("no fixpoint within transfer budget")
        out = dict(state)
        name = instr.op.name
        if name == "LI":
            out[instr.rd] = (instr.imm, instr.imm)
        elif name == "ADDI" and instr.rs1 in out:
            lo, hi = out[instr.rs1]
            out[instr.rd] = (max(self.MIN, lo + instr.imm),
                             min(self.MAX, hi + instr.imm))
        elif instr.rd:
            out.pop(instr.rd, None)
        return out


class TestWidening:
    def test_backedge_converges_with_widening(self):
        cfg = _cfg(loop_program)
        lattice = _Interval()
        flow = ForwardDataflow(cfg, lattice, widen_after=4)
        result = flow.run({cfg.entry.index: {}})
        state = result.state_before(cfg.program.labels["loop"])
        # the decremented counter is widened to an open lower bound
        # while the stable upper bound is kept
        assert state[1] == (_Interval.MIN, 4)
        assert lattice.widen_calls > 0

    def test_infinite_chain_needs_widening_to_terminate(self):
        # With widening effectively disabled the same loop descends
        # one interval step per pass and burns the whole transfer
        # budget without reaching a fixpoint.
        cfg = _cfg(loop_program)
        flow = ForwardDataflow(cfg, _Interval(budget=10_000),
                               widen_after=10 ** 9)
        with pytest.raises(TimeoutError):
            flow.run({cfg.entry.index: {}})

    def test_finite_lattice_unaffected_by_widen_threshold(self):
        # Default widen() is plain join, so finite-height analyses
        # reach the same fixpoint no matter the threshold.
        cfg = _cfg(loop_program)
        states = []
        for widen_after in (0, 8, 10 ** 9):
            flow = ForwardDataflow(cfg, _ReachingConst(),
                                   widen_after=widen_after)
            result = flow.run({cfg.entry.index: {}})
            states.append(result.state_before(cfg.program.labels["loop"]))
        assert states[0] == states[1] == states[2]
        assert states[0][1] is _ReachingConst.TOP
