"""Tests for machine configuration and the statistics plumbing."""
import pytest

from repro import paper_config, preset, tiny_config
from repro.errors import ConfigError
from repro.params import (
    CacheParams,
    CoreParams,
    MemoryParams,
    TLBParams,
    a57_like,
    i7_like,
    with_core,
    xeon_like,
)
from repro.stats import (
    StatGroup,
    combine,
    format_percent,
    geometric_mean,
    overhead,
    safe_div,
)


class TestCacheParams:
    def test_paper_l1_geometry(self):
        l1 = paper_config().memory.l1d
        assert l1.size_bytes == 64 * 1024
        assert l1.ways == 4
        assert l1.num_sets == 256

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigError):
            CacheParams("X", 1024, 2, line_bytes=48)

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigError):
            CacheParams("X", 1000, 2, 64)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            CacheParams("X", 3 * 64 * 2, 2, 64)

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigError):
            CacheParams("X", 1024, 2, 64, hit_latency=0)


class TestCoreParams:
    def test_paper_table3_values(self):
        core = paper_config().core
        assert core.rob_entries == 192
        assert core.iq_entries == 64
        assert core.ldq_entries == 32
        assert core.stq_entries == 24
        assert core.commit_width == 4

    def test_phys_regs_cover_rob(self):
        core = paper_config().core
        assert core.num_phys_regs == core.rob_entries + core.num_arch_regs

    def test_rejects_zero_widths(self):
        with pytest.raises(ConfigError):
            CoreParams(issue_width=0)

    def test_with_core_override(self):
        machine = with_core(tiny_config(), rob_entries=8)
        assert machine.core.rob_entries == 8
        assert machine.memory.l1d.size_bytes == tiny_config().memory.l1d.size_bytes


class TestPresets:
    def test_all_presets_constructible(self):
        for name in ("paper", "a57-like", "i7-like", "xeon-like", "tiny"):
            machine = preset(name)
            assert machine.name == name

    def test_unknown_preset(self):
        with pytest.raises(ConfigError):
            preset("pentium")

    def test_complexity_ordering(self):
        """The sensitivity study relies on A57 < i7 < Xeon complexity."""
        a57, i7, xeon = a57_like(), i7_like(), xeon_like()
        assert a57.core.rob_entries < i7.core.rob_entries \
            < xeon.core.rob_entries
        assert a57.core.issue_width <= i7.core.issue_width \
            <= xeon.core.issue_width

    def test_memory_params_validation(self):
        with pytest.raises(ConfigError):
            MemoryParams(dram_latency=1)

    def test_tlb_validation(self):
        with pytest.raises(ConfigError):
            TLBParams(entries=0)
        with pytest.raises(ConfigError):
            TLBParams(page_bytes=1000)


class TestStats:
    def test_incr_get(self):
        group = StatGroup("g")
        group.incr("x")
        group.incr("x", 4)
        assert group.get("x") == 5
        assert group.get("missing") == 0

    def test_ratio_guards_zero(self):
        group = StatGroup("g")
        assert group.ratio("a", "b", default=0.5) == 0.5
        group.incr("a", 3)
        group.incr("b", 4)
        assert group.ratio("a", "b") == 0.75

    def test_merge(self):
        a, b = StatGroup("a"), StatGroup("b")
        a.incr("x", 1)
        b.incr("x", 2)
        a.merge(b)
        assert a.get("x") == 3

    def test_combine(self):
        a = StatGroup("a")
        a.incr("x")
        assert combine([a]) == {"a": {"x": 1}}

    def test_safe_div(self):
        assert safe_div(1, 0, default=7.0) == 7.0
        assert safe_div(1, 2) == 0.5

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1, 0])

    def test_overhead(self):
        assert overhead(150, 100) == pytest.approx(0.5)
        assert overhead(100, 0) == 0.0

    def test_format_percent(self):
        assert format_percent(0.128) == "12.8%"
