"""Per-opcode semantics matrix: every opcode, executed on the
out-of-order core, must produce the oracle's result.  This is the
compact completeness check that no opcode is mis-wired in either
executor."""
import pytest

from conftest import run_to_halt
from repro import tiny_config
from repro.isa import ProgramBuilder, run_oracle

A = 0x0123456789ABCDEF
B = 0x00000000000000F7


def _compare(build):
    """Build with the callback, run both executors, compare regs."""
    b = ProgramBuilder()
    build(b)
    b.halt()
    program = b.build()
    oracle = run_oracle(program)
    cpu, _ = run_to_halt(program, machine=tiny_config())
    for reg in range(32):
        assert cpu.arch_reg(reg) == oracle.reg(reg), f"r{reg}"
    return oracle


@pytest.mark.parametrize("method", [
    "add", "sub", "mul", "div", "and_", "or_", "xor", "shl", "shr",
])
def test_reg_reg_alu(method):
    def build(b):
        b.li(1, A).li(2, B)
        getattr(b, method)(3, 1, 2)
    _compare(build)


@pytest.mark.parametrize("method,imm", [
    ("addi", -5), ("addi", 7), ("andi", 0xFF), ("xori", 0x55),
    ("shli", 3), ("shri", 9),
])
def test_reg_imm_alu(method, imm):
    def build(b):
        b.li(1, A)
        getattr(b, method)(3, 1, imm)
    _compare(build)


def test_li_mov():
    def build(b):
        b.li(1, A).mov(2, 1)
    result = _compare(build)
    assert result.reg(2) == A


def test_div_by_zero():
    def build(b):
        b.li(1, A).li(2, 0).div(3, 1, 2)
    result = _compare(build)
    assert result.reg(3) == (1 << 64) - 1


def test_load_store():
    def build(b):
        b.li(1, 0x4000).li(2, A).store(2, 1, 8).load(3, 1, 8)
    result = _compare(build)
    assert result.reg(3) == A


@pytest.mark.parametrize("method,a,b_val,fall_through", [
    ("beq", 5, 5, False), ("beq", 5, 6, True),
    ("bne", 5, 6, False), ("bne", 5, 5, True),
    ("blt", -1 & ((1 << 64) - 1), 0, False), ("blt", 1, 0, True),
    ("bge", 3, 3, False), ("bge", 2, 3, True),
])
def test_conditional_branches(method, a, b_val, fall_through):
    def build(b):
        b.li(1, a).li(2, b_val)
        getattr(b, method)(1, 2, "target")
        b.li(3, 111)
        b.label("target")
    result = _compare(build)
    assert (result.reg(3) == 111) == fall_through


def test_jmp_jmpi_call_ret():
    def build(b):
        b.li_label(1, "via")
        b.jmpi(1)
        b.li(2, 111)
        b.label("via")
        b.call("fn")
        b.jmp("end")
        b.li(4, 333)
        b.label("fn")
        b.li(3, 222)
        b.ret()
        b.label("end")
    result = _compare(build)
    assert result.reg(2) == 0
    assert result.reg(3) == 222
    assert result.reg(4) == 0


def test_fence_nop_clflush_semantic_noops():
    def build(b):
        b.li(1, 0x4000).fence().nop().clflush(1).li(2, 9)
    result = _compare(build)
    assert result.reg(2) == 9
