"""Tests for the gadget emitters' functional correctness (verified
through the oracle - the gadget arithmetic must compute the addresses
the attacks rely on)."""
from hypothesis import given, settings, strategies as st

from repro.attacks.gadgets import (
    emit_bounds_check_gadget,
    emit_scaled_offset,
    emit_transmit,
)
from repro.attacks.layout import AttackLayout
from repro.isa import ProgramBuilder, run_oracle


class TestScaledOffset:
    @settings(max_examples=40, deadline=None)
    @given(value=st.integers(0, 255),
           stride=st.sampled_from([8, 64, 4096, 4160, 4096 + 64 + 8]))
    def test_computes_value_times_stride(self, value, stride):
        b = ProgramBuilder()
        b.li(1, value)
        emit_scaled_offset(b, dst=2, src=1, scratch=3, stride=stride)
        b.halt()
        assert run_oracle(b.build()).reg(2) == value * stride

    def test_zero_stride_yields_zero(self):
        b = ProgramBuilder()
        b.li(1, 7)
        emit_scaled_offset(b, dst=2, src=1, scratch=3, stride=0)
        b.halt()
        assert run_oracle(b.build()).reg(2) == 0


class TestTransmit:
    def test_transmit_address(self):
        layout = AttackLayout()
        b = ProgramBuilder()
        b.li(13, 5)
        emit_transmit(b, layout, 13)
        b.halt()
        result = run_oracle(b.build(), trace=True)
        transmit_loads = [entry for entry in result.load_trace
                          if entry[1] >= layout.probe_base]
        assert transmit_loads
        assert transmit_loads[-1][1] == layout.probe_line(5)


class TestBoundsCheckGadget:
    def _run(self, x, size=1):
        layout = AttackLayout()
        b = ProgramBuilder()
        b.data_word(layout.size_addr, size)
        b.data_word(layout.array1_base, 2)
        b.li(16, x)
        emit_bounds_check_gadget(b, layout, "t")
        b.halt()
        return run_oracle(b.build(), trace=True), layout

    def test_in_bounds_transmits_architecturally(self):
        result, layout = self._run(x=0)
        probe_accesses = [entry for entry in result.load_trace
                          if entry[1] >= layout.probe_base]
        # array1[0] = 2 -> probe_line(2)
        assert probe_accesses[-1][1] == layout.probe_line(2)

    def test_out_of_bounds_skips_architecturally(self):
        result, layout = self._run(x=layout_oob())
        probe_accesses = [entry for entry in result.load_trace
                          if entry[1] >= layout.probe_base]
        assert probe_accesses == []


def layout_oob():
    return AttackLayout().oob_index
