"""Campaign plumbing: checkpoints, FuzzCase persistence, regressions,
corpus ingestion, CLI."""
from __future__ import annotations

import json

import pytest

from repro.analysis.corpus import (
    IngestedGadget,
    clear_ingested_gadgets,
    ingested_gadgets,
    load_ingested_gadgets,
    register_ingested_gadget,
)
from repro.analysis.verify import corpus_precision
from repro.cli import main
from repro.fuzz import (
    REGRESSION_DIR,
    FuzzCase,
    case_fires,
    load_cases,
    make_case,
    run_certify_campaign,
    run_diff_campaign,
)
from repro.fuzz.generator import generate_program

GADGET_SOURCE = """fwd_1:
    load r9, r8, 0
    beq r9, r0, fwd_3
    li r16, 20480
    load r16, r16, 0
    andi r17, r16, 15
    shli r17, r17, 6
    load r17, r17, 0
fwd_3:
    halt
"""


@pytest.fixture(autouse=True)
def _clean_registry():
    clear_ingested_gadgets()
    yield
    clear_ingested_gadgets()


def test_diff_campaign_clean_and_resumable(tmp_path):
    checkpoint = tmp_path / "diff.jsonl"
    first = run_diff_campaign("test-camp", 12, checkpoint=checkpoint)
    assert first.cases == 12
    assert first.clean
    assert first.resumed == 0
    second = run_diff_campaign("test-camp", 12, checkpoint=checkpoint)
    assert second.resumed == 12
    assert second.clean


def test_certify_campaign_records_verdicts(tmp_path):
    checkpoint = tmp_path / "certify.jsonl"
    result = run_certify_campaign("test-camp", 6,
                                  checkpoint=checkpoint)
    assert result.cases == 6
    assert result.clean
    assert sum(result.verdicts.values()) == 6
    resumed = run_certify_campaign("test-camp", 6,
                                   checkpoint=checkpoint)
    assert resumed.resumed == 6
    assert resumed.verdicts == result.verdicts


def test_checkpoint_config_mismatch_restarts(tmp_path):
    checkpoint = tmp_path / "diff.jsonl"
    run_diff_campaign("seed-a", 4, checkpoint=checkpoint)
    other = run_diff_campaign("seed-b", 4, checkpoint=checkpoint)
    assert other.resumed == 0


def test_fuzzcase_roundtrip(tmp_path):
    generated = generate_program("fc-rt")
    case = make_case(
        case_id="rt_case", kind="diff_mismatch", seed="fc-rt",
        program=generated.program, modes=("origin",),
        details="demo", repro="repro fuzz diff --only 0")
    path = case.save(tmp_path)
    loaded = FuzzCase.load(path)
    assert loaded.case_id == case.case_id
    assert loaded.source == case.source
    rebuilt = loaded.program()
    assert rebuilt.instructions == generated.program.instructions
    assert rebuilt.initial_memory == generated.program.initial_memory


def test_pinned_regressions_hold():
    """Every pinned FuzzCase must behave as its expectation says."""
    cases = load_cases(REGRESSION_DIR)
    assert cases, "expected at least one pinned regression case"
    for case in cases:
        fires = case_fires(case)
        expected = case.expect == "reproduces"
        assert fires == expected, (
            f"{case.case_id}: expected "
            f"{'reproduction' if expected else 'fixed'}, "
            f"got fires={fires}")


def test_ingestion_extends_without_renumbering():
    baseline = corpus_precision()
    register_ingested_gadget(IngestedGadget(
        name="test_ingested", source=GADGET_SOURCE,
        secret_words=(20480,), origin="unit-test"))
    extended = corpus_precision()
    assert len(extended.cases) == len(baseline.cases) + 1
    for before, after in zip(baseline.cases, extended.cases):
        assert (before.kind, before.variant) == \
            (after.kind, after.variant)
        assert before.findings == after.findings
    ingested = extended.cases[-1]
    assert ingested.variant == "ingested"
    assert ingested.is_gadget
    assert ingested.confirmed >= 1
    assert extended.fn_rate_after == 0.0


def test_ingestion_registry_io(tmp_path):
    gadget = IngestedGadget(name="io_demo", source=GADGET_SOURCE,
                            secret_words=(20480,), origin="t")
    (tmp_path / "io_demo.json").write_text(
        json.dumps(gadget.to_dict()))
    assert load_ingested_gadgets(tmp_path) == 1
    assert ingested_gadgets()[0] == gadget
    assert load_ingested_gadgets(tmp_path / "missing") == 0


def test_cli_fuzz_diff(capsys):
    assert main(["fuzz", "diff", "--seed", "cli-test",
                 "--count", "5"]) == 0
    out = capsys.readouterr().out
    assert "5 programs" in out
    assert "0 mismatch(es)" in out


def test_cli_fuzz_certify_only(capsys):
    assert main(["fuzz", "certify", "--seed", "cli-test",
                 "--count", "2", "--only", "0"]) in (0, 1)
    assert "seed 'cli-test:0'" in capsys.readouterr().out


def test_cli_fuzz_json_summary(tmp_path, capsys):
    out = tmp_path / "summary.json"
    assert main(["fuzz", "diff", "--seed", "cli-test",
                 "--count", "3", "--json", str(out)]) == 0
    capsys.readouterr()
    payload = json.loads(out.read_text())
    assert payload["kind"] == "diff"
    assert payload["cases"] == 3
    assert payload["disagreements"] == 0
