"""Certifier-agreement oracle: symx vs dynamic reality."""
from __future__ import annotations

import pytest

from repro.analysis.corpus import (
    CORPUS_VARIANTS,
    GADGET_KINDS,
    build_corpus_variant,
    corpus_secret_words,
)
from repro.fuzz import (
    GeneratorConfig,
    case_seed,
    certify_agreement,
    generate_program,
    two_secret_probe,
)


@pytest.mark.parametrize("kind", GADGET_KINDS)
@pytest.mark.parametrize("variant", CORPUS_VARIANTS)
def test_corpus_agreement_clean(kind, variant):
    program = build_corpus_variant(kind, variant)
    outcome = certify_agreement(program, corpus_secret_words(),
                                name=f"{kind}/{variant}")
    assert outcome is not None
    assert outcome.clean, [d.render() for d in outcome.disagreements]
    expected = "LEAKY" if variant == "unsafe" else "PROVED_SAFE"
    assert outcome.verdict == expected


def test_generated_agreement_clean():
    config = GeneratorConfig(secret=True, length=20, loops=False)
    verdicts = set()
    for index in range(12):
        generated = generate_program(case_seed("agree", index), config)
        outcome = certify_agreement(generated.program,
                                    generated.secret_words)
        if outcome is None:
            continue
        verdicts.add(outcome.verdict)
        assert outcome.clean, \
            [d.render() for d in outcome.disagreements]
    # The sweep must exercise both verdict sides to mean anything.
    assert "LEAKY" in verdicts
    assert "PROVED_SAFE" in verdicts


def test_two_secret_probe_detects_planted_leak():
    config = GeneratorConfig(secret=True, length=22, loops=False)
    generated = generate_program("ev-gen:7", config)
    diff = two_secret_probe(generated.program, generated.secret_words,
                            warm_words=generated.secret_words)
    assert diff, "the pinned leaky seed shows no dynamic diff"


def test_probe_empty_without_secret_dependence():
    config = GeneratorConfig(secret=False)
    generated = generate_program("no-secret", config)
    diff = two_secret_probe(generated.program, (0x5000,))
    assert diff == ()
