"""The forward-progress watchdog must tell a wedged pipeline from a
merely slow one, and say *why* it wedged."""
import pytest

from repro import Processor, SecurityConfig, tiny_config
from repro.errors import CycleBudgetExceeded, DeadlockError
from repro.isa import ProgramBuilder
from repro.robustness import FaultInjector, FaultPlan
from repro.robustness.watchdog import ForwardProgressWatchdog


class _NeverFillingInjector(FaultInjector):
    """Delays every load completion past the horizon: the load issues,
    its fill event lands ~10^9 cycles away, and the ROB head never
    completes — a genuine wedge, not a slow run."""

    def extra_fill_delay(self, cycle, inst):
        self._record(cycle, "fill_delay", inst.seq, inst.pc,
                     "never completes")
        return 1_000_000_000


def _load_program():
    b = ProgramBuilder()
    b.data_word(0x4000, 9)
    b.li(1, 0x4000).load(2, 1).add(3, 2, 2).halt()
    return b.build()


def _counting_program():
    b = ProgramBuilder()
    b.li(1, 0)
    b.label("loop")
    b.addi(1, 1, 1)
    b.jmp("loop")
    return b.build()


class TestDeadlockDetection:
    def test_wedged_pipeline_raises_with_diagnostics(self):
        cpu = Processor(
            _load_program(), machine=tiny_config(),
            security=SecurityConfig.origin(),
            fault_plan=_NeverFillingInjector(FaultPlan(seed=0)),
            watchdog_cycles=2_000,
        )
        with pytest.raises(DeadlockError) as excinfo:
            cpu.run(max_cycles=100_000)
        diag = excinfo.value.diagnostics
        assert diag is not None
        assert diag.stall_cycles > 2_000
        assert diag.rob_occupancy > 0
        assert diag.head_seq >= 0 and diag.head_pc >= 0
        assert diag.head_state  # the stuck load
        assert "pending" in diag.stall_reason \
            or "never finishing" in diag.stall_reason
        assert diag.snapshots, "occupancy history must be captured"
        assert "occupancy:" in diag.render()
        assert cpu.report.termination == "deadlock"

    def test_healthy_run_never_trips(self):
        cpu = Processor(_load_program(), machine=tiny_config(),
                        security=SecurityConfig.cache_hit_tpbuf(),
                        watchdog_cycles=2_000)
        report = cpu.run()
        assert report.halted and report.termination == "halt"

    def test_watchdog_snapshot_ring_is_bounded(self):
        dog = ForwardProgressWatchdog(limit=100, snapshot_interval=1,
                                      history=4)
        cpu = Processor(_load_program(), machine=tiny_config(),
                        security=SecurityConfig.origin())
        for _ in range(10):
            dog.snapshot(cpu)
        assert len(dog.snapshots) == 4


class TestCycleBudget:
    def test_budget_returns_report_by_default(self):
        cpu = Processor(_counting_program(), machine=tiny_config(),
                        security=SecurityConfig.origin())
        report = cpu.run(max_cycles=3_000)
        assert not report.halted
        assert report.termination == "cycle_budget"

    def test_budget_raises_when_asked(self):
        cpu = Processor(_counting_program(), machine=tiny_config(),
                        security=SecurityConfig.origin())
        with pytest.raises(CycleBudgetExceeded) as excinfo:
            cpu.run(max_cycles=3_000, raise_on_budget=True)
        report = excinfo.value.report
        assert report is not None
        assert report.termination == "cycle_budget"
        assert report.committed > 0

    def test_budget_error_is_not_deadlock(self):
        assert not issubclass(CycleBudgetExceeded, DeadlockError)
        assert not issubclass(DeadlockError, CycleBudgetExceeded)


class TestCooperativeCancellation:
    """The ``repro serve`` cancel path: a hook polled at the wall-clock
    cadence ends the run with ``termination="cancelled"``."""

    def _cancelling_cpu(self, fire_after_polls=1):
        from repro.params import RunOptions

        polls = []

        def cancel_check():
            polls.append(None)
            return len(polls) >= fire_after_polls

        cpu = Processor(_counting_program(), machine=tiny_config(),
                        security=SecurityConfig.origin(),
                        options=RunOptions(cancel_check=cancel_check))
        return cpu, polls

    def test_cancel_terminates_with_partial_report(self):
        cpu, polls = self._cancelling_cpu()
        report = cpu.run(max_cycles=50_000_000)
        assert not report.halted
        assert report.termination == "cancelled"
        assert report.committed > 0  # made progress before the cancel
        assert polls  # the hook really was polled

    def test_cancel_raises_when_asked(self):
        from repro.errors import RunCancelled

        cpu, _polls = self._cancelling_cpu()
        with pytest.raises(RunCancelled) as excinfo:
            cpu.run(max_cycles=50_000_000, raise_on_budget=True)
        report = excinfo.value.report
        assert report is not None
        assert report.termination == "cancelled"

    def test_uncancelled_run_is_unaffected(self):
        from repro.params import RunOptions

        b = ProgramBuilder()
        b.li(1, 7).addi(1, 1, 1).halt()
        cpu = Processor(b.build(), machine=tiny_config(),
                        security=SecurityConfig.origin(),
                        options=RunOptions(cancel_check=lambda: False))
        report = cpu.run(max_cycles=200_000)
        assert report.halted
        assert report.termination == "halt"

    def test_cancelled_is_not_a_deadlock_or_budget(self):
        from repro.errors import RunCancelled

        assert not issubclass(RunCancelled, DeadlockError)
        assert not issubclass(RunCancelled, CycleBudgetExceeded)
