"""Tests for the pipeline tracer."""
from repro import Processor, SecurityConfig, tiny_config
from repro.isa import ProgramBuilder
from repro.pipeline.trace import PipelineTracer


def traced_run(program, security=None, limit=10_000):
    tracer = PipelineTracer(limit=limit)
    cpu = Processor(program, machine=tiny_config(),
                    security=security or SecurityConfig.origin(),
                    tracer=tracer)
    report = cpu.run(max_cycles=200_000)
    assert report.halted
    return tracer, report


def simple_program():
    b = ProgramBuilder()
    b.li(1, 3).addi(2, 1, 4).mul(3, 2, 1).halt()
    return b.build()


class TestRecords:
    def test_committed_records_match_report(self):
        tracer, report = traced_run(simple_program())
        assert len(tracer.committed_records()) == report.committed

    def test_lifecycle_ordering(self):
        tracer, _ = traced_run(simple_program())
        for record in tracer.committed_records():
            if record.issued >= 0:
                assert record.dispatched <= record.issued
                assert record.issued <= record.completed
                assert record.completed <= record.committed

    def test_squashed_records_captured(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)
        b.beq(2, 0, "t")       # actually taken, cold-predicted NT
        b.li(3, 1).li(4, 2)    # wrong path
        b.label("t")
        b.halt()
        tracer, report = traced_run(b.build())
        assert report.squashes >= 1
        assert len(tracer.squashed_records()) >= 1
        assert all(r.committed == -1 for r in tracer.squashed_records())

    def test_suspect_flag_recorded(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)
        b.bne(2, 0, "skip")
        b.li(3, 0x40000).load(4, 3)
        b.label("skip")
        b.halt()
        tracer, _ = traced_run(b.build(),
                               security=SecurityConfig.cache_hit())
        assert tracer.suspects()

    def test_record_for_seq(self):
        tracer, _ = traced_run(simple_program())
        first = tracer.committed_records()[0]
        assert tracer.record_for_seq(first.seq) == first
        assert tracer.record_for_seq(999_999) is None

    def test_issue_delay(self):
        tracer, _ = traced_run(simple_program())
        record = tracer.committed_records()[0]
        assert record.issue_delay >= 0


class TestLimitAndRender:
    def test_limit_drops_oldest(self):
        b = ProgramBuilder()
        b.li(1, 30)
        b.label("loop").addi(1, 1, -1).bne(1, 0, "loop")
        b.halt()
        tracer, report = traced_run(b.build(), limit=10)
        assert len(tracer.records) == 10
        assert tracer.dropped == report.committed \
            + report.squashed_instructions - 10

    def test_render_contains_instructions(self):
        tracer, _ = traced_run(simple_program())
        text = tracer.render()
        assert "seq" in text and "li" in text and "halt" in text

    def test_render_marks_squashes(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)
        b.beq(2, 0, "t")
        b.li(3, 1)
        b.label("t")
        b.halt()
        tracer, _ = traced_run(b.build())
        assert "squash" in tracer.render()
