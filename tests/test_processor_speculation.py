"""Tests of speculative execution behaviour: wrong-path effects,
memory-dependence speculation, ordering violations, and the squash
machinery - the substrate Spectre exploits."""
from conftest import run_to_halt
from repro import Processor, SecurityConfig, tiny_config, paper_config
from repro.isa import ProgramBuilder
from repro.params import with_core


def spectre_v1_like_program(train=4):
    """Bounds-check gadget with a delinquent bound: the final iteration
    is out of bounds and must speculatively touch the probe line."""
    b = ProgramBuilder()
    b.data_word(0x4000, 1)            # size
    b.data_word(0x5000, 3)            # array1[0] (in-bounds value)
    b.data_word(0x5000 + 800 * 8, 9)  # "secret" at oob index 800
    # inputs
    for i in range(train):
        b.data_word(0x7000 + i * 8, 0)
    b.data_word(0x7000 + train * 8, 800)
    # Victim recently touched its data: warm the secret line so the
    # speculative chain fits inside the misprediction window.
    b.li(25, 0x5000 + 800 * 8).load(24, 25)
    b.li(30, train + 1).li(29, 0)
    b.label("loop")
    b.shli(28, 29, 3).li(27, 0x7000).add(28, 28, 27).load(16, 28)  # x
    b.li(26, 0x4000).clflush(26).fence()       # delinquent bound
    b.li(9, 0x4000).load(10, 9)                # size
    b.bge(16, 10, "skip")
    b.shli(11, 16, 3).li(12, 0x5000).add(12, 12, 11).load(13, 12)
    b.shli(14, 13, 12).li(15, 0x100000).add(15, 15, 14).load(8, 15)
    b.label("skip")
    b.addi(29, 29, 1).addi(30, 30, -1).bne(30, 0, "loop")
    b.halt()
    return b.build()


class TestWrongPathEffects:
    def test_wrong_path_load_changes_cache_state(self):
        """The Spectre substrate: a squashed load's refill persists."""
        program = spectre_v1_like_program()
        cpu = Processor(program, machine=paper_config(),
                        security=SecurityConfig.origin())
        report = cpu.run(max_cycles=500_000)
        assert report.halted
        # probe line for secret value 9: 0x100000 + 9 * 4096
        probe_paddr = cpu.vaddr_to_paddr(0x100000 + 9 * 4096)
        assert cpu.hierarchy.probe_data(probe_paddr)

    def test_wrong_path_never_commits(self):
        program = spectre_v1_like_program()
        cpu = Processor(program, machine=paper_config())
        cpu.run(max_cycles=500_000)
        # The out-of-bounds iteration's gadget body must not commit:
        # r13 (the "secret") may only hold the architectural value from
        # training (3), never 9.
        assert cpu.arch_reg(13) == 3

    def test_squash_restores_register_state(self):
        """A mispredicted branch's wrong path must leave no register
        effects."""
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)                  # slow 0
        b.beq(2, 0, "taken")          # actually taken; cold predicts NT
        b.li(3, 111)                  # wrong path
        b.li(4, 222)                  # wrong path
        b.label("taken")
        b.halt()
        cpu, report = run_to_halt(b.build())
        assert cpu.arch_reg(3) == 0
        assert cpu.arch_reg(4) == 0
        assert report.squashes >= 1


class TestMemoryDependenceSpeculation:
    def _bypass_program(self):
        """Store with a delinquent address followed by a load to the
        same word (the V4 pattern)."""
        b = ProgramBuilder()
        b.data_word(0x4000, 0x5000)    # pointer -> 0x5000
        b.data_word(0x5000, 42)        # stale value ("secret")
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)                   # p (slow)
        b.li(3, 7)
        b.store(3, 2)                  # *p = 7, address unknown ~DRAM
        b.li(4, 0x5000)
        b.load(5, 4)                   # same word: speculates past store
        b.halt()
        return b.build()

    def test_violation_squash_yields_correct_value(self):
        cpu, report = run_to_halt(self._bypass_program(),
                                  machine=tiny_config())
        assert cpu.arch_reg(5) == 7           # re-executed after squash
        assert report.memory_order_violations >= 1

    def test_disabling_speculation_avoids_violations(self):
        machine = with_core(tiny_config(),
                            memory_dependence_speculation=False)
        cpu, report = run_to_halt(self._bypass_program(), machine=machine)
        assert cpu.arch_reg(5) == 7
        assert report.memory_order_violations == 0

    def test_stale_value_was_speculatively_observable(self):
        """Before the violation squash, the bypassing load really read
        the stale 42 - observable through its wrong-path dependents'
        cache footprint."""
        b = ProgramBuilder()
        b.data_word(0x4000, 0x5000)
        b.data_word(0x5000, 3)          # stale index
        b.li(9, 0x5000).load(9, 9)      # warm the stale line
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)
        b.li(3, 0)
        b.store(3, 2)                   # sanitize *p = 0
        b.li(4, 0x5000)
        b.load(5, 4)                    # bypass: reads 3
        b.shli(6, 5, 12)
        b.li(7, 0x100000)
        b.add(7, 7, 6)
        b.load(8, 7)                    # transmit: touches page 3
        b.halt()
        cpu, _ = run_to_halt(b.build(), machine=paper_config())
        leaked = cpu.vaddr_to_paddr(0x100000 + 3 * 4096)
        assert cpu.hierarchy.probe_data(leaked)
        assert cpu.arch_reg(5) == 0     # architectural result sanitized


class TestBranchPredictorIntegration:
    def test_loop_backedge_trains(self):
        b = ProgramBuilder()
        b.li(1, 50)
        b.label("loop").addi(1, 1, -1).bne(1, 0, "loop")
        b.halt()
        cpu, report = run_to_halt(b.build())
        # After training, the vast majority of backedges predict taken.
        assert report.branch_mispredict_rate < 0.4

    def test_mispredict_penalty_visible_in_cycles(self):
        def run(data):
            b = ProgramBuilder()
            b.data_words(0x4000, data)
            b.li(1, 0x4000).li(2, len(data)).li(3, 0)
            b.label("loop")
            b.load(4, 1)
            b.beq(4, 0, "skip")
            b.addi(3, 3, 1)
            b.label("skip")
            b.addi(1, 1, 8).addi(2, 2, -1).bne(2, 0, "loop")
            b.halt()
            _, report = run_to_halt(b.build())
            return report
        predictable = run([1] * 64)
        alternating = run([1, 0] * 32)
        assert alternating.branch_mispredicts >= predictable.branch_mispredicts


class TestICacheFilter:
    def test_icache_filter_stalls_unsafe_miss_fetches(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)
        b.beq(2, 0, "far")       # unresolved for ~DRAM latency
        b.nop()
        # Place the taken target far away so its line is cold.
        for _ in range(64):
            b.nop()
        b.label("far")
        b.halt()
        program = b.build()
        base = Processor(program, machine=tiny_config(),
                         security=SecurityConfig.origin())
        base_report = base.run(max_cycles=100_000)
        filtered = Processor(
            program, machine=tiny_config(),
            security=SecurityConfig(icache_filter=True),
        )
        filt_report = filtered.run(max_cycles=100_000)
        assert base_report.halted and filt_report.halted
        assert filt_report.icache_stall_cycles > 0


class TestPipelineInvariants:
    """Run the speculation-heavy scenarios with the structural
    invariant lint enabled: any bookkeeping divergence in the ROB, IQ,
    security matrix, LSQ, or rename map raises InvariantViolation."""

    def _run_checked(self, program, security, machine=None):
        cpu = Processor(program, machine=machine or tiny_config(),
                        security=security, check_invariants=True)
        report = cpu.run(max_cycles=200_000)
        assert report.halted
        return cpu, report

    def test_invariants_hold_under_v1_mispredicts(self):
        from conftest import ALL_SECURITY_CONFIGS
        for security in ALL_SECURITY_CONFIGS:
            self._run_checked(spectre_v1_like_program(), security)

    def test_invariants_hold_under_memory_bypass(self):
        from conftest import ALL_SECURITY_CONFIGS
        program = TestMemoryDependenceSpeculation()._bypass_program()
        for security in ALL_SECURITY_CONFIGS:
            self._run_checked(program, security)

    def test_invariants_hold_on_paper_machine(self):
        self._run_checked(spectre_v1_like_program(),
                          SecurityConfig.cache_hit_tpbuf(),
                          machine=paper_config())

    def test_violation_is_detected(self):
        """Sanity-check the lint itself: corrupt an IQ backlink mid-run
        and the checker must trip."""
        import pytest
        from repro.pipeline.invariants import InvariantViolation
        cpu = Processor(spectre_v1_like_program(), machine=tiny_config(),
                        security=SecurityConfig.origin(),
                        check_invariants=True)
        for _ in range(200):
            cpu.step()
            resident = next((i for i in cpu.iq._slots if i is not None),
                            None)
            if resident is not None:
                break
        assert resident is not None
        resident.iq_pos = (resident.iq_pos + 1) % cpu.iq.entries
        from repro.pipeline.invariants import check_processor_invariants
        with pytest.raises(InvariantViolation):
            check_processor_invariants(cpu)
