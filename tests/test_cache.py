"""Tests for the set-associative cache and LRU replacement state."""
import pytest
from hypothesis import given, settings, strategies as st

from repro.memory.cache import SetAssociativeCache
from repro.memory.replacement import LRUState, PendingLRUUpdates
from repro.params import CacheParams


def make_cache(size=1024, ways=2, line=64):
    return SetAssociativeCache(CacheParams("T", size, ways, line, 1))


class TestLRUState:
    def test_initial_order(self):
        assert LRUState(4).recency_order() == [0, 1, 2, 3]

    def test_touch_moves_to_mru(self):
        lru = LRUState(4)
        lru.touch(0)
        assert lru.mru_way() == 0
        assert lru.lru_way() == 1

    def test_victim_prefers_invalid(self):
        lru = LRUState(4)
        lru.touch(0)
        assert lru.victim([True, True, False, True]) == 2

    def test_victim_lru_when_all_valid(self):
        lru = LRUState(3)
        lru.touch(0)
        lru.touch(2)
        assert lru.victim([True] * 3) == 1

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=30))
    def test_order_is_always_a_permutation(self, touches):
        lru = LRUState(4)
        for way in touches:
            lru.touch(way)
        assert sorted(lru.recency_order()) == [0, 1, 2, 3]

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=30))
    def test_last_touched_is_mru(self, touches):
        lru = LRUState(4)
        for way in touches:
            lru.touch(way)
        assert lru.mru_way() == touches[-1]


class TestPendingLRUUpdates:
    def test_commit_returns_address(self):
        pending = PendingLRUUpdates()
        token = pending.record(0x1000)
        assert pending.commit(token) == 0x1000
        assert pending.commit(token) is None

    def test_squash_drops(self):
        pending = PendingLRUUpdates()
        token = pending.record(0x2000)
        pending.squash(token)
        assert pending.commit(token) is None
        assert len(pending) == 0


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit

    def test_same_line_offsets_hit(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.access(0x103F).hit
        assert not cache.access(0x1040).hit

    def test_contains_is_side_effect_free(self):
        cache = make_cache(ways=2)
        cache.access(0xA000)  # set 0 (1024B/2w/64B -> 8 sets)
        cache.access(0xB000)
        # Probing A must not refresh its recency.
        assert cache.contains(0xA000)
        cache.access(0xC000)  # evicts LRU = A
        assert not cache.contains(0xA000)

    def test_eviction_lru_order(self):
        cache = make_cache(ways=2)
        cache.access(0xA000)
        cache.access(0xB000)
        cache.access(0xA000)          # A is now MRU
        result = cache.access(0xC000)
        assert result.evicted_line_addr == 0xB000

    def test_invalidate(self):
        cache = make_cache()
        cache.access(0x1000)
        assert cache.invalidate(0x1000)
        assert not cache.contains(0x1000)
        assert not cache.invalidate(0x1000)

    def test_fill_of_resident_line_evicts_nothing(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.fill(0x1000) is None

    def test_touch_returns_false_when_absent(self):
        cache = make_cache()
        assert not cache.touch(0x5000)
        cache.fill(0x5000)
        assert cache.touch(0x5000)

    def test_flush_all(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.access(0x2000)
        cache.flush_all()
        assert cache.resident_lines() == []

    def test_stats_and_hit_rate(self):
        cache = make_cache()
        cache.access(0x1000)
        cache.access(0x1000)
        cache.access(0x1000)
        assert cache.stats.get("hits") == 2
        assert cache.stats.get("misses") == 1
        assert cache.hit_rate() == pytest.approx(2 / 3)

    def test_empty_hit_rate_is_zero(self):
        assert make_cache().hit_rate() == 0.0

    def test_lines_in_set_roundtrip(self):
        cache = make_cache(ways=2)
        cache.access(0xA040)
        set_index = cache.set_index(0xA040)
        lines = cache.lines_in_set(set_index)
        assert 0xA040 in lines


class TestCacheProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
    def test_capacity_never_exceeded(self, line_indexes):
        cache = make_cache(size=512, ways=2, line=64)  # 8 lines, 4 sets
        for index in line_indexes:
            cache.access(index * 64)
        assert len(cache.resident_lines()) <= 8

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=100))
    def test_most_recent_line_always_resident(self, line_indexes):
        cache = make_cache(size=512, ways=2, line=64)
        for index in line_indexes:
            cache.access(index * 64)
        assert cache.contains(line_indexes[-1] * 64)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=1, max_size=50))
    def test_within_ways_accesses_never_evict(self, way_choices):
        """Touching at most `ways` distinct lines of one set never
        misses after the first access to each."""
        cache = make_cache(size=512, ways=4, line=64)
        seen = set()
        for choice in way_choices:
            addr = 0x1000 + choice * 512  # same set, different tags
            hit = cache.access(addr).hit
            assert hit == (choice in seen)
            seen.add(choice)
