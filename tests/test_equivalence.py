"""Property-based validation: for any generated program, the
out-of-order core - under every protection mode - must retire exactly
the architectural state the in-order oracle computes.

This is the core integration property of the whole simulator: renaming,
speculation, squash/recovery, forwarding, the security filters and the
store buffer may change *timing* but never *semantics*.
"""
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Processor, SecurityConfig, tiny_config
from repro.isa import ProgramBuilder, run_oracle

_MEM_BASE = 0x4000
_MEM_WORDS = 16

_ALU_OPS = ["add", "sub", "mul", "and_", "or_", "xor"]
_ALU_IMM_OPS = ["addi", "andi", "xori", "shli", "shri"]
_BRANCH_OPS = ["beq", "bne", "blt", "bge"]

# r7 is the loop counter and must not be clobbered by body items.
_reg = st.integers(0, 6)
_imm = st.integers(-64, 64)
_shift = st.integers(0, 8)
_word = st.integers(0, _MEM_WORDS - 1)

_alu = st.tuples(st.just("alu"), st.sampled_from(_ALU_OPS),
                 _reg, _reg, _reg)
_alui = st.tuples(st.just("alui"), st.sampled_from(_ALU_IMM_OPS),
                  _reg, _reg, _shift)
_li = st.tuples(st.just("li"), _reg, _imm)
_load = st.tuples(st.just("load"), _reg, _word)
_store = st.tuples(st.just("store"), _reg, _word)
_flush = st.tuples(st.just("flush"), _word)
_fence = st.tuples(st.just("fence"))
_branch = st.tuples(st.just("branch"), st.sampled_from(_BRANCH_OPS),
                    _reg, _reg, st.integers(1, 4))

_body_item = st.one_of(_alu, _alui, _li, _load, _store, _flush, _fence,
                       _branch)

programs = st.tuples(
    st.lists(_body_item, min_size=1, max_size=25),
    st.integers(1, 4),                                  # loop iterations
    st.lists(st.integers(0, 255), min_size=_MEM_WORDS,
             max_size=_MEM_WORDS),                      # initial memory
)


def _emit(builder, body):
    """Emit body items; forward branches skip a bounded distance."""
    pending = []  # (emit_index, label)
    for index, item in enumerate(body):
        kind = item[0]
        for target_index, label in list(pending):
            if target_index == index:
                builder.label(label)
                pending.remove((target_index, label))
        if kind == "alu":
            _, op, rd, rs1, rs2 = item
            getattr(builder, op)(rd, rs1, rs2)
        elif kind == "alui":
            _, op, rd, rs1, imm = item
            getattr(builder, op)(rd, rs1, imm)
        elif kind == "li":
            _, rd, imm = item
            builder.li(rd, imm)
        elif kind == "load":
            _, rd, word = item
            builder.li(6, _MEM_BASE + word * 8)
            builder.load(rd, 6)
        elif kind == "store":
            _, rs, word = item
            builder.li(6, _MEM_BASE + word * 8)
            builder.store(rs, 6)
        elif kind == "flush":
            _, word = item
            builder.li(6, _MEM_BASE + word * 8)
            builder.clflush(6)
        elif kind == "fence":
            builder.fence()
        else:  # forward branch
            _, op, rs1, rs2, skip = item
            label = f"fwd_{index}"
            getattr(builder, op)(rs1, rs2, label)
            pending.append((index + skip, label))
    # Resolve any labels that point past the end of the body.
    for _, label in pending:
        builder.label(label)


def build_program(body, iterations, memory, as_function=False):
    """Wrap the body in a counted loop; with ``as_function`` the body
    lives in a subroutine invoked via CALL/RET each iteration (r31 is
    the link register and must not be generated in the body - the
    register strategy tops out at r6)."""
    builder = ProgramBuilder()
    for word, value in enumerate(memory):
        builder.data_word(_MEM_BASE + word * 8, value)
    builder.li(7, iterations)
    builder.label("loop_top")
    if as_function:
        builder.call("body_fn")
    else:
        _emit(builder, body)
    builder.addi(7, 7, -1)
    builder.bne(7, 0, "loop_top")
    builder.halt()
    if as_function:
        builder.label("body_fn")
        _emit(builder, body)
        builder.ret()
    return builder.build()


def assert_equivalent(program, security):
    oracle = run_oracle(program, max_instructions=500_000)
    assert oracle.halted, "generated program must halt"
    cpu = Processor(program, machine=tiny_config(), security=security)
    report = cpu.run(max_cycles=500_000)
    assert report.halted, f"core did not halt under {security.mode}"
    for reg in range(32):
        assert cpu.arch_reg(reg) == oracle.reg(reg), (
            f"r{reg} mismatch under {security.mode.value}"
        )
    for word in range(_MEM_WORDS):
        vaddr = _MEM_BASE + word * 8
        assert cpu.read_vword(vaddr) == oracle.mem(vaddr), (
            f"mem[{vaddr:#x}] mismatch under {security.mode.value}"
        )
    assert report.committed == oracle.retired
    # Microarchitectural invariants must hold at rest too.
    assert cpu.hierarchy.check_inclusion() == []
    cpu.rename.check_free_list_integrity()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_origin_matches_oracle(data):
    body, iterations, memory = data
    program = build_program(body, iterations, memory)
    assert_equivalent(program, SecurityConfig.origin())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_baseline_matches_oracle(data):
    body, iterations, memory = data
    program = build_program(body, iterations, memory)
    assert_equivalent(program, SecurityConfig.baseline())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_cache_hit_matches_oracle(data):
    body, iterations, memory = data
    program = build_program(body, iterations, memory)
    assert_equivalent(program, SecurityConfig.cache_hit())


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_tpbuf_matches_oracle(data):
    body, iterations, memory = data
    program = build_program(body, iterations, memory)
    assert_equivalent(program, SecurityConfig.cache_hit_tpbuf())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_no_memory_dependence_speculation_matches_oracle(data):
    from repro.params import with_core
    body, iterations, memory = data
    program = build_program(body, iterations, memory)
    oracle = run_oracle(program, max_instructions=500_000)
    machine = with_core(tiny_config(), memory_dependence_speculation=False)
    cpu = Processor(program, machine=machine)
    report = cpu.run(max_cycles=500_000)
    assert report.halted
    for reg in range(32):
        assert cpu.arch_reg(reg) == oracle.reg(reg)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_function_call_bodies_match_oracle(data):
    """The same property with the body behind CALL/RET exercises the
    return-address stack, link-register renaming and RET squashes."""
    body, iterations, memory = data
    program = build_program(body, iterations, memory, as_function=True)
    assert_equivalent(program, SecurityConfig.cache_hit_tpbuf())


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(programs)
def test_lru_policies_do_not_change_semantics(data):
    from repro.memory.replacement import SpeculativeLRUPolicy
    from repro.core.policy import ProtectionMode
    body, iterations, memory = data
    program = build_program(body, iterations, memory)
    for policy in (SpeculativeLRUPolicy.NO_UPDATE,
                   SpeculativeLRUPolicy.DELAYED):
        assert_equivalent(program, SecurityConfig(
            mode=ProtectionMode.CACHE_HIT_TPBUF, lru_policy=policy,
        ))
