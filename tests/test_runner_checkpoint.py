"""Crash-safe sweep engine: checkpointing, resume, retry and failure
isolation — exercised with a fake run function so the tests are fast
and failure timing is exact."""
import json

import pytest

from repro.core.policy import ProtectionMode
from repro.errors import SimulationError
from repro.experiments.runner import SweepEngine, SweepRow
from repro.pipeline.report import SimReport
from repro.robustness.checkpoint import CheckpointError, CheckpointStore

_MODES = (ProtectionMode.ORIGIN, ProtectionMode.BASELINE)


def _fake_report(name, mode, cycles=1000):
    return SimReport(name=name, mode=mode, cycles=cycles,
                     committed=cycles // 2, halted=True,
                     termination="halt")


def _fake_run(name, security=None, **_kwargs):
    return _fake_report(name, security.mode)


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.jsonl"))
        store.reset({"scale": 0.5})
        store.append("a/origin", {"status": "ok", "cycles": 7})
        store.append("b/origin", {"status": "failed"})
        header, rows = store.load()
        assert header == {"scale": 0.5}
        assert rows["a/origin"]["cycles"] == 7
        assert rows["b/origin"]["status"] == "failed"

    def test_last_record_wins(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.jsonl"))
        store.reset()
        store.append("a/origin", {"status": "failed"})
        store.append("a/origin", {"status": "ok"})
        _header, rows = store.load()
        assert rows["a/origin"]["status"] == "ok"

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(str(path))
        store.reset()
        store.append("a/origin", {"status": "ok"})
        with open(path, "a") as handle:
            handle.write('{"kind": "row", "key": "b/orig')  # crash here
        _header, rows = store.load()
        assert list(rows) == ["a/origin"]

    def test_foreign_file_raises(self, tmp_path):
        path = tmp_path / "notes.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "header",
                                     "format": "something-else"}) + "\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(str(path)).load()


class TestSweepEngine:
    def _engine(self, tmp_path, run_fn=_fake_run, **kwargs):
        kwargs.setdefault("benchmarks", ["alpha", "beta"])
        kwargs.setdefault("modes", _MODES)
        kwargs.setdefault("checkpoint", str(tmp_path / "sweep.jsonl"))
        kwargs.setdefault("backoff", 0.0)
        return SweepEngine(run_fn=run_fn, **kwargs)

    def test_full_sweep_records_every_pair(self, tmp_path):
        result = self._engine(tmp_path).run()
        assert len(result.rows) == 4
        assert not result.failures
        report = result.report_for("alpha", ProtectionMode.ORIGIN)
        assert report is not None and report.cycles == 1000

    def test_killed_sweep_resumes_without_rerunning(self, tmp_path):
        calls = []

        def crashing(name, security=None, **kwargs):
            if len(calls) == 2:
                raise KeyboardInterrupt  # simulated Ctrl-C / kill
            calls.append((name, security.mode.value))
            return _fake_report(name, security.mode)

        engine = self._engine(tmp_path, run_fn=crashing)
        with pytest.raises(KeyboardInterrupt):
            engine.run()
        assert len(calls) == 2  # two pairs completed before the crash

        resumed_calls = []

        def counting(name, security=None, **kwargs):
            resumed_calls.append((name, security.mode.value))
            return _fake_report(name, security.mode)

        engine2 = self._engine(tmp_path, run_fn=counting, resume=True)
        result = engine2.run()
        assert len(result.rows) == 4
        assert result.resumed == 2
        # Only the two pairs lost to the crash re-ran.
        assert sorted(resumed_calls) == sorted(
            set((b, m.value) for b in ("alpha", "beta") for m in _MODES)
            - set(calls)
        )

    def test_failure_is_isolated_to_its_row(self, tmp_path):
        def flaky(name, security=None, **kwargs):
            if name == "alpha":
                raise SimulationError("boom")
            return _fake_report(name, security.mode)

        result = self._engine(tmp_path, run_fn=flaky, retries=0).run()
        assert len(result.rows) == 4
        failed = [row for row in result.rows if not row.ok]
        assert {row.benchmark for row in failed} == {"alpha"}
        for row in failed:
            assert row.error_type == "SimulationError"
            assert row.error == "boom"
        # beta still succeeded
        assert result.report_for("beta", ProtectionMode.ORIGIN) is not None

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        attempts = {}

        def transient(name, security=None, **kwargs):
            key = (name, security.mode)
            attempts[key] = attempts.get(key, 0) + 1
            if attempts[key] == 1:
                raise SimulationError("transient")
            return _fake_report(name, security.mode)

        result = self._engine(tmp_path, run_fn=transient, retries=2).run()
        assert not result.failures
        assert all(row.attempts == 2 for row in result.rows)

    def test_resume_row_round_trips_the_report(self, tmp_path):
        engine = self._engine(tmp_path)
        engine.run()
        result = self._engine(tmp_path, resume=True).run()
        row = result.row("alpha", ProtectionMode.BASELINE)
        assert row.resumed
        assert row.report is not None
        assert row.report.mode is ProtectionMode.BASELINE
        assert row.report.termination == "halt"

    def test_sweep_row_record_round_trip(self):
        row = SweepRow(benchmark="x", mode=ProtectionMode.ORIGIN,
                       status="ok", termination="halt", cycles=5,
                       committed=2, attempts=1, duration_s=0.5,
                       report=_fake_report("x", ProtectionMode.ORIGIN))
        back = SweepRow.from_record(row.to_record())
        assert back.benchmark == "x" and back.mode is ProtectionMode.ORIGIN
        assert back.resumed and back.report.cycles == 1000

    def test_real_single_pair_sweep(self, tmp_path):
        """One genuine (benchmark, mode) simulation through the engine,
        so the default run path stays covered."""
        from repro.params import tiny_config

        engine = SweepEngine(benchmarks=["hmmer"],
                             modes=[ProtectionMode.ORIGIN],
                             machine=tiny_config(), scale=0.05,
                             checkpoint=str(tmp_path / "real.jsonl"))
        result = engine.run()
        assert not result.failures
        assert result.rows[0].termination == "halt"
