"""Crash-safe sweep engine: checkpointing, resume, retry and failure
isolation — exercised with a fake run function so the tests are fast
and failure timing is exact."""
import json

import pytest

from repro.core.policy import ProtectionMode
from repro.errors import SimulationError
from repro.experiments.runner import SweepEngine, SweepRow
from repro.pipeline.report import SimReport
from repro.robustness.checkpoint import CheckpointError, CheckpointStore

_MODES = (ProtectionMode.ORIGIN, ProtectionMode.BASELINE)


def _fake_report(name, mode, cycles=1000):
    return SimReport(name=name, mode=mode, cycles=cycles,
                     committed=cycles // 2, halted=True,
                     termination="halt")


def _fake_run(name, security=None, **_kwargs):
    return _fake_report(name, security.mode)


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.jsonl"))
        store.reset({"scale": 0.5})
        store.append("a/origin", {"status": "ok", "cycles": 7})
        store.append("b/origin", {"status": "failed"})
        header, rows = store.load()
        assert header == {"scale": 0.5}
        assert rows["a/origin"]["cycles"] == 7
        assert rows["b/origin"]["status"] == "failed"

    def test_last_record_wins(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.jsonl"))
        store.reset()
        store.append("a/origin", {"status": "failed"})
        store.append("a/origin", {"status": "ok"})
        _header, rows = store.load()
        assert rows["a/origin"]["status"] == "ok"

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(str(path))
        store.reset()
        store.append("a/origin", {"status": "ok"})
        with open(path, "a") as handle:
            handle.write('{"kind": "row", "key": "b/orig')  # crash here
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            _header, rows = store.load()
        assert list(rows) == ["a/origin"]

    def test_foreign_file_raises(self, tmp_path):
        path = tmp_path / "notes.jsonl"
        with open(path, "w") as handle:
            handle.write(json.dumps({"kind": "header",
                                     "format": "something-else"}) + "\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(str(path)).load()


class TestTornTailHardening:
    """A crash mid-append leaves an unterminated fragment as the last
    line.  Loads tolerate it with a warning; the next append repairs
    the file instead of gluing new bytes onto the fragment."""

    def _store_with_torn_tail(self, tmp_path, fragment):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(str(path))
        store.reset()
        store.append("a/origin", {"status": "ok"})
        with open(path, "a") as handle:
            handle.write(fragment)  # crash: no trailing newline
        return store, path

    def test_load_warns_but_tolerates(self, tmp_path):
        store, _path = self._store_with_torn_tail(
            tmp_path, '{"kind": "row", "key": "b/ori')
        with pytest.warns(RuntimeWarning, match="torn trailing line"):
            _header, rows = store.load()
        assert list(rows) == ["a/origin"]

    def test_append_truncates_fragment_first(self, tmp_path):
        store, path = self._store_with_torn_tail(
            tmp_path, '{"kind": "row", "key": "b/ori')
        with pytest.warns(RuntimeWarning, match="truncating torn"):
            store.append("c/origin", {"status": "ok"})
        store.release_writer()
        # Every remaining line is valid JSON again.
        with open(path) as handle:
            records = [json.loads(line) for line in handle]
        keys = [r.get("key") for r in records if r.get("kind") == "row"]
        assert keys == ["a/origin", "c/origin"]
        _header, rows = store.load()
        assert set(rows) == {"a/origin", "c/origin"}

    def test_complete_line_missing_only_newline_is_kept(self, tmp_path):
        # The fsync landed the bytes but died before anything else:
        # the record is whole, only its terminator is missing.  It
        # must be repaired, not thrown away.
        record = json.dumps({"kind": "row", "key": "b/origin",
                             "status": "ok"})
        store, _path = self._store_with_torn_tail(tmp_path, record)
        store.append("c/origin", {"status": "ok"})
        store.release_writer()
        _header, rows = store.load()
        assert set(rows) == {"a/origin", "b/origin", "c/origin"}

    def test_unreadable_middle_line_is_skipped_with_warning(
            self, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(str(path))
        store.reset()
        store.append("a/origin", {"status": "ok"})
        with open(path, "a") as handle:
            handle.write("%% corrupted line %%\n")
        store.append("b/origin", {"status": "ok"})
        store.release_writer()
        with pytest.warns(RuntimeWarning, match="unreadable"):
            _header, rows = store.load()
        assert set(rows) == {"a/origin", "b/origin"}


class TestBackoffJitter:
    """Retry backoff carries seeded, deterministic jitter so parallel
    sweeps do not retry in lockstep."""

    def test_deterministic_per_key(self):
        from repro.experiments.runner import backoff_delay

        assert backoff_delay(1.0, 1, "mcf/origin") == \
            backoff_delay(1.0, 1, "mcf/origin")

    def test_jitter_stays_inside_the_half_band(self):
        from repro.experiments.runner import backoff_delay

        for attempt in (1, 2, 3):
            base = 0.5 * (2 ** (attempt - 1))
            for key in ("a/origin", "b/baseline", "c/cache_hit"):
                delay = backoff_delay(0.5, attempt, key)
                assert base * 0.5 <= delay < base * 1.5

    def test_distinct_keys_spread_apart(self):
        from repro.experiments.runner import backoff_delay

        keys = [f"bench{i}/origin" for i in range(16)]
        delays = {round(backoff_delay(1.0, 1, key), 6) for key in keys}
        # A storm of 16 simultaneous retries lands on (nearly) 16
        # distinct instants, not one.
        assert len(delays) >= 12

    def test_exponential_growth_preserved(self):
        from repro.experiments.runner import backoff_delay

        # Worst-case jitter cannot undo the doubling: the fastest
        # attempt-3 retry is still slower than the slowest attempt-1.
        assert backoff_delay(1.0, 3, "k") >= 4 * 0.5
        assert backoff_delay(1.0, 1, "k") < 1.5


class TestSweepEngine:
    def _engine(self, tmp_path, run_fn=_fake_run, **kwargs):
        kwargs.setdefault("benchmarks", ["alpha", "beta"])
        kwargs.setdefault("modes", _MODES)
        kwargs.setdefault("checkpoint", str(tmp_path / "sweep.jsonl"))
        kwargs.setdefault("backoff", 0.0)
        return SweepEngine(run_fn=run_fn, **kwargs)

    def test_full_sweep_records_every_pair(self, tmp_path):
        result = self._engine(tmp_path).run()
        assert len(result.rows) == 4
        assert not result.failures
        report = result.report_for("alpha", ProtectionMode.ORIGIN)
        assert report is not None and report.cycles == 1000

    def test_killed_sweep_resumes_without_rerunning(self, tmp_path):
        calls = []

        def crashing(name, security=None, **kwargs):
            if len(calls) == 2:
                raise KeyboardInterrupt  # simulated Ctrl-C / kill
            calls.append((name, security.mode.value))
            return _fake_report(name, security.mode)

        engine = self._engine(tmp_path, run_fn=crashing)
        with pytest.raises(KeyboardInterrupt):
            engine.run()
        assert len(calls) == 2  # two pairs completed before the crash

        resumed_calls = []

        def counting(name, security=None, **kwargs):
            resumed_calls.append((name, security.mode.value))
            return _fake_report(name, security.mode)

        engine2 = self._engine(tmp_path, run_fn=counting, resume=True)
        result = engine2.run()
        assert len(result.rows) == 4
        assert result.resumed == 2
        # Only the two pairs lost to the crash re-ran.
        assert sorted(resumed_calls) == sorted(
            set((b, m.value) for b in ("alpha", "beta") for m in _MODES)
            - set(calls)
        )

    def test_failure_is_isolated_to_its_row(self, tmp_path):
        def flaky(name, security=None, **kwargs):
            if name == "alpha":
                raise SimulationError("boom")
            return _fake_report(name, security.mode)

        result = self._engine(tmp_path, run_fn=flaky, retries=0).run()
        assert len(result.rows) == 4
        failed = [row for row in result.rows if not row.ok]
        assert {row.benchmark for row in failed} == {"alpha"}
        for row in failed:
            assert row.error_type == "SimulationError"
            assert row.error == "boom"
        # beta still succeeded
        assert result.report_for("beta", ProtectionMode.ORIGIN) is not None

    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        attempts = {}

        def transient(name, security=None, **kwargs):
            key = (name, security.mode)
            attempts[key] = attempts.get(key, 0) + 1
            if attempts[key] == 1:
                raise SimulationError("transient")
            return _fake_report(name, security.mode)

        result = self._engine(tmp_path, run_fn=transient, retries=2).run()
        assert not result.failures
        assert all(row.attempts == 2 for row in result.rows)

    def test_resume_row_round_trips_the_report(self, tmp_path):
        engine = self._engine(tmp_path)
        engine.run()
        result = self._engine(tmp_path, resume=True).run()
        row = result.row("alpha", ProtectionMode.BASELINE)
        assert row.resumed
        assert row.report is not None
        assert row.report.mode is ProtectionMode.BASELINE
        assert row.report.termination == "halt"

    def test_sweep_row_record_round_trip(self):
        row = SweepRow(benchmark="x", mode=ProtectionMode.ORIGIN,
                       status="ok", termination="halt", cycles=5,
                       committed=2, attempts=1, duration_s=0.5,
                       report=_fake_report("x", ProtectionMode.ORIGIN))
        back = SweepRow.from_record(row.to_record())
        assert back.benchmark == "x" and back.mode is ProtectionMode.ORIGIN
        assert back.resumed and back.report.cycles == 1000

    def test_real_single_pair_sweep(self, tmp_path):
        """One genuine (benchmark, mode) simulation through the engine,
        so the default run path stays covered."""
        from repro.params import tiny_config

        engine = SweepEngine(benchmarks=["hmmer"],
                             modes=[ProtectionMode.ORIGIN],
                             machine=tiny_config(), scale=0.05,
                             checkpoint=str(tmp_path / "real.jsonl"))
        result = engine.run()
        assert not result.failures
        assert result.rows[0].termination == "halt"
