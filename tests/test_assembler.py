"""Tests for the text assembler."""
import pytest

from repro.errors import AssemblyError
from repro.isa import Opcode, assemble, run_oracle


class TestAssembleBasics:
    def test_simple_program(self):
        program = assemble("""
            li r1, 10
            addi r2, r1, 5
            halt
        """)
        assert [i.op for i in program.instructions] == [
            Opcode.LI, Opcode.ADDI, Opcode.HALT
        ]

    def test_comments_and_blank_lines(self):
        program = assemble("""
            ; full-line comment
            li r1, 1   # trailing comment

            halt
        """)
        assert len(program) == 2

    def test_hex_immediates(self):
        program = assemble("li r1, 0x40\nhalt\n")
        assert program.instructions[0].imm == 0x40

    def test_negative_immediates(self):
        program = assemble("addi r1, r1, -8\nhalt\n")
        assert program.instructions[0].imm == -8

    def test_labels_and_branches(self):
        program = assemble("""
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        assert program.instructions[1].target == program.label("loop")

    def test_memory_ops(self):
        program = assemble("""
            load r2, r1, 16
            store r2, r1, 8
            clflush r1, 0
            halt
        """)
        load, store, flush, _ = program.instructions
        assert load.rd == 2 and load.rs1 == 1 and load.imm == 16
        assert store.rs2 == 2 and store.rs1 == 1 and store.imm == 8
        assert flush.rs1 == 1

    def test_load_without_offset(self):
        program = assemble("load r2, r1\nhalt\n")
        assert program.instructions[0].imm == 0

    def test_data_section(self):
        program = assemble("""
            halt
        .data 0x4000
            .word 1, 2, 0xff
        """)
        assert program.initial_memory == {0x4000: 1, 0x4008: 2, 0x4010: 0xFF}

    def test_misc_instructions(self):
        program = assemble("""
            fence
            rdcycle r9
            nop
            jmpi r3
            jmp 0x1000
            mov r1, r2
            halt
        """)
        ops = [i.op for i in program.instructions]
        assert ops == [Opcode.FENCE, Opcode.RDCYCLE, Opcode.NOP,
                       Opcode.JMPI, Opcode.JMP, Opcode.MOV, Opcode.HALT]


class TestAssembleErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate r1, r2\n")

    def test_bad_register(self):
        with pytest.raises(AssemblyError):
            assemble("li r32, 0\n")

    def test_bad_integer(self):
        with pytest.raises(AssemblyError):
            assemble("li r1, banana\n")

    def test_word_before_data(self):
        with pytest.raises(AssemblyError):
            assemble(".word 1\n")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2\n")

    def test_undefined_branch_label(self):
        with pytest.raises(AssemblyError):
            assemble("jmp missing\n")


class TestAssembledExecution:
    def test_paper_listing_shape_runs(self):
        """A transcription in the spirit of the paper's Listing 2."""
        program = assemble("""
            li   r1, 0x4000      ; base of array
            li   r2, 1           ; size
            li   r3, 0           ; x (in bounds)
            bge  r3, r2, skip    ; bounds check
            shli r4, r3, 3
            add  r4, r1, r4
            load r5, r4          ; array[x]
        skip:
            halt
        .data 0x4000
            .word 42
        """)
        result = run_oracle(program)
        assert result.reg(5) == 42

    def test_loop_sum(self):
        program = assemble("""
            li r1, 5
            li r2, 0
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        result = run_oracle(program)
        assert result.reg(2) == 15
