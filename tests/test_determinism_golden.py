"""Determinism and golden-timing regression tests.

The simulator is fully deterministic: identical inputs must produce
identical cycle counts, and a small golden program pins the exact
timing so accidental changes to the pipeline model are caught.
"""

from conftest import run_to_halt
from repro import Processor, SecurityConfig, paper_config, tiny_config
from repro.isa import ProgramBuilder
from repro.pipeline.trace import PipelineTracer
from repro.workloads import spec_program


class TestDeterminism:
    def test_same_program_same_cycles(self):
        program = spec_program("hmmer", scale=0.1)
        first = Processor(program, machine=paper_config()).run()
        second = Processor(program, machine=paper_config()).run()
        assert first.cycles == second.cycles
        assert first.committed == second.committed

    def test_generator_determinism_across_builds(self):
        a = spec_program("mcf", scale=0.1)
        b = spec_program("mcf", scale=0.1)
        ra = Processor(a, machine=paper_config()).run()
        rb = Processor(b, machine=paper_config()).run()
        assert ra.cycles == rb.cycles

    def test_defended_runs_deterministic(self):
        program = spec_program("lbm", scale=0.1)
        runs = [
            Processor(program, machine=paper_config(),
                      security=SecurityConfig.cache_hit_tpbuf()).run().cycles
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestGoldenTiming:
    """Exact timing of a pinned program on the tiny machine.  If a
    pipeline change shifts these numbers, the change is timing-visible
    and the constants here should be consciously re-baselined."""

    def _golden_program(self):
        b = ProgramBuilder()
        b.li(1, 3)
        b.addi(2, 1, 4)
        b.mul(3, 2, 1)
        b.halt()
        return b.build()

    def test_golden_cycle_count(self):
        cpu, report = run_to_halt(self._golden_program(),
                                  machine=tiny_config())
        # Frontend depth 3 + the cold I-miss (1+6+20+60 on tiny)
        # dominate: the run must land in a tight band around that.
        assert report.committed == 4
        assert 90 <= report.cycles <= 140
        assert cpu.arch_reg(3) == 21

    def test_golden_dependency_spacing(self):
        """The dependent chain issues back-to-back: addi one cycle
        after li completes, mul one cycle after addi."""
        tracer = PipelineTracer()
        cpu = Processor(self._golden_program(), machine=tiny_config(),
                        tracer=tracer)
        cpu.run()
        records = {r.disasm.split()[0]: r
                   for r in tracer.committed_records()}
        li, addi, mul = records["li"], records["addi"], records["mul"]
        assert addi.issued >= li.issued + 1
        assert mul.issued >= addi.issued + 1
        # ALU latency: addi completes 1 cycle after issue, mul takes 3.
        assert addi.completed - addi.issued == 1
        assert mul.completed - mul.issued == tiny_config().core.mul_latency

    def test_load_latency_exact(self):
        """A warm L1 load completes AGU + TLB + L1 cycles after issue."""
        machine = tiny_config()
        b = ProgramBuilder()
        b.data_word(0x4000, 9)
        b.li(1, 0x4000)
        b.load(2, 1)       # cold (warms line + TLB)
        b.andi(4, 2, 0)    # serialize: second address depends on first
        b.add(4, 4, 1)
        b.load(3, 4)       # warm, issues only after the cold completes
        b.halt()
        tracer = PipelineTracer()
        cpu = Processor(b.build(), machine=machine, tracer=tracer)
        cpu.run()
        warm = [r for r in tracer.committed_records()
                if r.disasm.startswith("load")][-1]
        expected = 1 + machine.memory.dtlb.hit_latency \
            + machine.memory.l1d.hit_latency
        assert warm.completed - warm.issued == expected
