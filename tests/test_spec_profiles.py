"""Per-profile validation: every SPEC profile retires oracle-identical
state on the defended out-of-order core (tiny scale)."""
import pytest

from repro import Processor, SecurityConfig, paper_config, run_oracle
from repro.workloads import spec_names, spec_program, spec_spec


@pytest.mark.parametrize("name", spec_names())
def test_profile_oracle_equivalence_under_defense(name):
    program = spec_program(name, scale=0.04)
    oracle = run_oracle(program, max_instructions=2_000_000)
    assert oracle.halted, name
    cpu = Processor(program, machine=paper_config(),
                    security=SecurityConfig.cache_hit_tpbuf())
    report = cpu.run(max_cycles=2_000_000)
    assert report.halted, name
    for reg in range(32):
        assert cpu.arch_reg(reg) == oracle.reg(reg), (name, reg)
    assert report.committed == oracle.retired, name


@pytest.mark.parametrize("name", spec_names())
def test_profile_shape_is_sane(name):
    """Static checks on each profile: positive instruction mix, valid
    stride, and iteration count in a sensible band."""
    spec = spec_spec(name)
    assert spec.stream_loads >= 1
    assert spec.iterations >= 100
    assert spec.stride % 8 == 0
    assert 1 <= spec.page_streams <= 12
    total_branches = (spec.random_branches + spec.slow_branches
                      + spec.predictable_branches)
    assert total_branches >= 1


def test_low_hit_profiles_are_the_big_working_sets():
    """The Table V hit-rate ordering is driven by working-set size and
    stride: the low-hit benchmarks must have the big footprints."""
    low_hit = {"lbm", "milc", "zeusmp"}
    for name in low_hit:
        spec = spec_spec(name)
        assert spec.stream_bytes >= 128 * 1024, name
        assert spec.stride >= 24, name
    for name in ("GemsFDTD", "namd", "sjeng"):
        assert spec_spec(name).stream_bytes <= 4 * 1024, name
