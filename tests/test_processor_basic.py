"""End-to-end tests of the out-of-order core on small programs."""
import pytest

from conftest import ALL_SECURITY_CONFIGS, run_to_halt
from repro import Processor, tiny_config
from repro.isa import ProgramBuilder, run_oracle


class TestArithmetic:
    def test_dependent_chain(self):
        b = ProgramBuilder()
        b.li(1, 3).addi(2, 1, 4).mul(3, 2, 1).sub(4, 3, 1).halt()
        cpu, report = run_to_halt(b.build())
        assert cpu.arch_reg(4) == 18
        assert report.committed == 5

    def test_r0_writes_discarded(self):
        b = ProgramBuilder()
        b.li(0, 77).add(1, 0, 0).halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(0) == 0 and cpu.arch_reg(1) == 0

    def test_division_and_shifts(self):
        b = ProgramBuilder()
        b.li(1, 100).li(2, 7).div(3, 1, 2).shli(4, 3, 2).shri(5, 4, 1)
        b.halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(3) == 14
        assert cpu.arch_reg(4) == 56
        assert cpu.arch_reg(5) == 28

    def test_independent_ops_execute_out_of_order(self):
        """A load miss must not block independent ALU work: the ALU
        results commit within far fewer cycles than the miss latency
        would allow in-order."""
        b = ProgramBuilder()
        b.li(1, 0x40000)
        b.load(2, 1)            # cold miss
        for i in range(3, 10):
            b.li(i, i)
        b.halt()
        cpu, report = run_to_halt(b.build())
        for i in range(3, 10):
            assert cpu.arch_reg(i) == i


class TestMemory:
    def test_store_load_roundtrip(self):
        b = ProgramBuilder()
        b.li(1, 0x4000).li(2, 55).store(2, 1, 16).load(3, 1, 16).halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(3) == 55
        assert cpu.read_vword(0x4010) == 55

    def test_initial_memory_visible(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 1234)
        b.li(1, 0x4000).load(2, 1).halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(2) == 1234

    def test_store_to_load_forwarding_value(self):
        """A load from an in-flight store's address must see its data,
        not stale memory."""
        b = ProgramBuilder()
        b.data_word(0x4000, 1)
        b.li(1, 0x4000).li(2, 2)
        b.store(2, 1).load(3, 1).halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(3) == 2

    def test_many_stores_drain_through_store_buffer(self):
        b = ProgramBuilder()
        b.li(1, 0x4000)
        for i in range(20):
            b.li(2, i).store(2, 1, i * 8)
        b.halt()
        cpu, _ = run_to_halt(b.build())
        for i in range(20):
            assert cpu.read_vword(0x4000 + i * 8) == i

    def test_unaligned_load_reads_aligned_word(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 9)
        b.li(1, 0x4005).load(2, 1).halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(2) == 9


class TestControlFlow:
    def test_loop(self):
        b = ProgramBuilder()
        b.li(1, 10).li(2, 0)
        b.label("loop").add(2, 2, 1).addi(1, 1, -1).bne(1, 0, "loop")
        b.halt()
        cpu, report = run_to_halt(b.build())
        assert cpu.arch_reg(2) == 55
        assert report.branches_resolved >= 10

    def test_forward_branch_taken(self):
        b = ProgramBuilder()
        b.li(1, 1).beq(1, 1, "skip").li(2, 99).label("skip").halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(2) == 0

    def test_indirect_jump(self):
        b = ProgramBuilder()
        b.li_label(1, "target").jmpi(1).li(2, 99).label("target").halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(2) == 0

    def test_nested_loops(self):
        b = ProgramBuilder()
        b.li(1, 3).li(3, 0)
        b.label("outer")
        b.li(2, 4)
        b.label("inner")
        b.addi(3, 3, 1).addi(2, 2, -1).bne(2, 0, "inner")
        b.addi(1, 1, -1).bne(1, 0, "outer")
        b.halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(3) == 12

    def test_mispredict_recovery_is_architecturally_clean(self):
        """Data-dependent (unpredictable) branches still retire correct
        state."""
        b = ProgramBuilder()
        b.data_words(0x4000, [1, 0, 1, 0, 1])
        b.li(1, 0x4000).li(2, 5).li(3, 0)
        b.label("loop")
        b.load(4, 1)
        b.beq(4, 0, "skip")
        b.addi(3, 3, 1)
        b.label("skip")
        b.addi(1, 1, 8).addi(2, 2, -1).bne(2, 0, "loop")
        b.halt()
        cpu, report = run_to_halt(b.build())
        assert cpu.arch_reg(3) == 3
        assert report.branch_mispredicts > 0


class TestSerialization:
    def test_rdcycle_monotonic(self):
        b = ProgramBuilder()
        b.rdcycle(1).rdcycle(2).halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(2) > cpu.arch_reg(1) > 0

    def test_rdcycle_observes_load_latency(self):
        """rdcycle / cold load / rdcycle must show at least the DRAM
        latency; a warm load far less."""
        machine = tiny_config()
        b = ProgramBuilder()
        b.li(1, 0x40000)
        b.rdcycle(2).load(3, 1).rdcycle(4)
        b.rdcycle(5).load(6, 1).rdcycle(7)
        b.halt()
        cpu, _ = run_to_halt(b.build(), machine=machine)
        cold = cpu.arch_reg(4) - cpu.arch_reg(2)
        warm = cpu.arch_reg(7) - cpu.arch_reg(5)
        assert cold >= machine.memory.dram_latency
        assert warm < cold / 2

    def test_fence_orders_flush_before_load(self):
        """clflush ; fence ; load must miss (the attack-window
        construction primitive)."""
        machine = tiny_config()
        b = ProgramBuilder()
        b.data_word(0x4000, 5)
        b.li(1, 0x4000)
        b.load(2, 1)                    # warm the line
        b.clflush(1)
        b.fence()
        b.rdcycle(3).load(4, 1).rdcycle(5)
        b.halt()
        cpu, _ = run_to_halt(b.build(), machine=machine)
        assert cpu.arch_reg(5) - cpu.arch_reg(3) >= machine.memory.dram_latency

    def test_flush_flush_timing_signal(self):
        """Flushing a present line takes longer than an absent one."""
        b = ProgramBuilder()
        b.data_word(0x4000, 5)
        b.li(1, 0x4000)
        b.load(2, 1)
        b.rdcycle(3).clflush(1).rdcycle(4)    # present: slow
        b.rdcycle(5).clflush(1).rdcycle(6)    # absent: fast
        b.halt()
        cpu, _ = run_to_halt(b.build())
        present = cpu.arch_reg(4) - cpu.arch_reg(3)
        absent = cpu.arch_reg(6) - cpu.arch_reg(5)
        assert present > absent


class TestTermination:
    def test_run_without_halt_hits_cycle_limit(self):
        b = ProgramBuilder()
        b.label("spin").jmp("spin")
        cpu = Processor(b.build(), machine=tiny_config())
        report = cpu.run(max_cycles=2000)
        assert not report.halted
        assert report.cycles >= 2000

    @pytest.mark.parametrize("security", ALL_SECURITY_CONFIGS,
                             ids=lambda s: s.mode.value)
    def test_all_modes_halt_and_agree(self, security):
        b = ProgramBuilder()
        b.data_words(0x4000, [3, 1, 4, 1, 5])
        b.li(1, 0x4000).li(2, 5).li(3, 0)
        b.label("loop")
        b.load(4, 1).add(3, 3, 4).addi(1, 1, 8).addi(2, 2, -1)
        b.bne(2, 0, "loop")
        b.halt()
        program = b.build()
        expected = run_oracle(program)
        cpu, _ = run_to_halt(program, security=security)
        assert cpu.arch_reg(3) == expected.reg(3) == 14
