"""Generator invariants: determinism, termination, round-trip."""
from __future__ import annotations

import pytest

from repro.fuzz import (
    GeneratorConfig,
    case_seed,
    differential_check,
    generate_program,
    roundtrip_error,
)
from repro.isa.assembler import assemble, disassemble
from repro.isa.oracle import run_oracle


def test_same_seed_same_program():
    a = generate_program("det-check")
    b = generate_program("det-check")
    assert a.program.instructions == b.program.instructions
    assert a.program.labels == b.program.labels
    assert a.program.initial_memory == b.program.initial_memory


def test_different_seeds_differ():
    a = generate_program(case_seed("s", 0))
    b = generate_program(case_seed("s", 1))
    assert a.program.instructions != b.program.instructions


@pytest.mark.parametrize("config", [
    GeneratorConfig(),
    GeneratorConfig(loops=False, calls=False, jmpi=False),
    GeneratorConfig(length=40, max_loop_iterations=5),
    GeneratorConfig(secret=True, length=20, loops=False),
])
def test_always_terminates(config):
    for index in range(40):
        generated = generate_program(case_seed("halt", index), config)
        result = run_oracle(generated.program, max_instructions=200_000)
        assert result.halted, f"seed halt:{index} did not halt"


def test_roundtrip_property():
    for index in range(60):
        generated = generate_program(case_seed("rt", index))
        assert roundtrip_error(generated.program) == ""


def test_roundtrip_rebuilds_oracle_state():
    generated = generate_program("rt-state")
    text = disassemble(generated.program)
    rebuilt = assemble(text,
                       base_address=generated.program.base_address)
    a = run_oracle(generated.program, max_instructions=200_000)
    b = run_oracle(rebuilt, max_instructions=200_000)
    assert a.registers == b.registers
    assert a.memory == b.memory
    assert a.retired == b.retired


def test_secret_mode_declares_secret():
    config = GeneratorConfig(secret=True, loops=False)
    generated = generate_program("secret-decl", config)
    assert generated.secret_words == (config.secret_addr,)
    assert config.secret_addr in generated.program.initial_memory


def test_config_dict_roundtrip():
    config = GeneratorConfig(secret=True, length=33, jmpi=False)
    assert GeneratorConfig.from_dict(config.to_dict()) == config


def test_differential_smoke():
    for index in range(20):
        generated = generate_program(case_seed("diffsmoke", index))
        outcome = differential_check(generated.program)
        assert outcome.valid
        assert outcome.clean, outcome.render()
