"""Minimizer: deterministic shrinking that preserves the predicate."""
from __future__ import annotations

import pytest

from repro.fuzz import (
    GeneratorConfig,
    generate_program,
    leak_fitness,
    minimize_program,
)
from repro.fuzz.minimize import strip_nops
from repro.isa.assembler import disassemble
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.oracle import run_oracle

#: A generated program known (and pinned by
#: tests/data/fuzz_regressions/origin_leak_min_ev_gen_7.json) to leak
#: on the unprotected core.
KNOWN_LEAKY_SEED = "ev-gen:7"
KNOWN_LEAKY_CONFIG = GeneratorConfig(secret=True, length=22,
                                     loops=False)
#: The pinned shrink bound: the 60+-instruction generated program
#: must come down to at most this many instructions.
PINNED_SHRINK_BOUND = 10


def _known_leaky():
    generated = generate_program(KNOWN_LEAKY_SEED, KNOWN_LEAKY_CONFIG)
    assert leak_fitness(generated.program, generated.secret_words,
                        "origin",
                        warm_words=generated.secret_words), \
        "the pinned seed no longer leaks - update KNOWN_LEAKY_SEED"
    return generated


def _still_leaks(generated):
    def predicate(candidate):
        return bool(leak_fitness(candidate, generated.secret_words,
                                 "origin",
                                 warm_words=generated.secret_words))
    return predicate


def test_known_bad_shrinks_below_pinned_bound():
    generated = _known_leaky()
    result = minimize_program(generated.program,
                              _still_leaks(generated))
    assert result.instructions_after <= PINNED_SHRINK_BOUND
    assert result.instructions_after < result.instructions_before
    assert result.stripped


def test_minimize_is_deterministic():
    generated = _known_leaky()
    first = minimize_program(generated.program,
                             _still_leaks(generated))
    second = minimize_program(generated.program,
                              _still_leaks(generated))
    assert disassemble(first.program) == disassemble(second.program)
    assert first.tests == second.tests


def test_shrunk_case_still_reproduces():
    generated = _known_leaky()
    result = minimize_program(generated.program,
                              _still_leaks(generated))
    assert _still_leaks(generated)(result.program)
    # ... and the shrunk program still halts on the oracle.
    assert run_oracle(result.program,
                      max_instructions=200_000).halted


def test_predicate_must_hold_on_entry():
    generated = generate_program("min-entry", GeneratorConfig())
    with pytest.raises(ValueError):
        minimize_program(generated.program, lambda _: False)


def test_strip_nops_remaps_branches_and_labels():
    b = ProgramBuilder()
    b.li(1, 5)
    b.nop()
    b.nop()
    b.beq(1, 0, "skip")
    b.nop()
    b.li(2, 7)
    b.label("skip")
    b.halt()
    program = b.build()
    stripped = strip_nops(program)
    assert all(i.op is not Opcode.NOP
               for i in stripped.instructions)
    before = run_oracle(program, max_instructions=1000)
    after = run_oracle(stripped, max_instructions=1000)
    assert after.halted
    assert before.reg(1) == after.reg(1)
    assert before.reg(2) == after.reg(2)


def test_strip_nops_remaps_label_valued_data():
    b = ProgramBuilder()
    b.li_label(1, "target")
    b.nop()
    b.jmpi(1)
    b.nop()
    b.label("target")
    b.halt()
    program = b.build()
    stripped = strip_nops(program)
    assert run_oracle(stripped, max_instructions=1000).halted
    assert stripped.labels["target"] == \
        stripped.instructions.index(
            next(i for i in stripped.instructions
                 if i.op is Opcode.HALT)) * 4 + stripped.base_address
