"""Tests for the CALL/RET extension: ISA semantics, the return-address
stack, and the Spectre-RSB attack."""
import pytest

from conftest import run_to_halt
from repro import Processor, SecurityConfig
from repro.attacks import build_spectre_rsb, run_attack
from repro.frontend.branch_predictor import BranchPredictor
from repro.isa import Opcode, ProgramBuilder, assemble, run_oracle
from repro.isa.instructions import Instruction


class TestISA:
    def test_call_classification(self):
        call = Instruction(Opcode.CALL, rd=31, target=0x2000)
        assert call.is_branch and call.is_call
        assert call.dest == 31 and call.sources == ()

    def test_ret_classification(self):
        ret = Instruction(Opcode.RET, rs1=31)
        assert ret.is_branch and ret.is_return and ret.is_indirect
        assert ret.dest is None and ret.sources == (31,)

    def test_oracle_call_ret(self):
        b = ProgramBuilder()
        b.li(1, 4).call("fn").addi(2, 2, 1).halt()
        b.label("fn").mul(2, 1, 1).ret()
        program = b.build()
        result = run_oracle(program)
        assert result.reg(2) == 17
        # r31 holds the instruction after the call (index 2).
        assert result.reg(31) == program.address_of(2)

    def test_assembler_call_ret(self):
        program = assemble("""
            call fn
            halt
        fn:
            ret
        """)
        assert program.instructions[0].op is Opcode.CALL
        assert program.instructions[2].op is Opcode.RET


class TestRAS:
    def test_push_pop_lifo(self):
        predictor = BranchPredictor(6, 64, ras_entries=4)
        predictor.ras_push(0x100)
        predictor.ras_push(0x200)
        assert predictor.ras_pop() == 0x200
        assert predictor.ras_pop() == 0x100
        assert predictor.ras_pop() is None

    def test_overflow_drops_oldest(self):
        predictor = BranchPredictor(6, 64, ras_entries=2)
        for addr in (0x100, 0x200, 0x300):
            predictor.ras_push(addr)
        assert predictor.ras_depth() == 2
        assert predictor.ras_pop() == 0x300
        assert predictor.ras_pop() == 0x200

    def test_call_prediction_pushes(self):
        predictor = BranchPredictor(6, 64)
        call = Instruction(Opcode.CALL, rd=31, target=0x2000)
        prediction = predictor.predict(0x1000, call)
        assert prediction.taken and prediction.target == 0x2000
        assert predictor.ras_depth() == 1

    def test_ret_prediction_pops(self):
        predictor = BranchPredictor(6, 64)
        call = Instruction(Opcode.CALL, rd=31, target=0x2000)
        ret = Instruction(Opcode.RET, rs1=31)
        predictor.predict(0x1000, call)
        prediction = predictor.predict(0x2000, ret)
        assert prediction.taken and prediction.target == 0x1004
        assert predictor.ras_depth() == 0

    def test_cold_ret_predicts_fallthrough(self):
        predictor = BranchPredictor(6, 64)
        ret = Instruction(Opcode.RET, rs1=31)
        assert not predictor.predict(0x2000, ret).taken


class TestProcessorCallRet:
    def test_nested_calls(self):
        b = ProgramBuilder()
        b.li(1, 2)
        b.call("outer")
        b.halt()
        b.label("outer")
        b.mov(20, 31)              # save link
        b.call("inner")
        b.mov(31, 20)
        b.addi(1, 1, 100)
        b.ret()
        b.label("inner")
        b.mul(1, 1, 1)
        b.ret()
        program = b.build()
        oracle = run_oracle(program)
        cpu, _ = run_to_halt(program)
        assert cpu.arch_reg(1) == oracle.reg(1) == 104

    def test_call_in_loop(self):
        b = ProgramBuilder()
        b.li(1, 5).li(2, 0)
        b.label("loop")
        b.call("bump")
        b.addi(1, 1, -1)
        b.bne(1, 0, "loop")
        b.halt()
        b.label("bump")
        b.addi(2, 2, 3)
        b.ret()
        cpu, report = run_to_halt(b.build())
        assert cpu.arch_reg(2) == 15

    def test_modified_return_target_is_honored(self):
        """Architecturally, RET follows r31 even if prediction says
        otherwise - the squash fixes it up."""
        b = ProgramBuilder()
        b.call("fn")
        b.li(2, 111)               # stale return site (skipped!)
        b.halt()
        b.label("fn")
        b.li_label(31, "real_exit")
        b.ret()
        b.label("real_exit")
        b.li(3, 222)
        b.halt()
        cpu, _ = run_to_halt(b.build())
        assert cpu.arch_reg(2) == 0
        assert cpu.arch_reg(3) == 222


class TestSpectreRSB:
    def test_leaks_on_origin(self):
        result = run_attack(build_spectre_rsb(),
                            security=SecurityConfig.origin())
        assert result.success

    @pytest.mark.parametrize("security", [
        SecurityConfig.baseline(), SecurityConfig.cache_hit(),
        SecurityConfig.cache_hit_tpbuf(),
    ], ids=lambda s: s.mode.value)
    def test_defeated_by_all_mechanisms(self, security):
        result = run_attack(build_spectre_rsb(), security=security)
        assert not result.success

    def test_gadget_never_commits(self):
        """The return-site gadget executes only speculatively."""
        attack = build_spectre_rsb()
        cpu = Processor(attack.program, security=SecurityConfig.origin(),
                        page_table=attack.page_table)
        cpu.run(max_cycles=500_000)
        # r13 would hold the secret if the gadget committed.
        assert cpu.arch_reg(13) != attack.layout.secret_value
