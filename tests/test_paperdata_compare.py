"""Tests for the transcribed paper data and the comparison utilities."""
import pytest

from repro import paperdata
from repro.experiments.compare import (
    compare_figure5,
    compare_table5,
    rank_correlation,
)
from repro.workloads import spec_names


class TestPaperData:
    def test_table5_covers_all_benchmarks(self):
        assert set(paperdata.TABLE5) == set(spec_names())

    def test_table6_covers_all_benchmarks(self):
        assert set(paperdata.TABLE6) == set(spec_names())

    def test_table5_values_are_fractions(self):
        for name, row in paperdata.TABLE5.items():
            for value in (row.l1_hit_rate, row.baseline_blocked,
                          row.cachehit_blocked, row.spec_hit_rate,
                          row.tpbuf_blocked, row.spattern_mismatch):
                assert 0.0 <= value <= 1.0, name

    def test_headline_numbers(self):
        assert paperdata.FIGURE5_AVERAGES["baseline"] == 0.536
        assert paperdata.TABLE5_AVERAGE.baseline_blocked == 0.736
        assert paperdata.TABLE5["lbm"].spattern_mismatch == 0.862
        assert paperdata.TABLE5["libquantum"].spattern_mismatch == 0.001

    def test_table6_ordering_matches_prose(self):
        """The paper: 6.0% on A57-like up to 9.6% on Xeon-like."""
        avg = paperdata.TABLE6_AVERAGE
        assert avg.a57_tpbuf < avg.i7_tpbuf <= avg.xeon_tpbuf

    def test_paper_internal_consistency(self):
        """Within Table V, TPBuf never blocks more than Cache-hit."""
        for name, row in paperdata.TABLE5.items():
            assert row.tpbuf_blocked <= row.cachehit_blocked + 1e-9, name


class TestRankCorrelation:
    def test_perfect_agreement(self):
        assert rank_correlation([1, 2, 3], [10, 20, 30]) == \
            pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert rank_correlation([1, 2, 3], [30, 20, 10]) == \
            pytest.approx(-1.0)

    def test_ties_handled(self):
        rho = rank_correlation([1, 1, 2], [5, 5, 9])
        assert rho == pytest.approx(1.0)

    def test_constant_sequence_is_zero(self):
        assert rank_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rank_correlation([1], [1, 2])

    def test_short_input(self):
        assert rank_correlation([1], [2]) == 0.0


class TestComparisons:
    def test_compare_table5_renders(self):
        from repro.experiments import run_table5
        result = run_table5(benchmarks=["hmmer", "lbm", "mcf"], scale=0.1)
        text = compare_table5(result)
        assert "measured vs paper" in text
        assert "rho=" in text
        assert "lbm" in text

    def test_compare_figure5_renders(self):
        from repro.experiments import run_figure5
        result = run_figure5(benchmarks=["hmmer", "lbm", "mcf"], scale=0.1)
        text = compare_figure5(result)
        assert "paper  53.6%" in text
        assert "rank correlation" in text
