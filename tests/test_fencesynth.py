"""Tests for fence insertion/rewriting and minimal fence synthesis."""
import dataclasses

import pytest

from repro.analysis import (
    analyze_program,
    fence_all,
    oracle_equivalent,
    synthesize_fences,
    uses_rdcycle,
)
from repro.analysis.corpus import (
    GADGET_KINDS,
    build_corpus_variant,
    corpus_secret_words,
)
from repro.attacks import build_spectre_v1
from repro.attacks.harness import run_attack
from repro.core.policy import SecurityConfig
from repro.isa import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.oracle import run_oracle
from repro.isa.program import insert_fences


class TestInsertFences:
    def _program(self):
        b = ProgramBuilder()
        b.li(1, 0x6000)
        b.label("loop")
        b.load(2, 1)
        b.addi(1, 1, 8)
        b.bne(2, 0, "loop")
        b.halt()
        b.data_word(0x6000, 1)
        b.data_word(0x6008, 0)
        return b.build()

    def test_no_fences_is_identity(self):
        program = self._program()
        rewrite = insert_fences(program, [])
        assert rewrite.inserted == 0
        assert rewrite.program.instructions == program.instructions
        assert rewrite.program.labels == program.labels

    def test_fence_shifts_and_remaps_branch_target(self):
        program = self._program()
        load_pc = program.labels["loop"]
        rewrite = insert_fences(program, [load_pc])
        fenced = rewrite.program
        assert rewrite.inserted == 1
        assert len(fenced) == len(program) + 1
        # the fence sits where the load used to be ...
        assert fenced.instruction_at(load_pc).op is Opcode.FENCE
        # ... and the back-edge targeting the fenced load now lands ON
        # the protecting fence, not past it
        assert rewrite.remap_address(load_pc) == load_pc
        assert fenced.labels["loop"] == load_pc
        branch = next(i for i in fenced.instructions
                      if i.op is Opcode.BNE)
        assert branch.target == load_pc

    def test_label_valued_li_remapped_plain_constant_not(self):
        b = ProgramBuilder()
        b.li_label(1, "target")     # label value: must be remapped
        b.li(2, 0x1008)             # collides with a code address but
        b.jmpi(1)                   # is NOT a label: left untouched
        b.label("target")
        b.load(3, 2)
        b.halt()
        program = b.build()
        target = program.labels["target"]
        rewrite = insert_fences(program, [program.address_of(0)])
        fenced = rewrite.program
        li_label = fenced.instructions[1]  # after the new fence
        assert li_label.imm == rewrite.remap_address(target) \
            == fenced.labels["target"]
        li_const = fenced.instructions[2]
        assert li_const.imm == 0x1008

    def test_initial_memory_label_words_remapped(self):
        b = ProgramBuilder()
        b.li(1, 0x6000)
        b.load(2, 1)
        b.jmpi(2)
        b.label("handler")
        b.halt()
        # a stored function pointer: the word holds the handler label
        b.data_word(0x6000, 0x100C)
        program = b.build()
        handler = program.labels["handler"]
        assert handler == 0x100C  # layout sanity for the stored pointer
        rewrite = insert_fences(program, [handler])
        fenced = rewrite.program
        # the stored function pointer follows the label through the
        # rewrite and lands on the protecting fence
        assert fenced.initial_memory[0x6000] == rewrite.remap_address(handler)
        assert fenced.instruction_at(
            fenced.initial_memory[0x6000]).op is Opcode.FENCE

    def test_end_address_remaps(self):
        program = self._program()
        rewrite = insert_fences(program, [program.labels["loop"]])
        assert rewrite.remap_address(program.end_address) == \
            rewrite.program.end_address

    def test_unmapped_pc_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            insert_fences(self._program(), [0xDEAD])

    def test_fenced_program_architecturally_equivalent(self):
        program = self._program()
        rewrite = insert_fences(program, [program.labels["loop"]])
        assert oracle_equivalent(program, rewrite)

    def test_fence_all_covers_every_memory_instruction(self):
        program = self._program()
        rewrite = fence_all(program)
        memory_ops = sum(1 for i in program.instructions if i.is_memory)
        assert rewrite.inserted == memory_ops
        assert oracle_equivalent(program, rewrite)


class TestSynthesis:
    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_unsafe_gadgets_get_minimal_clean_placement(self, kind):
        program = build_corpus_variant(kind, "unsafe")
        synthesis = synthesize_fences(
            program, secret_words=corpus_secret_words(), name=kind)
        blanket = fence_all(program)
        assert synthesis.clean
        assert synthesis.fence_count >= 1
        # the acceptance bar: strictly fewer fences than fence-all
        assert synthesis.fence_count < blanket.inserted
        # the rewritten image re-analyzes clean from scratch
        rescan = analyze_program(synthesis.program, name=f"{kind}-fenced")
        from repro.analysis import refine_report
        refined = refine_report(synthesis.program, rescan,
                                secret_words=corpus_secret_words())
        assert not refined.confirmed
        assert oracle_equivalent(program, synthesis.rewrite)

    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_masked_gadgets_need_zero_fences(self, kind):
        program = build_corpus_variant(kind, "masked")
        synthesis = synthesize_fences(
            program, secret_words=corpus_secret_words(), name=kind)
        assert synthesis.clean
        assert synthesis.fence_count == 0
        assert synthesis.iterations == 1

    def test_refinement_off_fences_masked_chains_too(self):
        # without the precision layer the masked S-Pattern is repaired
        # like a real gadget -- refinement is what saves those fences
        program = build_corpus_variant("v1", "masked")
        with_refine = synthesize_fences(
            program, secret_words=corpus_secret_words(), refine=False)
        assert with_refine.clean
        assert with_refine.fence_count >= 1

    def test_fenced_attack_leaks_nothing(self):
        # third verification leg: the synthesized placement stops the
        # end-to-end Spectre V1 attack on the unprotected core
        attack = build_spectre_v1()
        synthesis = synthesize_fences(
            attack.program, secret_words=corpus_secret_words(),
            name="spectre-v1")
        assert synthesis.clean and synthesis.fence_count >= 1
        baseline = run_attack(attack, security=SecurityConfig.origin())
        assert baseline.success, "unfenced attack must work as baseline"
        fenced = dataclasses.replace(build_spectre_v1(),
                                     program=synthesis.program)
        result = run_attack(fenced, security=SecurityConfig.origin())
        assert not result.success, "fenced attack must recover nothing"

    def test_attack_program_skips_oracle_leg(self):
        attack = build_spectre_v1()
        assert uses_rdcycle(attack.program)

    def test_oracle_runs_agree_on_retired_work(self):
        program = build_corpus_variant("v1", "unsafe")
        synthesis = synthesize_fences(
            program, secret_words=corpus_secret_words())
        before = run_oracle(program)
        after = run_oracle(synthesis.program)
        assert before.halted and after.halted
        # fences retire too: exactly fence_count extra instructions
        assert after.retired == before.retired + synthesis.fence_count

    def test_render_and_to_dict(self):
        program = build_corpus_variant("v1", "unsafe")
        synthesis = synthesize_fences(
            program, secret_words=corpus_secret_words(), name="v1")
        text = synthesis.render()
        assert "fence synthesis" in text and "clean" in text
        doc = synthesis.to_dict()
        assert doc["clean"] is True
        assert doc["fence_count"] == len(doc["fence_pcs"])
