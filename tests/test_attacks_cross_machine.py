"""Attacks across machine presets: the leak and the defense verdicts
must not depend on the paper's exact core geometry."""
import pytest

from repro import SecurityConfig, a57_like, i7_like
from repro.attacks import build_spectre_v1, build_spectre_v4, run_attack
from repro.core.defense import defense_names

#: Every defended registry entry must hold on foreign geometries too.
ZOO = [name for name in defense_names() if name != "origin"]


@pytest.mark.parametrize("machine_factory", [a57_like, i7_like],
                         ids=["a57-like", "i7-like"])
class TestV1AcrossMachines:
    def test_leaks_on_origin(self, machine_factory):
        machine = machine_factory()
        result = run_attack(build_spectre_v1(machine=machine),
                            machine=machine,
                            security=SecurityConfig.origin())
        assert result.success

    @pytest.mark.parametrize("defense", ZOO)
    def test_blocked_by_every_defense(self, machine_factory, defense):
        machine = machine_factory()
        result = run_attack(build_spectre_v1(machine=machine),
                            machine=machine,
                            security=SecurityConfig.for_defense(defense))
        assert not result.success


class TestV4AcrossMachines:
    def test_a57_leak_and_defense(self):
        machine = a57_like()
        leak = run_attack(build_spectre_v4(machine=machine),
                          machine=machine,
                          security=SecurityConfig.origin())
        assert leak.success
        blocked = run_attack(build_spectre_v4(machine=machine),
                             machine=machine,
                             security=SecurityConfig.baseline())
        assert not blocked.success
