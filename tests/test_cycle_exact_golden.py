"""Cycle-exactness golden test.

The hot-path optimizations (cached instruction flags, the big-integer
security matrix, incremental producer masks, the inlined issue loop)
must not move a single cycle: ``tests/data/cycles_golden.json`` pins
cycle counts and attack leakage verdicts captured from the unoptimized
simulator.  The full sweep lives in ``tools/cycles_golden.py``; this
tier-1 test re-runs a representative subset — every corpus gadget kind,
two SPEC profiles, and one end-to-end attack — under all four modes.
"""
import json
import os

import pytest

from repro.analysis.corpus import GADGET_KINDS, build_corpus_variant
from repro.attacks import build_spectre_v1, run_attack
from repro.core.policy import EVALUATION_MODES, SecurityConfig
from repro.params import paper_config
from repro.pipeline.processor import Processor
from repro.workloads import spec_program

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "cycles_golden.json")
SPEC_SUBSET = ("bzip2", "mcf")


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH) as handle:
        data = json.load(handle)
    assert data["format"] == "repro-cycles-golden"
    return data


@pytest.fixture(scope="module")
def machine():
    return paper_config()


class TestCycleExactness:
    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_corpus_gadgets(self, golden, machine, kind):
        expected = golden["corpus"][f"{kind}:unsafe"]
        program = build_corpus_variant(kind, "unsafe")
        for mode in EVALUATION_MODES:
            cpu = Processor(program, machine=machine,
                            security=SecurityConfig(mode=mode))
            assert cpu.run().cycles == expected[mode.value], \
                f"{kind}:unsafe cycles drifted under {mode.value}"

    @pytest.mark.parametrize("name", SPEC_SUBSET)
    def test_spec_profiles(self, golden, machine, name):
        expected = golden["spec"][name]
        scale = golden["spec_scale"]
        for mode in EVALUATION_MODES:
            program = spec_program(name, scale=scale)
            cpu = Processor(program, machine=machine,
                            security=SecurityConfig(mode=mode))
            assert cpu.run().cycles == expected[mode.value], \
                f"{name} cycles drifted under {mode.value}"

    def test_attack_cycles_and_verdicts(self, golden, machine):
        expected = golden["attacks"]["v1"]
        for mode in EVALUATION_MODES:
            attack = build_spectre_v1(machine=machine)
            result = run_attack(attack, machine=machine,
                                security=SecurityConfig(mode=mode))
            assert result.report.cycles == \
                expected[mode.value]["cycles"], \
                f"v1 attack cycles drifted under {mode.value}"
            assert bool(result.success) == \
                expected[mode.value]["leaked"], \
                f"v1 leakage verdict flipped under {mode.value}"

    def test_golden_covers_full_matrix(self, golden):
        # The file itself must stay complete: all kinds x variants,
        # the whole SPEC suite, all five PoCs.
        assert len(golden["corpus"]) >= 12
        assert len(golden["spec"]) >= 20
        assert set(golden["attacks"]) == \
            {"v1", "v2", "v4", "rsb", "prime"}
