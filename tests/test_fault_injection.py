"""Fault injection: every perturbation must be architecturally
neutral (the oracle stays ground truth), deterministic under a seed,
and fully logged."""
import pytest

from repro import Processor, SecurityConfig, tiny_config
from repro.core.policy import EVALUATION_MODES
from repro.isa import ProgramBuilder, run_oracle
from repro.robustness import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    gadget_cases,
    run_campaign,
    run_fault_case,
    spec_cases,
)


def _branchy_program():
    """A loop with stores, loads and data-dependent branches — enough
    surface for every fault kind to fire."""
    b = ProgramBuilder()
    b.li(1, 0x4000)      # base
    b.li(2, 0)           # i
    b.li(3, 24)          # n
    b.li(6, 0)           # acc
    b.label("loop")
    b.shli(4, 2, 3)
    b.add(4, 4, 1)
    b.store(2, 4)
    b.load(5, 4)
    b.add(6, 6, 5)
    b.addi(2, 2, 1)
    b.blt(2, 3, "loop")
    b.halt()
    return b.build()


def _run(plan, mode_config, program):
    cpu = Processor(program, machine=tiny_config(),
                    security=mode_config, fault_plan=plan,
                    check_invariants=True)
    report = cpu.run(max_cycles=500_000)
    return cpu, report


class TestOracleNeutrality:
    @pytest.mark.parametrize("mode", EVALUATION_MODES,
                             ids=lambda m: m.value)
    def test_architectural_state_matches_oracle(self, mode):
        program = _branchy_program()
        oracle = run_oracle(program)
        plan = FaultPlan.aggressive(seed=3)
        cpu, report = _run(plan, SecurityConfig(mode=mode), program)
        assert report.halted
        for reg in range(1, 8):
            assert cpu.arch_reg(reg) == oracle.reg(reg), f"r{reg}"
        for vaddr in oracle.memory:
            assert cpu.read_vword(vaddr) == oracle.mem(vaddr)
        assert report.committed == oracle.retired

    def test_report_carries_injected_counts(self):
        program = _branchy_program()
        _cpu, report = _run(FaultPlan.aggressive(seed=1),
                            SecurityConfig.cache_hit_tpbuf(), program)
        assert report.injected_faults
        assert sum(report.injected_faults.values()) > 0

    def test_unarmed_plan_injects_nothing(self):
        program = _branchy_program()
        cpu, report = _run(FaultPlan(seed=5),
                           SecurityConfig.cache_hit_tpbuf(), program)
        assert cpu.faults.total_injected == 0
        assert report.injected_faults == {}


class TestDeterminism:
    def test_same_seed_same_run(self):
        program = _branchy_program()
        plan = FaultPlan.aggressive(seed=11)
        cpu_a, rep_a = _run(plan, SecurityConfig.cache_hit_tpbuf(),
                            program)
        cpu_b, rep_b = _run(plan, SecurityConfig.cache_hit_tpbuf(),
                            program)
        assert rep_a.cycles == rep_b.cycles
        assert cpu_a.faults.summary() == cpu_b.faults.summary()
        assert [(e.cycle, e.kind, e.seq) for e in cpu_a.faults.events] \
            == [(e.cycle, e.kind, e.seq) for e in cpu_b.faults.events]

    def test_different_seeds_decorrelate(self):
        program = _branchy_program()
        logs = []
        for seed in (0, 1):
            cpu, _ = _run(FaultPlan.aggressive(seed=seed),
                          SecurityConfig.cache_hit_tpbuf(), program)
            logs.append([(e.cycle, e.kind) for e in cpu.faults.events])
        assert logs[0] != logs[1]

    def test_derive_is_deterministic_and_keyed(self):
        plan = FaultPlan.moderate(seed=42)
        assert plan.derive("a").seed == plan.derive("a").seed
        assert plan.derive("a").seed != plan.derive("b").seed


class TestCoverage:
    def test_every_kind_fires(self):
        """Across a few aggressive seeds, each fault kind must fire at
        least once — otherwise a hook is dead."""
        program = _branchy_program()
        fired = set()
        for seed in range(6):
            cpu, _ = _run(FaultPlan.aggressive(seed=seed),
                          SecurityConfig.cache_hit_tpbuf(), program)
            fired.update(cpu.faults.summary())
        assert fired == set(FAULT_KINDS)

    def test_events_are_logged_with_locations(self):
        program = _branchy_program()
        cpu, _ = _run(FaultPlan.aggressive(seed=2),
                      SecurityConfig.cache_hit_tpbuf(), program)
        assert cpu.faults.events
        per_inst = [e for e in cpu.faults.events
                    if e.kind not in ("filter_disable",)]
        assert all(e.seq >= 0 and e.pc >= 0 for e in per_inst)
        assert "injected events" in cpu.faults.render_log()

    def test_injector_reuse_is_rejected_by_summary_semantics(self):
        injector = FaultInjector(FaultPlan.moderate(seed=0))
        assert injector.total_injected == 0
        assert injector.summary() == {}


class TestCampaign:
    def test_reduced_campaign_is_clean(self):
        cases = gadget_cases(fenced_too=False)[:3] \
            + spec_cases(["hmmer"], scale=0.05)
        result = run_campaign(cases, seeds=[0, 1],
                              plan=FaultPlan.moderate())
        assert result.ok, result.render()
        assert result.total_injected > 0
        assert len(result.results) == 2 * len(cases)

    def test_campaign_reports_seed_and_case(self):
        cases = spec_cases(["hmmer"], scale=0.05)
        result = run_campaign(cases, seeds=[7],
                              plan=FaultPlan.moderate())
        outcome = result.results[0]
        assert outcome.seed == 7
        assert outcome.name == "spec:hmmer"
        assert "spec:hmmer" in result.render()

    def test_run_fault_case_flags_divergence(self):
        """A case whose program never halts must be reported as a
        failure, not an exception."""
        b = ProgramBuilder()
        b.li(1, 1)
        b.label("loop")
        b.addi(1, 1, 1)
        b.jmp("loop")
        case_cls = type(spec_cases(["hmmer"])[0])
        case = case_cls(name="nohalt", program=b.build(),
                        max_cycles=5_000, max_instructions=5_000)
        outcome = run_fault_case(case, FaultPlan.moderate(seed=0))
        assert not outcome.ok
        assert outcome.mismatches
