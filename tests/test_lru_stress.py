"""Tests for the recency-sensitive LRU-stress workload and its role in
the Section VII.A study."""

from repro import Processor, SecurityConfig, paper_config, run_oracle
from repro.core.policy import ProtectionMode
from repro.experiments.lru_study import STRESS_NAME, run_lru_study
from repro.memory.replacement import SpeculativeLRUPolicy
from repro.workloads.synthetic import build_lru_stress


def run_policy(program, policy):
    security = SecurityConfig(mode=ProtectionMode.CACHE_HIT_TPBUF,
                              lru_policy=policy)
    cpu = Processor(program, machine=paper_config(), security=security)
    report = cpu.run(max_cycles=8_000_000)
    assert report.halted
    return cpu, report


class TestStressWorkload:
    def test_halts_and_matches_oracle(self):
        program = build_lru_stress(scale=0.2)
        oracle = run_oracle(program, max_instructions=2_000_000)
        assert oracle.halted
        cpu, _ = run_policy(program, SpeculativeLRUPolicy.NORMAL)
        for reg in range(32):
            assert cpu.arch_reg(reg) == oracle.reg(reg)

    def test_no_update_costs_hit_rate_and_cycles(self):
        program = build_lru_stress(scale=0.5)
        _, normal = run_policy(program, SpeculativeLRUPolicy.NORMAL)
        _, no_update = run_policy(program, SpeculativeLRUPolicy.NO_UPDATE)
        assert no_update.l1d_hit_rate < normal.l1d_hit_rate - 0.01
        assert no_update.cycles > normal.cycles

    def test_delayed_recovers_the_loss(self):
        program = build_lru_stress(scale=0.5)
        _, normal = run_policy(program, SpeculativeLRUPolicy.NORMAL)
        _, no_update = run_policy(program, SpeculativeLRUPolicy.NO_UPDATE)
        _, delayed = run_policy(program, SpeculativeLRUPolicy.DELAYED)
        assert delayed.cycles < no_update.cycles
        assert delayed.cycles <= normal.cycles * 1.01

    def test_hot_chain_is_cyclic(self):
        program = build_lru_stress()
        chain = program.initial_memory
        start = next(iter(chain))
        node, seen = start, set()
        while node not in seen:
            seen.add(node)
            node = chain[node]
        assert len(seen) == len(chain)


class TestStudyIntegration:
    def test_stress_row_present(self):
        result = run_lru_study(benchmarks=["hmmer"], scale=0.1)
        assert STRESS_NAME in result.cycles
        assert result.stress_overhead(SpeculativeLRUPolicy.NO_UPDATE) >= 0

    def test_average_excludes_stress(self):
        result = run_lru_study(benchmarks=["hmmer"], scale=0.1)
        # With only hmmer in the suite, the average must come from it
        # alone, not the stress row.
        assert result.average_overhead(SpeculativeLRUPolicy.NO_UPDATE) == \
            result.overhead("hmmer", SpeculativeLRUPolicy.NO_UPDATE)

    def test_study_without_stress(self):
        result = run_lru_study(benchmarks=["hmmer"], scale=0.1,
                               include_stress=False)
        assert STRESS_NAME not in result.cycles
        assert result.stress_overhead(SpeculativeLRUPolicy.NO_UPDATE) == 0.0
