"""Tests for the side-channel receivers' decode logic, the eviction-set
allocator, and the attack layout/page-table construction."""
import pytest

from repro import paper_config
from repro.attacks.evictset import EvictionAllocator, cache_set_of
from repro.attacks.layout import AttackLayout
from repro.attacks.sidechannel import (
    EvictReloadChannel,
    FlushFlushChannel,
    FlushReloadChannel,
    PrimeProbeChannel,
)
from repro.errors import SimulationError
from repro.memory.tlb import PageTable


class TestDecode:
    def _fast_hit_channel(self):
        channel = FlushReloadChannel()
        return channel

    def test_fast_is_hit_decoding(self):
        channel = self._fast_hit_channel()
        timings = [260] * 16
        timings[7] = 5
        verdict = channel.decode(timings)
        assert verdict.leaked and verdict.recovered == 7

    def test_no_signal_means_no_leak(self):
        channel = self._fast_hit_channel()
        verdict = channel.decode([260] * 16)
        assert not verdict.leaked and verdict.recovered is None

    def test_slow_is_hit_decoding(self):
        channel = FlushFlushChannel()
        timings = [14] * 16
        timings[3] = 44
        verdict = channel.decode(timings)
        assert verdict.leaked and verdict.recovered == 3

    def test_gap_below_threshold_rejected(self):
        channel = self._fast_hit_channel()   # threshold 30
        timings = [260] * 16
        timings[7] = 250
        assert not channel.decode(timings).leaked

    def test_exclude_removes_polluted_candidate(self):
        channel = self._fast_hit_channel()
        timings = [260] * 16
        timings[0] = 4    # polluted (e.g. V4 re-execution)
        timings[7] = 5    # the real signal
        verdict = channel.decode(timings, exclude=frozenset({0}))
        assert verdict.recovered == 7

    def test_empty_timings(self):
        verdict = self._fast_hit_channel().decode([])
        assert not verdict.leaked


class TestEvictionAllocator:
    def test_addresses_map_to_target_set(self):
        table = PageTable()
        allocator = EvictionAllocator(table, region_base=0x800000)
        l1 = paper_config().memory.l1d
        target = 0x12345
        target_paddr = table.physical_address(target)
        target_set = cache_set_of(target_paddr, l1)
        vaddrs = allocator.eviction_set_for(target, l1)
        assert len(vaddrs) == l1.ways + 1
        for vaddr in vaddrs:
            assert cache_set_of(table.physical_address(vaddr), l1) \
                == target_set

    def test_addresses_are_distinct_lines(self):
        table = PageTable()
        allocator = EvictionAllocator(table, region_base=0x800000)
        l3 = paper_config().memory.l3
        vaddrs = allocator.eviction_set_for(0x5000, l3)
        lines = {table.physical_address(v) >> 6 for v in vaddrs}
        assert len(lines) == len(vaddrs)

    def test_impossible_request_raises(self):
        table = PageTable()
        allocator = EvictionAllocator(table, region_base=0x800000)
        l1 = paper_config().memory.l1d
        with pytest.raises(SimulationError):
            allocator.addresses_for_set(0, l1, count=10_000, max_pages=4)


class TestAttackLayout:
    def test_oob_index_reaches_secret(self):
        layout = AttackLayout()
        assert layout.array1_base + 8 * layout.oob_index \
            == layout.secret_addr

    def test_cross_page_probe_lines_distinct_pages_and_sets(self):
        layout = AttackLayout()
        pages = {layout.probe_line(v) // 4096 for v in range(16)}
        offsets = {layout.probe_line(v) % 4096 // 64 for v in range(16)}
        assert len(pages) == 16
        assert len(offsets) == 16

    def test_initial_data_has_training_inputs(self):
        layout = AttackLayout(n_train=3)
        data = layout.initial_data()
        assert data[layout.input_addr(0)] == 0
        assert data[layout.input_addr(3)] == layout.oob_index

    def test_page_table_shares_probe_when_asked(self):
        layout = AttackLayout()
        shared = layout.build_page_table(shared_probe=True)
        for value in range(layout.n_values):
            assert shared.physical_address(layout.probe_line(value)) == \
                shared.physical_address(layout.attacker_probe_line(value))

    def test_page_table_without_sharing(self):
        layout = AttackLayout()
        table = layout.build_page_table(shared_probe=False)
        # Attacker alias pages simply don't exist yet.
        assert table.lookup(layout.attacker_probe_line(0) // 4096) is None

    def test_invalid_secret_rejected(self):
        with pytest.raises(SimulationError):
            AttackLayout(n_values=8, secret_value=9)

    def test_same_page_overlap_guard(self):
        with pytest.raises(SimulationError):
            AttackLayout.same_page(n_values=256)


class TestChannelConfig:
    def test_shared_requirements(self):
        assert FlushReloadChannel.requires_shared_probe
        assert FlushFlushChannel.requires_shared_probe
        assert EvictReloadChannel.requires_shared_probe
        assert not PrimeProbeChannel.requires_shared_probe

    def test_hit_direction(self):
        assert not FlushReloadChannel.slow_is_hit
        assert FlushFlushChannel.slow_is_hit
        assert PrimeProbeChannel.slow_is_hit

    def test_channel_names_unique(self):
        from repro.attacks.sidechannel import ALL_CHANNELS
        names = [cls.name for cls in ALL_CHANNELS]
        assert len(set(names)) == len(names)
