"""The pluggable defense registry: completeness, naming, pickling,
construction-time validation, report plumbing, and the per-defense
pipeline-invariant lint."""
import pickle

import pytest

from conftest import run_to_halt
from repro import Processor, SecurityConfig, tiny_config
from repro.core.defense import (
    DEFENSE_ALIASES,
    DEFENSE_REGISTRY,
    Defense,
    DefenseConfigError,
    base_mode_for,
    create_defense,
    defense_names,
    normalize_defense_name,
)
from repro.core.policy import ProtectionMode
from repro.experiments.runner import SweepTask
from repro.isa import ProgramBuilder
from repro.pipeline.report import SimReport

ALL = list(defense_names())


def zoo_program():
    """Branch + dependent loads: exercises suspects, gating and taint."""
    b = ProgramBuilder()
    b.data_word(0x4000, 0x80)
    b.li(1, 0x4000).clflush(1).fence()
    b.load(2, 1)                  # slow producer
    b.bne(2, 0, "skip")           # unresolved while loads dispatch
    b.li(3, 0x40000)
    b.load(4, 3)
    b.load(5, 4)                  # dependent (tainted address for STT)
    b.label("skip")
    b.store(1, 2)
    b.halt()
    return b.build()


class TestRegistry:
    def test_paper_modes_and_zoo_registered(self):
        assert ALL[:4] == ["origin", "baseline", "cache_hit",
                           "cache_hit_tpbuf"]
        for name in ("delay_on_miss", "eager_delay", "delay_on_miss_ss",
                     "invisispec", "stt", "slh"):
            assert name in ALL

    @pytest.mark.parametrize("name", ALL)
    def test_entry_declares_identity_and_area(self, name):
        defense = create_defense(name)
        assert defense.name == name
        assert defense.summary
        assert defense.provenance
        assert defense.kind in ("hardware", "software")
        assert isinstance(defense.base_mode, ProtectionMode)
        # Every entry must declare its hardware cost (0.0 is a valid
        # declaration; *not implementing it* is not).
        area = defense.area_mm2(tiny_config())
        assert isinstance(area, float) and area >= 0.0
        assert defense.area_fraction(tiny_config()) >= 0.0

    def test_base_class_declares_no_area(self):
        class Anonymous(Defense):
            name = "anonymous"
        with pytest.raises(NotImplementedError):
            Anonymous().area_mm2(tiny_config())

    def test_registry_maps_names_to_classes(self):
        for name, cls in DEFENSE_REGISTRY.items():
            assert cls.name == name


class TestNaming:
    def test_aliases_normalize(self):
        assert normalize_defense_name("tpbuf") == "cache_hit_tpbuf"
        assert normalize_defense_name("none") == "origin"
        assert normalize_defense_name("delay-on-miss") == "delay_on_miss"
        for alias, target in DEFENSE_ALIASES.items():
            assert normalize_defense_name(alias) == target

    def test_protection_mode_accepted(self):
        assert normalize_defense_name(ProtectionMode.CACHE_HIT) \
            == "cache_hit"

    def test_unknown_name_is_structured_error(self):
        with pytest.raises(DefenseConfigError, match="registered"):
            normalize_defense_name("retpoline")

    def test_legacy_names_equal_mode_values(self):
        """Checkpoint/task-key compatibility hinges on this."""
        for mode in ProtectionMode:
            assert normalize_defense_name(mode.value) == mode.value
            assert base_mode_for(mode.value) is mode


class TestPickling:
    """ParallelSweepExecutor ships configs/tasks to spawned workers."""

    @pytest.mark.parametrize("name", ALL)
    def test_security_config_round_trips(self, name):
        config = SecurityConfig.for_defense(name)
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert clone.defense_name == name

    @pytest.mark.parametrize("name", ALL)
    def test_sweep_task_round_trips(self, name):
        task = SweepTask(benchmark="bzip2", mode=base_mode_for(name),
                         defense=normalize_defense_name(name),
                         machine=tiny_config(), scale=0.01)
        clone = pickle.loads(pickle.dumps(task))
        assert clone.defense_name == name
        assert clone.security == task.security


class TestConstructionValidation:
    def test_mismatched_mode_and_defense_rejected(self):
        bad = SecurityConfig(mode=ProtectionMode.ORIGIN,
                             defense="cache_hit_tpbuf")
        with pytest.raises(DefenseConfigError):
            Processor(zoo_program(), machine=tiny_config(), security=bad)

    def test_software_defense_needs_a_program(self):
        from repro.isa.program import InstructionMemory
        imem = InstructionMemory(zoo_program())
        with pytest.raises(DefenseConfigError, match="software"):
            Processor(imem, machine=tiny_config(),
                      security=SecurityConfig.for_defense("slh"))

    def test_unknown_defense_rejected_at_construction(self):
        bad = SecurityConfig(mode=ProtectionMode.ORIGIN,
                             defense="retpoline")
        with pytest.raises(DefenseConfigError):
            Processor(zoo_program(), machine=tiny_config(), security=bad)


class TestPipelineRuns:
    @pytest.mark.parametrize("name", ALL)
    def test_halts_with_invariant_lint(self, name):
        """Every defense runs the mixed program to HALT with the
        structural + defense-wiring invariant lint on every cycle."""
        cpu = Processor(zoo_program(), machine=tiny_config(),
                        security=SecurityConfig.for_defense(name),
                        check_invariants=True)
        report = cpu.run(max_cycles=100_000)
        assert report.halted
        assert report.defense_name == name

    @pytest.mark.parametrize("name", ALL)
    def test_architectural_state_matches_origin(self, name):
        """Defenses change timing, never architected results."""
        base_cpu, _ = run_to_halt(zoo_program())
        cpu, report = run_to_halt(
            zoo_program(), security=SecurityConfig.for_defense(name))
        assert report.halted
        for reg in range(1, 8):
            assert cpu.arch_reg(reg) == base_cpu.arch_reg(reg), \
                f"r{reg} diverged under {name}"


class TestReportPlumbing:
    def test_report_round_trips_defense(self):
        _, report = run_to_halt(
            zoo_program(), security=SecurityConfig.for_defense("stt"))
        payload = report.to_dict()
        assert payload["defense"] == "stt"
        clone = SimReport.from_dict(payload)
        assert clone.defense_name == "stt"
        assert "stt" in clone.render()

    def test_legacy_payload_defaults_to_mode(self):
        _, report = run_to_halt(zoo_program(),
                                security=SecurityConfig.baseline())
        payload = report.to_dict()
        payload.pop("defense", None)
        clone = SimReport.from_dict(payload)
        assert clone.defense_name == "baseline"


class TestServeSubmissions:
    def test_zoo_name_accepted_and_canonicalized(self):
        from repro.serve.protocol import Submission
        sub = Submission.from_request({
            "asm": "halt", "mode": "invisispec", "kind": "simulate"})
        assert sub.mode == "invisispec"
        assert sub.security_config().defense_name == "invisispec"
        aliased = Submission.from_request({
            "asm": "halt", "mode": "tpbuf", "kind": "simulate"})
        assert aliased.mode == "cache_hit_tpbuf"
        # Alias and canonical spelling share one cache entry.
        canonical = Submission.from_request({
            "asm": "halt", "mode": "cache_hit_tpbuf", "kind": "simulate"})
        assert aliased.cache_key() == canonical.cache_key()

    def test_unknown_mode_rejected(self):
        from repro.serve.protocol import Submission, SubmissionError
        with pytest.raises(SubmissionError, match="unknown mode"):
            Submission.from_request({"asm": "halt", "mode": "kaiser"})


class TestConfigIO:
    def test_security_dict_round_trip(self):
        from repro.config_io import security_from_dict, security_to_dict
        for name in ALL:
            config = SecurityConfig.for_defense(name)
            assert security_from_dict(security_to_dict(config)) == config
