"""Tests for the store-wait memory-dependence predictor."""
import pytest

from conftest import run_to_halt
from repro import SecurityConfig, tiny_config
from repro.attacks import build_spectre_v4, run_attack
from repro.isa import ProgramBuilder, run_oracle
from repro.params import with_core
from repro.pipeline.memdep import StoreWaitPredictor


class TestPredictorUnit:
    def test_cold_predictor_speculates(self):
        predictor = StoreWaitPredictor()
        assert not predictor.should_wait(0x1000)

    def test_one_violation_trains_to_wait(self):
        predictor = StoreWaitPredictor()
        predictor.train_violation(0x1000)
        assert predictor.should_wait(0x1000)

    def test_training_is_per_pc(self):
        predictor = StoreWaitPredictor()
        predictor.train_violation(0x1004)
        assert not predictor.should_wait(0x1008)   # different table slot

    def test_decay_returns_to_speculation(self):
        predictor = StoreWaitPredictor()
        predictor.train_violation(0x1000)
        predictor.train_no_conflict(0x1000)
        assert predictor.counter(0x1000) == 1
        assert not predictor.should_wait(0x1000)

    def test_counter_saturates(self):
        predictor = StoreWaitPredictor()
        for _ in range(5):
            predictor.train_violation(0x1000)
        assert predictor.counter(0x1000) == 3

    def test_entries_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            StoreWaitPredictor(entries=300)


def conflict_loop_program(iterations=20):
    """A loop whose store address resolves late and whose next load
    conflicts: every iteration is an ordering violation on a naive
    core."""
    b = ProgramBuilder()
    b.data_word(0x4000, 0x5000)
    b.li(1, 0x4000)
    b.li(5, iterations)
    b.label("loop")
    b.clflush(1)
    b.fence()
    b.load(2, 1)              # slow pointer (-> 0x5000)
    b.addi(3, 3, 1)
    b.store(3, 2)             # store to *p, address late
    b.li(4, 0x5000)
    b.load(6, 4)              # conflicting load
    b.addi(5, 5, -1)
    b.bne(5, 0, "loop")
    b.halt()
    return b.build()


class TestPredictorIntegration:
    def test_violations_mostly_eliminated(self):
        program = conflict_loop_program()
        naive = with_core(tiny_config(), store_wait_predictor=False)
        trained = with_core(tiny_config(), store_wait_predictor=True)
        _, naive_report = run_to_halt(program, machine=naive)
        _, trained_report = run_to_halt(program, machine=trained)
        assert naive_report.memory_order_violations >= 10
        assert trained_report.memory_order_violations <= 2

    def test_architectural_state_unchanged(self):
        program = conflict_loop_program()
        oracle = run_oracle(program)
        machine = with_core(tiny_config(), store_wait_predictor=True)
        cpu, _ = run_to_halt(program, machine=machine)
        for reg in range(32):
            assert cpu.arch_reg(reg) == oracle.reg(reg)
        assert cpu.read_vword(0x5000) == oracle.mem(0x5000)

    def test_v4_still_leaks_single_shot(self):
        """The predictor is NOT a Spectre defense: the first encounter
        of the gadget speculates before anything is trained."""
        from repro import paper_config
        machine = with_core(paper_config(), store_wait_predictor=True)
        result = run_attack(build_spectre_v4(), machine=machine,
                            security=SecurityConfig.origin())
        assert result.success

    def test_v4_blocked_by_defense_with_predictor_on(self):
        from repro import paper_config
        machine = with_core(paper_config(), store_wait_predictor=True)
        result = run_attack(build_spectre_v4(), machine=machine,
                            security=SecurityConfig.cache_hit_tpbuf())
        assert not result.success
