"""Static-vs-dynamic cross-validation: the acceptance criterion.

Every PC the *simulator* ever marks as a security dependence (suspect
or blocked load) must also be flagged by the *static* suspect
analysis — the static pass over-approximates the dynamic one.
"""
import pytest

from repro.analysis import cross_validate, record_dynamic_suspects
from repro.analysis.corpus import GADGET_KINDS, build_gadget_program
from repro.attacks import build_spectre_v1, build_spectre_v4
from repro.core.policy import SecurityConfig
from repro.params import tiny_config


class TestGadgetCoverage:
    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_static_covers_dynamic(self, kind):
        program = build_gadget_program(kind)
        result = cross_validate(program, name=kind)
        assert result.covered, result.render()
        assert result.coverage == 1.0

    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_static_covers_dynamic_baseline_mode(self, kind):
        """Baseline CS marks *every* speculative load suspect — the
        widest dynamic set the static pass has to cover."""
        program = build_gadget_program(kind)
        result = cross_validate(program, name=kind,
                                security=SecurityConfig.baseline())
        assert result.covered, result.render()


class TestAttackCoverage:
    def test_v1_attack_covered(self):
        attack = build_spectre_v1()
        result = cross_validate(attack.program, name=attack.name,
                                page_table=attack.page_table)
        assert result.covered, result.render()
        assert result.dynamic.suspect_pcs, "attack produced no suspects"

    def test_v4_attack_covered(self):
        attack = build_spectre_v4()
        result = cross_validate(attack.program, name=attack.name,
                                page_table=attack.page_table)
        assert result.covered, result.render()


class TestMechanics:
    def test_dynamic_recording_sees_suspects(self):
        program = build_gadget_program("v1")
        dynamic = record_dynamic_suspects(program)
        assert dynamic.suspect_pcs
        assert dynamic.all_pcs >= dynamic.blocked_pcs

    def test_origin_mode_records_nothing(self):
        """Without a defense there are no security dependences, so the
        dynamic set is empty and trivially covered."""
        program = build_gadget_program("v1")
        result = cross_validate(program,
                                security=SecurityConfig.origin())
        assert not result.dynamic.all_pcs
        assert result.covered and result.coverage == 1.0

    def test_render_reports_coverage(self):
        result = cross_validate(build_gadget_program("v1"),
                                name="v1-driver")
        text = result.render()
        assert "v1-driver" in text and "100%" in text

    def test_undersized_window_breaks_coverage(self):
        """Shrinking the static window below the machine's ROB loses
        the over-approximation guarantee — the harness must notice."""
        program = build_gadget_program("v1")
        result = cross_validate(program, window=1,
                                machine=tiny_config())
        # With a 1-instruction window essentially nothing is suspect
        # statically, while the simulator still flags loads.
        assert result.dynamic.all_pcs
        assert not result.covered
        assert result.uncovered
