"""The static defense-coverage pre-screen and its dynamic
cross-validation (the acceptance gate of the memdep PR): the predicted
(attack × defense) matrix must agree with the shootout on every cell,
and any disagreement is named in the failure."""
import pytest

from repro.analysis.prescreen import (
    ATTACK_FAMILY,
    PrescreenMatrix,
    attack_program,
    prescreen_defenses,
)
from repro.core.defense import create_defense, defense_names
from repro.experiments import run_defense_prescreen
from repro.experiments.api import get_experiment


class TestCoverageDeclarations:
    def test_every_defense_declares_sources(self):
        for name in defense_names():
            defense = create_defense(name)
            assert isinstance(defense.covers_sources, tuple)
            assert set(defense.covers_sources) <= {
                "branch", "indirect", "return", "store"}

    def test_branch_keyed_defenses_omit_store(self):
        for name in ("delay_on_miss", "eager_delay"):
            assert "store" not in create_defense(name).covers_sources

    def test_store_set_defense_covers_store_via_memdep(self):
        defense = create_defense("delay_on_miss_ss")
        assert "store" in defense.covers_sources
        assert defense.coverage_needs_memdep


class TestAttackPrograms:
    def test_every_suite_attack_resolves(self):
        for attack in ATTACK_FAMILY:
            program = attack_program(attack)
            assert program.instructions

    def test_unknown_attack_rejected(self):
        with pytest.raises(ValueError, match="unknown attack"):
            attack_program("meltdown")


class TestStaticMatrix:
    @pytest.fixture(scope="class")
    def matrix(self) -> PrescreenMatrix:
        return prescreen_defenses()

    def test_origin_predicted_leaky_everywhere(self, matrix):
        for attack in matrix.attacks:
            assert not matrix.cell(attack, "origin").predicted_blocked

    def test_v1_predicted_blocked_by_every_real_defense(self, matrix):
        for defense in matrix.defenses:
            if defense == "origin":
                continue
            assert matrix.cell("v1", defense).predicted_blocked, \
                matrix.cell("v1", defense).reason

    def test_v4_blind_spot_predicted(self, matrix):
        for defense in ("delay_on_miss", "eager_delay"):
            cell = matrix.cell("v4", defense)
            assert not cell.predicted_blocked
            assert "store" in cell.reason

    def test_v4_closed_by_store_set_variant(self, matrix):
        cell = matrix.cell("v4", "delay_on_miss_ss")
        assert cell.predicted_blocked
        assert "memdep" in cell.reason

    def test_cells_carry_reasons(self, matrix):
        for cell in matrix.cells.values():
            assert cell.reason

    def test_render_marks_leaky_cells(self, matrix):
        text = matrix.render()
        assert "LEAK" in text and "ok" in text

    def test_subset_selection(self):
        matrix = prescreen_defenses(attacks=["v4"],
                                    defenses=["delay_on_miss",
                                              "delay_on_miss_ss"])
        assert matrix.attacks == ("v4",)
        assert not matrix.cell("v4", "delay_on_miss").predicted_blocked
        assert matrix.cell("v4", "delay_on_miss_ss").predicted_blocked

    def test_unknown_attack_name_rejected(self):
        with pytest.raises(ValueError, match="unknown attack"):
            prescreen_defenses(attacks=["v9"])

    def test_to_dict_covers_every_cell(self, matrix):
        payload = matrix.to_dict()
        assert len(payload["cells"]) == \
            len(matrix.attacks) * len(matrix.defenses)


class TestDynamicCrossValidation:
    """The acceptance criterion: static prediction == dynamic reality
    on every (attack, defense) cell, disagreements named."""

    def test_static_only_skips_the_shootout(self):
        validation = run_defense_prescreen(
            attacks=["v4"], defenses=["delay_on_miss_ss"], dynamic=False)
        assert validation.shootout is None
        assert not validation.validated  # unvalidated, not disproven
        assert "skipped" in validation.render()

    def test_full_matrix_agrees_with_the_shootout(self):
        validation = run_defense_prescreen(trials=1)
        assert validation.shootout is not None
        assert validation.validated, (
            "static pre-screen disagrees with the dynamic shootout:\n  "
            + "\n  ".join(validation.disagreements))
        cells = (len(validation.matrix.attacks)
                 * len(validation.matrix.defenses))
        assert f"all {cells} cells agree" in validation.render()

    def test_disagreements_are_named(self, monkeypatch):
        """A wrong prediction names its exact cell in the failure."""
        import repro.experiments.prescreen as exp
        from repro.analysis.prescreen import PrescreenCell

        forged = prescreen_defenses(attacks=["v4"],
                                    defenses=["delay_on_miss"])
        forged.cells[("v4", "delay_on_miss")] = PrescreenCell(
            "v4", "delay_on_miss", True, "fabricated for the test")
        monkeypatch.setattr(exp, "prescreen_defenses",
                            lambda **kwargs: forged)
        validation = exp.run_defense_prescreen(
            attacks=["v4"], defenses=["delay_on_miss"], trials=1)
        assert not validation.validated
        [message] = validation.disagreements
        assert "v4/delay_on_miss" in message
        assert "static predicts blocked" in message
        assert "DISAGREEMENTS" in validation.render()

    def test_registered_as_experiment(self):
        spec = get_experiment("defense_prescreen")
        assert spec.supports == ("machine",)
        assert "dynamic" in spec.extras and "window" in spec.extras
