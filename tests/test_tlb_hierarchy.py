"""Tests for the page table, TLB and the inclusive cache hierarchy."""
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.memory.hierarchy import (
    FLUSH_ABSENT_LATENCY,
    FLUSH_PRESENT_LATENCY,
    MemoryHierarchy,
)
from repro.memory.tlb import TLB, PageTable
from repro.params import TLBParams, tiny_config


class TestPageTable:
    def test_on_demand_allocation_is_sequential(self):
        table = PageTable(first_ppn=0x100)
        first = table.translate_vpn(7)
        second = table.translate_vpn(9)
        assert (first, second) == (0x100, 0x101)

    def test_repeated_translation_is_stable(self):
        table = PageTable()
        assert table.translate_vpn(5) == table.translate_vpn(5)

    def test_map_shared_aliases_physical_page(self):
        table = PageTable()
        table.map_page(1)
        table.map_shared(2, 1)
        assert table.translate_vpn(1) == table.translate_vpn(2)

    def test_map_shared_rejects_conflicting_mapping(self):
        table = PageTable()
        table.map_page(1)
        table.map_page(2)
        with pytest.raises(SimulationError):
            table.map_shared(2, 1)

    def test_double_map_rejected(self):
        table = PageTable()
        table.map_page(3)
        with pytest.raises(SimulationError):
            table.map_page(3)

    def test_physical_address_preserves_offset(self):
        table = PageTable()
        paddr = table.physical_address(0x1234)
        assert paddr & 0xFFF == 0x234

    def test_no_allocation_mode_faults(self):
        table = PageTable(allocate_on_access=False)
        with pytest.raises(SimulationError):
            table.translate_vpn(1)


class TestTLB:
    def _tlb(self, entries=4):
        table = PageTable()
        return TLB(TLBParams(entries=entries), table, "t")

    def test_miss_then_hit(self):
        tlb = self._tlb()
        first = tlb.translate(0x1000)
        second = tlb.translate(0x1008)
        assert not first.tlb_hit and second.tlb_hit
        assert first.ppn == second.ppn
        assert second.latency < first.latency

    def test_capacity_eviction_is_lru(self):
        tlb = self._tlb(entries=2)
        tlb.translate(0x1000)
        tlb.translate(0x2000)
        tlb.translate(0x1000)          # page 1 now MRU
        tlb.translate(0x3000)          # evicts page 2
        assert tlb.translate(0x1000).tlb_hit
        assert not tlb.translate(0x2000).tlb_hit

    def test_flush(self):
        tlb = self._tlb()
        tlb.translate(0x1000)
        tlb.flush()
        assert not tlb.translate(0x1000).tlb_hit

    def test_page_size_mismatch_rejected(self):
        table = PageTable(page_bytes=4096)
        with pytest.raises(SimulationError):
            TLB(TLBParams(page_bytes=8192), table)


class TestHierarchy:
    def _hierarchy(self):
        return MemoryHierarchy(tiny_config().memory)

    def test_miss_fills_all_levels(self):
        h = self._hierarchy()
        result = h.data_access(0x1000)
        assert result.level == "mem" and not result.l1_hit
        assert h.l1d.contains(0x1000)
        assert h.l2.contains(0x1000)
        assert h.l3.contains(0x1000)

    def test_latencies_accumulate_down_the_hierarchy(self):
        h = self._hierarchy()
        p = tiny_config().memory
        miss = h.data_access(0x1000)
        assert miss.latency == (p.l1d.hit_latency + p.l2.hit_latency
                                + p.l3.hit_latency + p.dram_latency)
        hit = h.data_access(0x1000)
        assert hit.latency == p.l1d.hit_latency and hit.l1_hit

    def test_l2_hit_after_l1_eviction(self):
        h = self._hierarchy()
        h.data_access(0x1000)
        h.l1d.invalidate(0x1000)
        result = h.data_access(0x1000)
        assert result.level == "l2"

    def test_flush_line_removes_everywhere_and_times_presence(self):
        h = self._hierarchy()
        h.data_access(0x1000)
        latency, present = h.flush_line(0x1000)
        assert present and latency == FLUSH_PRESENT_LATENCY
        assert not h.probe_data(0x1000)
        latency, present = h.flush_line(0x1000)
        assert not present and latency == FLUSH_ABSENT_LATENCY

    def test_filter_check_hit_does_not_fill(self):
        h = self._hierarchy()
        assert not h.data_hit_l1(0x1000)
        assert not h.l1d.contains(0x1000)   # request discarded
        assert not h.l2.contains(0x1000)

    def test_complete_miss_fills_after_filter_check(self):
        h = self._hierarchy()
        assert not h.data_hit_l1(0x1000)
        result = h.complete_miss(0x1000)
        assert h.l1d.contains(0x1000)
        assert result.level == "mem"

    def test_inst_and_data_sides_share_outer_levels(self):
        h = self._hierarchy()
        h.inst_access(0x1000)
        assert h.l2.contains(0x1000)
        assert not h.l1d.contains(0x1000)
        assert h.l1i.contains(0x1000)

    def test_inclusion_invariant_empty(self):
        assert self._hierarchy().check_inclusion() == []

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from(["data", "inst", "flush"]),
                  st.integers(0, 600)),
        min_size=1, max_size=300,
    ))
    def test_inclusion_invariant_holds_under_random_traffic(self, ops):
        """Back-invalidation keeps the hierarchy inclusive: every L1
        line is in L2, every L2 line in L3."""
        h = self._hierarchy()
        for kind, line in ops:
            addr = line * 64
            if kind == "data":
                h.data_access(addr)
            elif kind == "inst":
                h.inst_access(addr)
            else:
                h.flush_line(addr)
        assert h.check_inclusion() == []

    def test_l3_eviction_back_invalidates_l1(self):
        """Filling more lines than one L3 set holds must remove the
        evicted line from the inner levels too (the Evict+Reload
        substrate)."""
        h = self._hierarchy()
        memory = tiny_config().memory
        target = 0x1000
        h.data_access(target)
        l3_set_span = memory.l3.num_sets * 64
        ways = memory.l3.ways
        for way in range(1, ways + 1):
            h.data_access(target + way * l3_set_span)
        assert not h.l3.contains(target)
        assert not h.l1d.contains(target)
        assert h.check_inclusion() == []
