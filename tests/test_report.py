"""Tests for SimReport derived metrics and rendering."""
import pytest

from repro.core.policy import ProtectionMode
from repro.pipeline.report import SimReport, compare_table


def make_report(**kwargs):
    defaults = dict(name="t", mode=ProtectionMode.ORIGIN)
    defaults.update(kwargs)
    return SimReport(**defaults)


class TestDerivedMetrics:
    def test_ipc(self):
        report = make_report(cycles=200, committed=100)
        assert report.ipc == 0.5

    def test_ipc_zero_cycles(self):
        assert make_report().ipc == 0.0

    def test_l1d_hit_rate(self):
        report = make_report(l1d_hits=90, l1d_misses=10)
        assert report.l1d_hit_rate == 0.9

    def test_blocked_rate(self):
        report = make_report(committed_loads=8, committed_stores=2,
                             committed_mem_blocked=5)
        assert report.blocked_rate == 0.5

    def test_speculative_hit_rate(self):
        report = make_report(suspect_accesses=4, suspect_l1_hits=3)
        assert report.speculative_hit_rate == 0.75

    def test_spattern_mismatch_rate(self):
        report = make_report(tpbuf_queries=10, tpbuf_safe=4)
        assert report.spattern_mismatch_rate == 0.4

    def test_branch_mispredict_rate(self):
        report = make_report(branches_resolved=20, branch_mispredicts=2)
        assert report.branch_mispredict_rate == 0.1

    def test_overhead_vs(self):
        origin = make_report(cycles=100)
        slower = make_report(cycles=150)
        assert slower.overhead_vs(origin) == pytest.approx(0.5)

    def test_empty_rates_are_zero(self):
        report = make_report()
        assert report.blocked_rate == 0.0
        assert report.speculative_hit_rate == 0.0
        assert report.spattern_mismatch_rate == 0.0
        assert report.safe_fraction == 0.0


class TestRendering:
    def test_render_mentions_mode_and_counts(self):
        report = make_report(cycles=10, committed=5, halted=True)
        text = report.render()
        assert "origin" in text
        assert "cycles=10" in text
        assert "halted=True" in text

    def test_compare_table(self):
        origin = make_report(cycles=100, committed=80)
        other = make_report(mode=ProtectionMode.BASELINE, cycles=150,
                            committed=80)
        text = compare_table([origin, other], origin)
        assert "baseline" in text
        assert "1.500" in text
