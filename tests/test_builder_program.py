"""Tests for the program builder, Program container and
InstructionMemory."""
import pytest

from repro.errors import AssemblyError, SimulationError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import INSTRUCTION_BYTES, Opcode
from repro.isa.program import InstructionMemory, Program


class TestBuilder:
    def test_sequential_addresses(self):
        b = ProgramBuilder(base_address=0x2000)
        assert b.next_address == 0x2000
        b.nop()
        assert b.next_address == 0x2004

    def test_label_resolution_backward(self):
        b = ProgramBuilder()
        b.label("top").nop().bne(1, 0, "top")
        program = b.build()
        assert program.instructions[1].target == program.label("top")

    def test_label_resolution_forward(self):
        b = ProgramBuilder()
        b.beq(1, 2, "end").nop().label("end").halt()
        program = b.build()
        assert program.instructions[0].target == program.label("end")

    def test_undefined_label_raises(self):
        b = ProgramBuilder()
        b.jmp("nowhere")
        with pytest.raises(AssemblyError):
            b.build()

    def test_duplicate_label_raises(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(AssemblyError):
            b.label("x")

    def test_li_label(self):
        b = ProgramBuilder()
        b.li_label(5, "target").label("target").halt()
        program = b.build()
        assert program.instructions[0].imm == program.label("target")

    def test_align_pads_with_nops(self):
        b = ProgramBuilder(base_address=0x1000)
        b.nop()
        b.align(64)
        assert b.next_address % 64 == 0
        program = b.build()
        assert all(i.op is Opcode.NOP for i in program.instructions)

    def test_align_non_multiple_raises(self):
        with pytest.raises(AssemblyError):
            ProgramBuilder().align(10)

    def test_data_word_alignment_enforced(self):
        with pytest.raises(AssemblyError):
            ProgramBuilder().data_word(0x1001, 5)

    def test_data_words_consecutive(self):
        b = ProgramBuilder()
        b.data_words(0x4000, [1, 2, 3])
        b.halt()
        program = b.build()
        assert program.initial_memory == {0x4000: 1, 0x4008: 2, 0x4010: 3}

    def test_data_word_masks_to_64_bits(self):
        b = ProgramBuilder()
        b.data_word(0x4000, 1 << 65)
        b.halt()
        assert b.build().initial_memory[0x4000] == 0

    def test_builder_is_fluent(self):
        program = (
            ProgramBuilder().li(1, 5).addi(1, 1, 1).halt().build()
        )
        assert len(program) == 3

    def test_all_alu_emitters(self):
        b = ProgramBuilder()
        b.add(1, 2, 3).sub(1, 2, 3).mul(1, 2, 3).div(1, 2, 3)
        b.and_(1, 2, 3).or_(1, 2, 3).xor(1, 2, 3).shl(1, 2, 3).shr(1, 2, 3)
        b.addi(1, 2, 4).andi(1, 2, 4).xori(1, 2, 4).shli(1, 2, 4)
        b.shri(1, 2, 4).mov(1, 2)
        program = b.build()
        assert len(program) == 15
        assert all(inst.opclass.name == "ALU" for inst in program.instructions)


class TestProgram:
    def _program(self):
        return ProgramBuilder(0x1000).nop().nop().halt().build()

    def test_address_of(self):
        program = self._program()
        assert program.address_of(0) == 0x1000
        assert program.address_of(2) == 0x1000 + 2 * INSTRUCTION_BYTES

    def test_instruction_at(self):
        program = self._program()
        assert program.instruction_at(0x1008).op is Opcode.HALT
        assert program.instruction_at(0x0FFC) is None
        assert program.instruction_at(0x1001) is None
        assert program.instruction_at(program.end_address) is None

    def test_entry_point_defaults_to_base(self):
        assert self._program().entry_point == 0x1000

    def test_unaligned_base_rejected(self):
        with pytest.raises(SimulationError):
            Program(instructions=[], base_address=0x1002)

    def test_unknown_label_raises(self):
        with pytest.raises(SimulationError):
            self._program().label("missing")

    def test_listing_contains_labels(self):
        b = ProgramBuilder()
        b.label("entry").halt()
        text = b.build().listing()
        assert "entry:" in text and "halt" in text


class TestInstructionMemory:
    def test_fetch_mapped(self):
        program = ProgramBuilder(0x1000).li(1, 7).halt().build()
        imem = InstructionMemory(program)
        assert imem.fetch(0x1000).op is Opcode.LI
        assert imem.is_mapped(0x1004)

    def test_fetch_unmapped_is_nop(self):
        imem = InstructionMemory(ProgramBuilder().halt().build())
        assert imem.fetch(0x9999000).op is Opcode.NOP
        assert not imem.is_mapped(0x9999000)

    def test_overlap_rejected(self):
        a = ProgramBuilder(0x1000).halt().build()
        b = ProgramBuilder(0x1000).halt().build()
        with pytest.raises(SimulationError):
            InstructionMemory(a, b)

    def test_multiple_disjoint_programs(self):
        a = ProgramBuilder(0x1000).halt().build()
        b = ProgramBuilder(0x2000).nop().build()
        imem = InstructionMemory(a, b)
        assert imem.fetch(0x2000).op is Opcode.NOP
        assert len(imem.programs) == 2

    def test_initial_memory_union(self):
        a = ProgramBuilder(0x1000)
        a.data_word(0x4000, 1)
        b = ProgramBuilder(0x2000)
        b.data_word(0x4008, 2)
        imem = InstructionMemory(a.halt().build(), b.halt().build())
        assert imem.initial_memory() == {0x4000: 1, 0x4008: 2}


class TestFromProgram:
    def _original(self):
        b = ProgramBuilder(0x1000)
        b.li(1, 0x6000)
        b.label("loop")
        b.load(2, 1)
        b.bne(2, 0, "loop")
        b.halt()
        b.label("end")
        b.data_word(0x6000, 0)
        return b.build()

    def test_round_trip_preserves_image(self):
        program = self._original()
        rebuilt = ProgramBuilder.from_program(program).build()
        assert rebuilt.instructions == program.instructions
        assert rebuilt.labels == program.labels
        assert rebuilt.initial_memory == program.initial_memory
        assert rebuilt.base_address == program.base_address

    def test_append_after_existing_program(self):
        program = self._original()
        builder = ProgramBuilder.from_program(program)
        assert builder.next_address == program.end_address
        builder.label("extra")
        builder.nop()
        extended = builder.build()
        assert len(extended) == len(program) + 1
        assert extended.labels["extra"] == program.end_address
        # the end-address label survives the round trip too
        assert extended.labels["end"] == program.labels["end"]
