"""End-to-end attack tests: every Spectre variant must succeed on the
unprotected core and be defeated exactly where Table IV says - with
the TPBuf bypass on the two non-shared-page scenarios reproduced."""
import pytest

from repro import SecurityConfig
from repro.attacks import (
    build_spectre_prime,
    build_spectre_v1,
    build_spectre_v2,
    build_spectre_v4,
    run_attack,
)
from repro.attacks.layout import AttackLayout
from repro.attacks.sidechannel import (
    EvictReloadChannel,
    EvictTimeChannel,
    FlushFlushChannel,
    PrimeProbeChannel,
)
from repro.core.defense import defense_names
from repro.core.policy import ProtectionMode

ORIGIN = SecurityConfig.origin()
BASELINE = SecurityConfig.baseline()
CACHE_HIT = SecurityConfig.cache_hit()
TPBUF = SecurityConfig.cache_hit_tpbuf()

#: Every registered defense except the unprotected control — all of
#: them, paper modes and zoo alike, must defeat Spectre V1.
ZOO = [name for name in defense_names() if name != "origin"]


class TestSpectreV1:
    def test_leaks_on_origin(self):
        result = run_attack(build_spectre_v1(), security=ORIGIN)
        assert result.success
        assert result.recovered == result.secret

    @pytest.mark.parametrize("defense", ZOO)
    def test_defeated_by_every_registered_defense(self, defense):
        result = run_attack(build_spectre_v1(),
                            security=SecurityConfig.for_defense(defense))
        assert not result.success
        assert not result.leaked
        assert result.mode == defense

    def test_leaks_any_secret_value(self):
        for secret in (1, 5, 12):
            layout = AttackLayout(secret_value=secret)
            result = run_attack(build_spectre_v1(layout=layout),
                                security=ORIGIN)
            assert result.recovered == secret


class TestSpectreV2:
    def test_leaks_on_origin(self):
        result = run_attack(build_spectre_v2(), security=ORIGIN)
        assert result.success

    @pytest.mark.parametrize("security", [BASELINE, CACHE_HIT, TPBUF],
                             ids=lambda s: s.mode.value)
    def test_defeated_by_all_mechanisms(self, security):
        result = run_attack(build_spectre_v2(), security=security)
        assert not result.success


class TestSpectreV4:
    def test_leaks_on_origin(self):
        result = run_attack(build_spectre_v4(), security=ORIGIN)
        assert result.success

    @pytest.mark.parametrize("security", [BASELINE, CACHE_HIT, TPBUF],
                             ids=lambda s: s.mode.value)
    def test_defeated_by_all_mechanisms(self, security):
        result = run_attack(build_spectre_v4(), security=security)
        assert not result.success

    def test_branch_only_matrix_misses_v4(self):
        """Section VI.C(1): without memory-memory dependence edges the
        store-bypass attack evades the defense."""
        weakened = SecurityConfig(mode=ProtectionMode.CACHE_HIT_TPBUF,
                                  branch_only_matrix=True)
        result = run_attack(build_spectre_v4(), security=weakened)
        assert result.success

    @pytest.mark.parametrize("defense", ["invisispec", "stt", "slh"])
    def test_defeated_by_new_zoo_schemes(self, defense):
        result = run_attack(build_spectre_v4(),
                            security=SecurityConfig.for_defense(defense))
        assert not result.success

    @pytest.mark.parametrize("defense", ["delay_on_miss", "eager_delay"])
    def test_branch_keyed_defenses_miss_v4(self, defense):
        """The documented blind spot: defenses that key 'speculative'
        off unresolved branches alone cannot see the store-bypass
        window, so V4 rides through (see docs/defenses.md)."""
        result = run_attack(build_spectre_v4(),
                            security=SecurityConfig.for_defense(defense))
        assert result.success

    def test_store_set_variant_closes_the_blind_spot(self):
        """delay_on_miss_ss widens the suspect predicate with the
        static store sets of repro.analysis.memdep, so the exact V4
        gadget delay_on_miss provably leaks is blocked."""
        leaky = run_attack(
            build_spectre_v4(),
            security=SecurityConfig.for_defense("delay_on_miss"))
        assert leaky.success  # the blind spot is real ...
        result = run_attack(
            build_spectre_v4(),
            security=SecurityConfig.for_defense("delay_on_miss_ss"))
        assert not result.success  # ... and the store sets close it


class TestSpectrePrime:
    def test_leaks_on_origin(self):
        result = run_attack(build_spectre_prime(), security=ORIGIN)
        assert result.success

    def test_defeated_by_tpbuf(self):
        result = run_attack(build_spectre_prime(), security=TPBUF)
        assert not result.success


class TestAlternateChannels:
    """V1 gadget observed through each receiver (Table IV rows 2-4)."""

    @pytest.mark.parametrize("channel_cls", [
        FlushFlushChannel, EvictReloadChannel, PrimeProbeChannel,
    ], ids=lambda c: c.name)
    def test_leaks_on_origin(self, channel_cls):
        result = run_attack(build_spectre_v1(channel=channel_cls()),
                            security=ORIGIN)
        assert result.success

    @pytest.mark.parametrize("channel_cls", [
        FlushFlushChannel, EvictReloadChannel, PrimeProbeChannel,
    ], ids=lambda c: c.name)
    def test_defeated_by_tpbuf(self, channel_cls):
        result = run_attack(build_spectre_v1(channel=channel_cls()),
                            security=TPBUF)
        assert not result.success


class TestNonSharedScenarios:
    """Table IV's last two rows: same-page transmission evades the
    S-Pattern, so Cache-hit + TPBuf does NOT protect - the paper's
    admitted limitation - while Baseline and Cache-hit still do."""

    def _prime_probe(self):
        return build_spectre_v1(channel=PrimeProbeChannel(),
                                layout=AttackLayout.same_page())

    def _evict_time(self):
        return build_spectre_v1(channel=EvictTimeChannel(),
                                layout=AttackLayout.same_page())

    def test_prime_probe_leaks_on_origin(self):
        assert run_attack(self._prime_probe(), security=ORIGIN).success

    def test_prime_probe_bypasses_tpbuf(self):
        assert run_attack(self._prime_probe(), security=TPBUF).success

    @pytest.mark.parametrize("security", [BASELINE, CACHE_HIT],
                             ids=lambda s: s.mode.value)
    def test_prime_probe_blocked_by_strict_modes(self, security):
        assert not run_attack(self._prime_probe(),
                              security=security).success

    def test_evict_time_leaks_on_origin(self):
        assert run_attack(self._evict_time(), security=ORIGIN).success

    def test_evict_time_bypasses_tpbuf(self):
        assert run_attack(self._evict_time(), security=TPBUF).success

    @pytest.mark.parametrize("security", [BASELINE, CACHE_HIT],
                             ids=lambda s: s.mode.value)
    def test_evict_time_blocked_by_strict_modes(self, security):
        assert not run_attack(self._evict_time(),
                              security=security).success


class TestAttackReporting:
    def test_result_render(self):
        result = run_attack(build_spectre_v1(), security=ORIGIN)
        text = result.render()
        assert "spectre-v1" in text and "LEAKED" in text

    def test_timings_cover_alphabet(self):
        result = run_attack(build_spectre_v1(), security=ORIGIN)
        assert len(result.timings) == 16
        assert all(t > 0 for t in result.timings)

    def test_shared_pages_really_alias(self):
        attack = build_spectre_v1()
        layout = attack.layout
        table = attack.page_table
        for value in range(layout.n_values):
            victim = table.physical_address(layout.probe_line(value))
            attacker = table.physical_address(
                layout.attacker_probe_line(value))
            assert victim == attacker

    def test_same_page_layout_has_one_transmit_page(self):
        layout = AttackLayout.same_page()
        pages = {layout.probe_line(v) // 4096
                 for v in range(layout.n_values)}
        assert len(pages) == 1
        assert layout.secret_addr // 4096 in pages
