"""Tests for the symbolic SNI certifier and its replayable witnesses."""
import json

import pytest

from repro.analysis import analyze_program, report_from_dict
from repro.analysis.corpus import (
    CORPUS_VARIANTS,
    GADGET_KINDS,
    build_corpus_variant,
    corpus_secret_words,
)
from repro.analysis.fencesynth import synthesize_fences
from repro.analysis.solver import (
    App,
    Const,
    ConstraintSolver,
    Var,
    cannot_equal,
    evaluate,
    exprs_equal,
    invert,
    mk,
    negate,
    support,
    words_disjoint,
)
from repro.analysis.symx import (
    CertifyResult,
    Verdict,
    certify_program,
    concrete_speculative_trace,
    finding_certificates,
)
from repro.analysis.witness import Witness, replay_witness
from repro.isa.builder import ProgramBuilder
from repro.robustness.faults import FaultPlan

SECRETS = corpus_secret_words()


def certify(kind, variant, **kwargs):
    kwargs.setdefault("secret_words", SECRETS)
    return certify_program(build_corpus_variant(kind, variant),
                           name=f"{kind}-{variant}", **kwargs)


# ---------------------------------------------------------------------------
# Solver layer
# ---------------------------------------------------------------------------

class TestSolver:
    def test_constant_folding(self):
        expr = mk("add", Const(3), Const(4))
        assert isinstance(expr, Const) and expr.value == 7

    def test_evaluate_and_support(self):
        x = Var("x")
        expr = mk("add", mk("shl", x, Const(3)), Const(0x100))
        assert evaluate(expr, {"x": 2}) == 0x110
        assert set(support(expr)) == {"x"}

    def test_negate_round_trip(self):
        x = Var("x")
        cond = mk("eq", x, Const(5))
        assert evaluate(cond, {"x": 5}) == 1
        assert evaluate(negate(cond), {"x": 5}) == 0
        assert evaluate(negate(cond), {"x": 6}) == 1

    def test_cannot_equal_uses_intervals(self):
        # AND with 7 bounds the expression to [0, 7].
        masked = mk("and", Var("x"), Const(7))
        assert cannot_equal(masked, 0x10000)
        assert not cannot_equal(masked, 3)

    def test_words_disjoint(self):
        a = mk("add", Const(0x1000), Const(0))
        b = Const(0x2000)
        assert words_disjoint(a, b)
        assert not words_disjoint(Var("x"), b)

    def test_invert_simple_chain(self):
        x = Var("x")
        expr = mk("add", mk("shl", x, Const(3)), Const(0x100))
        model = invert(expr, 0x140)
        assert model is not None
        assert evaluate(expr, model) == 0x140

    def test_find_model_respects_constraints(self):
        x = Var("x", preferred=9)
        solver = ConstraintSolver()
        model = solver.find_model([mk("eq", mk("and", x, Const(7)),
                                      Const(5))])
        assert model is not None
        assert evaluate(x, model) & 7 == 5

    def test_find_model_unsat_returns_none(self):
        x = Var("x")
        solver = ConstraintSolver()
        constraints = [mk("eq", x, Const(1)), mk("eq", x, Const(2))]
        assert solver.find_model(constraints) is None

    def test_exprs_equal_structural(self):
        x = Var("x")
        assert exprs_equal(mk("add", x, Const(8)), mk("add", x, Const(8)))
        assert not exprs_equal(mk("add", x, Const(8)),
                               mk("add", x, Const(16)))
        assert isinstance(App("mul", x, Const(3)), App)


# ---------------------------------------------------------------------------
# Corpus verdict matrix
# ---------------------------------------------------------------------------

class TestCorpusVerdicts:
    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_unsafe_is_leaky_with_replayed_witness(self, kind):
        result = certify(kind, "unsafe")
        assert result.verdict is Verdict.LEAKY
        assert result.leaks
        for leak in result.leaks:
            assert leak.witness is not None
            assert leak.replay is not None
            assert leak.replay.reproduced, (
                f"{kind} witness did not reproduce dynamically")

    @pytest.mark.parametrize("kind", GADGET_KINDS)
    @pytest.mark.parametrize("variant", ["fenced", "masked"])
    def test_mitigated_is_proved_safe(self, kind, variant):
        result = certify(kind, variant)
        assert result.verdict is Verdict.PROVED_SAFE, result.warnings
        assert not result.leaks
        assert not result.truncated

    def test_no_unknown_anywhere_at_default_budgets(self):
        for kind in GADGET_KINDS:
            for variant in CORPUS_VARIANTS:
                result = certify(kind, variant, replay=False)
                assert result.verdict is not Verdict.UNKNOWN, (
                    kind, variant, result.warnings)

    def test_per_sink_verdicts_cover_taint_findings(self):
        program = build_corpus_variant("v1", "unsafe")
        report = analyze_program(program, name="v1-unsafe")
        result = certify_program(program, secret_words=SECRETS,
                                 replay=False)
        assert report.findings
        for finding in report.findings:
            assert result.verdict_for(finding.sink_pc) is Verdict.LEAKY

    def test_secret_values_differ_only_in_secret_memory(self):
        result = certify("v1", "unsafe")
        witness = result.leaks[0].witness
        assert witness is not None
        assert dict(witness.secret_memory_a) != dict(
            witness.secret_memory_b)
        assert witness.secret_memory_a != ()
        public_a = witness.initial_memory("a")
        public_b = witness.initial_memory("b")
        secret_addrs = {addr for addr, _ in witness.secret_memory_a}
        for addr in public_a:
            if addr not in secret_addrs:
                assert public_a[addr] == public_b[addr]


# ---------------------------------------------------------------------------
# Budgets: the certifier degrades to UNKNOWN, never hangs
# ---------------------------------------------------------------------------

def _branchy_program(branches=24):
    """A program whose symbolic-input branches double the path count
    per level — guaranteed to blow any small path budget."""
    builder = ProgramBuilder(base_address=0x1000)
    builder.data_word(0x80000, 0)
    builder.li(9, 0x80000)
    builder.load(1, 9, note="symbolic input")
    for index in range(branches):
        builder.shri(2, 1, index)
        builder.andi(2, 2, 1)
        builder.beq(2, 0, f"skip_{index}")
        builder.addi(3, 3, 1)
        builder.label(f"skip_{index}")
    builder.halt()
    return builder.build()


class TestBudgets:
    def test_max_paths_yields_unknown_with_structured_warning(self):
        result = certify_program(_branchy_program(), max_paths=16,
                                 replay=False, name="branchy")
        assert result.verdict is Verdict.UNKNOWN
        assert result.truncated
        kinds = {warning["kind"] for warning in result.warnings}
        assert "path_budget" in kinds
        warning = next(w for w in result.warnings
                       if w["kind"] == "path_budget")
        assert warning["max_paths"] == 16

    def test_max_steps_yields_unknown(self):
        result = certify_program(_branchy_program(), max_steps=64,
                                 replay=False, name="branchy")
        assert result.verdict is Verdict.UNKNOWN
        kinds = {warning["kind"] for warning in result.warnings}
        assert "step_budget" in kinds

    def test_budget_unknown_renders_and_serializes(self):
        result = certify_program(_branchy_program(), max_paths=16,
                                 replay=False, name="branchy")
        text = result.render()
        assert "UNKNOWN" in text
        document = json.loads(json.dumps(result.to_dict()))
        assert document["verdict"] == "UNKNOWN"
        assert document["truncated"] is True

    def test_generous_budget_proves_branchy_program(self):
        # With no secrets and enough paths the same program certifies.
        result = certify_program(_branchy_program(branches=6),
                                 replay=False, name="branchy-small")
        assert result.verdict is Verdict.PROVED_SAFE


class TestWallClockBudget:
    """The serve-tier budgets: wall clock and cooperative cancel both
    degrade to UNKNOWN with a structured warning — never a hang."""

    def test_exhausted_wall_clock_degrades_to_unknown(self):
        result = certify(
            "v1", "unsafe", replay=False, wall_clock_budget=1e-9)
        assert result.verdict is Verdict.UNKNOWN
        assert result.truncated
        warning = next(w for w in result.warnings
                       if w["kind"] == "wall_clock")
        assert "degrades to UNKNOWN" in warning["detail"]

    def test_cancel_check_degrades_to_unknown(self):
        result = certify("v1", "unsafe", replay=False,
                         cancel_check=lambda: True)
        assert result.verdict is Verdict.UNKNOWN
        kinds = {w["kind"] for w in result.warnings}
        assert "cancelled" in kinds

    def test_budgets_arrive_via_run_options(self):
        from repro.params import RunOptions
        result = certify(
            "v1", "unsafe", replay=False,
            options=RunOptions(wall_clock_budget=1e-9))
        assert result.verdict is Verdict.UNKNOWN
        kinds = {w["kind"] for w in result.warnings}
        assert "wall_clock" in kinds

    def test_explicit_keyword_wins_over_options(self):
        from repro.params import RunOptions
        # A generous explicit budget overrides the starved options
        # bundle: the certification completes normally.
        result = certify(
            "v1", "unsafe", replay=False, wall_clock_budget=300.0,
            options=RunOptions(wall_clock_budget=1e-9))
        assert result.verdict is Verdict.LEAKY

    def test_generous_wall_clock_does_not_change_the_verdict(self):
        tight_free = certify("v2", "unsafe", replay=False)
        budgeted = certify("v2", "unsafe", replay=False,
                           wall_clock_budget=300.0)
        assert budgeted.verdict is tight_free.verdict
        assert not budgeted.truncated

    def test_late_cancel_never_hangs(self):
        # Cancel fires partway through: whatever was resolved stays
        # resolved, everything else degrades — and the call returns.
        calls = []

        def cancel_after_a_few():
            calls.append(None)
            return len(calls) > 2

        result = certify("v2", "unsafe", replay=False,
                         cancel_check=cancel_after_a_few)
        assert result.verdict in (Verdict.UNKNOWN, Verdict.LEAKY)
        assert calls  # the hook was actually polled


# ---------------------------------------------------------------------------
# Witness replay determinism (mirrors test_parallel_sweep discipline)
# ---------------------------------------------------------------------------

class TestReplayDeterminism:
    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_replay_twice_identical(self, kind):
        program = build_corpus_variant(kind, "unsafe")
        result = certify_program(program, secret_words=SECRETS,
                                 name=f"{kind}-unsafe")
        witness = result.leaks[0].witness
        assert witness is not None
        first = replay_witness(program, witness)
        second = replay_witness(program, witness)
        assert first.reproduced and second.reproduced
        assert first.leaked_lines == second.leaked_lines
        assert (first.cycles_a, first.cycles_b) == (
            second.cycles_a, second.cycles_b)

    def test_replay_deterministic_under_fault_plan(self):
        program = build_corpus_variant("v1", "unsafe")
        result = certify_program(program, secret_words=SECRETS,
                                 name="v1-unsafe")
        witness = result.leaks[0].witness
        assert witness is not None
        plan = FaultPlan.moderate(seed=1234)
        first = replay_witness(program, witness, fault_plan=plan)
        second = replay_witness(program, witness, fault_plan=plan)
        assert first.leaked_lines == second.leaked_lines
        assert first.reproduced == second.reproduced
        assert first.fault_seed == second.fault_seed == 1234

    def test_witness_round_trips_through_json(self):
        result = certify("v4", "unsafe", replay=False)
        witness = result.leaks[0].witness
        assert witness is not None
        document = json.loads(json.dumps(witness.to_dict()))
        rebuilt = Witness.from_dict(document)
        assert rebuilt == witness
        replay = replay_witness(build_corpus_variant("v4", "unsafe"),
                                rebuilt)
        assert replay.reproduced


# ---------------------------------------------------------------------------
# Reference semantics
# ---------------------------------------------------------------------------

class TestConcreteTrace:
    def test_trace_is_deterministic(self):
        program = build_corpus_variant("v1", "unsafe")
        witness = certify("v1", "unsafe", replay=False).leaks[0].witness
        assert witness is not None
        overrides = witness.initial_memory("a")
        first = concrete_speculative_trace(program, overrides)
        second = concrete_speculative_trace(program, overrides)
        assert first == second
        assert first  # the witness input steers into the gadget

    def test_trace_separates_witness_variants(self):
        # The two witness runs share public memory but their
        # speculative observation sequences must differ — this is the
        # ground truth behind every LEAKY verdict.
        program = build_corpus_variant("v1", "unsafe")
        witness = certify("v1", "unsafe", replay=False).leaks[0].witness
        assert witness is not None
        trace_a = concrete_speculative_trace(
            program, witness.initial_memory("a"))
        trace_b = concrete_speculative_trace(
            program, witness.initial_memory("b"))
        assert trace_a != trace_b


# ---------------------------------------------------------------------------
# Report schema v3 and certificates
# ---------------------------------------------------------------------------

class TestCertificates:
    def test_finding_certificates_shape(self):
        program = build_corpus_variant("v1", "unsafe")
        report = analyze_program(program, name="v1-unsafe")
        result = certify_program(program, secret_words=SECRETS,
                                 name="v1-unsafe")
        certificates = finding_certificates(result, report)
        assert set(certificates) == {f.sink_pc for f in report.findings}
        for block in certificates.values():
            assert block["verdict"] in {"LEAKY", "PROVED_SAFE",
                                        "UNKNOWN"}
        leaky = [b for b in certificates.values()
                 if b["verdict"] == "LEAKY"]
        assert leaky and all("witness" in b and "replay" in b
                             for b in leaky)

    def test_report_v4_embeds_certificates(self):
        program = build_corpus_variant("v1", "unsafe")
        report = analyze_program(program, name="v1-unsafe")
        result = certify_program(program, secret_words=SECRETS,
                                 replay=False, name="v1-unsafe")
        document = report.to_dict(
            certificates=finding_certificates(result, report))
        assert document["schema_version"] == 5
        assert all("certificate" in entry
                   for entry in document["findings"])
        for entry in document["findings"]:
            summary = entry["certificate"]["summary"]
            assert set(summary) == {"merged_paths", "summarized_loops",
                                    "accelerated_loops",
                                    "summary_cache_hit"}

    def test_report_from_dict_accepts_v2_documents(self):
        report = analyze_program(build_corpus_variant("v1", "unsafe"),
                                 name="v1-unsafe")
        document = report.to_dict()
        document["schema_version"] = 2
        for entry in document["findings"]:
            entry.pop("certificate", None)
        rebuilt = report_from_dict(json.loads(json.dumps(document)))
        assert rebuilt.name == report.name
        assert [f.sink_pc for f in rebuilt.findings] == [
            f.sink_pc for f in report.findings]

    def test_report_from_dict_rejects_future_schema(self):
        with pytest.raises(ValueError):
            report_from_dict({"schema_version": 99, "findings": []})


# ---------------------------------------------------------------------------
# Fence synthesis integration
# ---------------------------------------------------------------------------

class TestSynthesisCertification:
    @pytest.mark.parametrize("kind", GADGET_KINDS)
    def test_synthesized_repair_certifies(self, kind):
        synthesis = synthesize_fences(
            build_corpus_variant(kind, "unsafe"),
            secret_words=SECRETS, certify=True, name=kind)
        assert synthesis.certified
        assert synthesis.certificate is not None
        assert synthesis.certificate.verdict is Verdict.PROVED_SAFE
        assert synthesis.original_certificate is not None
        assert (synthesis.original_certificate.verdict
                is Verdict.LEAKY)

    def test_certificate_in_synthesis_dict(self):
        synthesis = synthesize_fences(
            build_corpus_variant("v1", "unsafe"),
            secret_words=SECRETS, certify=True, name="v1")
        document = json.loads(json.dumps(synthesis.to_dict()))
        assert document["certificate"]["verdict"] == "PROVED_SAFE"
        assert document["original_certificate"]["verdict"] == "LEAKY"

    def test_without_certify_no_certificate(self):
        synthesis = synthesize_fences(
            build_corpus_variant("v1", "unsafe"),
            secret_words=SECRETS, name="v1")
        assert synthesis.certificate is None
        assert not synthesis.certified


def test_precision_study_corpus_only():
    from repro.experiments.precision_study import run_precision_study

    study = run_precision_study(benchmarks=[])
    corpus_rows = [row for row in study.rows if row.group == "corpus"]
    assert len(corpus_rows) == len(GADGET_KINDS) * len(CORPUS_VARIANTS)
    assert all(row.correct for row in corpus_rows)
    assert study.symx_strictly_stronger
    assert "precision study" in study.render()
    document = json.loads(json.dumps(study.to_dict()))
    assert document["symx_strictly_stronger"] is True


def test_certify_result_is_json_clean():
    result = certify("v2", "unsafe")
    document = json.loads(json.dumps(result.to_dict()))
    assert document["verdict"] == "LEAKY"
    assert document["leaks"][0]["replay"]["reproduced"] is True
    assert isinstance(document["solver"], dict)
    assert isinstance(result, CertifyResult)
