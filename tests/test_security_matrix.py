"""Tests for the security dependence matrix (Section V.B semantics)."""
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.security_matrix import SecurityDependenceMatrix
from repro.errors import ConfigError


class TestRowInstallation:
    def test_row_or_reflects_producers(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 0b0000_0110)
        assert matrix.has_dependence(3)
        assert matrix.dependence_count(3) == 2

    def test_empty_row_has_no_dependence(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 0)
        assert not matrix.has_dependence(3)

    def test_self_bit_is_masked(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 1 << 3)
        assert not matrix.has_dependence(3)

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigError):
            SecurityDependenceMatrix(0)


class TestClearance:
    def test_scheduled_clear_applies_at_cycle_boundary(self):
        """The Update Vector Register semantics: a producer's column
        stays visible until apply_clears - the same-cycle consumer is
        still tagged suspect."""
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 0b10)     # depends on slot 1
        matrix.schedule_clear(1)
        assert matrix.has_dependence(3)     # same cycle: still set
        matrix.apply_clears()
        assert not matrix.has_dependence(3)

    def test_clear_affects_whole_column(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 0b10)
        matrix.set_row(5, 0b10)
        matrix.schedule_clear(1)
        matrix.apply_clears()
        assert not matrix.has_dependence(3)
        assert not matrix.has_dependence(5)

    def test_clear_leaves_other_columns(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 0b110)
        matrix.schedule_clear(1)
        matrix.apply_clears()
        assert matrix.has_dependence(3)     # still depends on slot 2

    def test_clear_entry_removes_row_and_column(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 0b10)
        matrix.set_row(1, 0b1000)
        matrix.clear_entry(1)
        assert not matrix.has_dependence(1)
        assert not matrix.has_dependence(3)

    def test_clear_entry_cancels_pending_update(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 0b10)
        matrix.schedule_clear(1)
        matrix.clear_entry(1)
        matrix.apply_clears()   # must not blow up / double clear
        assert matrix.is_empty() or not matrix.has_dependence(3)

    def test_reset(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(2, 0b1)
        matrix.schedule_clear(0)
        matrix.reset()
        assert matrix.is_empty()


class TestColumnMask:
    def test_column_mask(self):
        matrix = SecurityDependenceMatrix(8)
        matrix.set_row(3, 0b10)
        matrix.set_row(6, 0b10)
        assert matrix.column_mask(1) == (1 << 3) | (1 << 6)


class TestMatrixProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, (1 << 16) - 1)),
        min_size=1, max_size=40,
    ))
    def test_clearing_every_column_empties_all_rows(self, installs):
        matrix = SecurityDependenceMatrix(16)
        for pos, mask in installs:
            matrix.set_row(pos, mask)
        for pos in range(16):
            matrix.schedule_clear(pos)
        matrix.apply_clears()
        for pos in range(16):
            assert not matrix.has_dependence(pos)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 15), st.integers(0, (1 << 16) - 1),
           st.integers(0, 15))
    def test_dependence_matches_column_membership(self, row, mask, col):
        matrix = SecurityDependenceMatrix(16)
        matrix.set_row(row, mask)
        expected = bool(mask & ~(1 << row) & (1 << col))
        assert bool(matrix.column_mask(col) & (1 << row)) == expected
