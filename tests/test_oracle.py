"""Tests for the in-order functional oracle."""
import pytest

from repro.errors import ExecutionError
from repro.isa import ProgramBuilder, run_oracle


def test_arithmetic_chain():
    b = ProgramBuilder()
    b.li(1, 6).li(2, 7).mul(3, 1, 2).addi(3, 3, -2).halt()
    result = run_oracle(b.build())
    assert result.reg(3) == 40
    assert result.halted


def test_r0_is_hardwired_zero():
    b = ProgramBuilder()
    b.li(0, 99).add(1, 0, 0).halt()
    result = run_oracle(b.build())
    assert result.reg(0) == 0
    assert result.reg(1) == 0


def test_memory_roundtrip():
    b = ProgramBuilder()
    b.li(1, 0x4000).li(2, 1234).store(2, 1, 8).load(3, 1, 8).halt()
    result = run_oracle(b.build())
    assert result.reg(3) == 1234
    assert result.mem(0x4008) == 1234


def test_load_unmapped_memory_is_zero():
    b = ProgramBuilder()
    b.li(1, 0x8000).load(2, 1).halt()
    assert run_oracle(b.build()).reg(2) == 0


def test_load_aligns_address_down():
    b = ProgramBuilder()
    b.data_word(0x4000, 77)
    b.li(1, 0x4003).load(2, 1).halt()
    assert run_oracle(b.build()).reg(2) == 77


def test_conditional_branch_taken_and_not():
    b = ProgramBuilder()
    b.li(1, 1).li(2, 2)
    b.blt(1, 2, "skip")      # taken
    b.li(3, 111)
    b.label("skip")
    b.beq(1, 2, "skip2")     # not taken
    b.li(4, 222)
    b.label("skip2")
    b.halt()
    result = run_oracle(b.build())
    assert result.reg(3) == 0
    assert result.reg(4) == 222


def test_jmp_and_jmpi():
    b = ProgramBuilder()
    b.li_label(1, "there")
    b.jmpi(1)
    b.li(2, 111)      # skipped
    b.label("there")
    b.jmp("end")
    b.li(3, 222)      # skipped
    b.label("end")
    b.halt()
    result = run_oracle(b.build())
    assert result.reg(2) == 0 and result.reg(3) == 0


def test_rdcycle_counts_retired():
    b = ProgramBuilder()
    b.nop().nop().rdcycle(1).halt()
    assert run_oracle(b.build()).reg(1) == 2


def test_loop_with_counter():
    b = ProgramBuilder()
    b.li(1, 10).li(2, 0)
    b.label("loop")
    b.add(2, 2, 1).addi(1, 1, -1).bne(1, 0, "loop")
    b.halt()
    assert run_oracle(b.build()).reg(2) == 55


def test_max_instructions_stops_infinite_loop():
    b = ProgramBuilder()
    b.label("spin").jmp("spin")
    result = run_oracle(b.build(), max_instructions=100)
    assert not result.halted
    assert result.retired == 100


def test_unmapped_control_flow_raises():
    b = ProgramBuilder()
    b.jmp(0x900000)
    with pytest.raises(ExecutionError):
        run_oracle(b.build())


def test_initial_registers():
    b = ProgramBuilder()
    b.add(3, 1, 2).halt()
    result = run_oracle(b.build(), initial_registers={1: 30, 2: 12})
    assert result.reg(3) == 42


def test_trace_records_loads_and_stores():
    b = ProgramBuilder()
    b.li(1, 0x4000).li(2, 5).store(2, 1).load(3, 1).halt()
    result = run_oracle(b.build(), trace=True)
    assert result.store_trace == [(b.build().address_of(2), 0x4000, 5)]
    assert result.load_trace[0][1:] == (0x4000, 5)


def test_fence_and_clflush_have_no_architectural_effect():
    b = ProgramBuilder()
    b.li(1, 0x4000).fence().clflush(1).li(2, 3).halt()
    result = run_oracle(b.build())
    assert result.reg(2) == 3
