"""The tiered degradation engine: every job gets an answer, tagged
with the tier that produced it and whether it is degraded."""
import threading

import pytest

from repro.serve.engine import AnalysisEngine, strip_timing
from repro.serve.protocol import Submission


@pytest.fixture(scope="module")
def engine():
    return AnalysisEngine()


def submit(body):
    return Submission.from_request(body)


class TestAnalyzeLadder:
    def test_taint_tier(self, engine):
        result = engine.execute(
            submit({"spec": "corpus:v1", "tier": "taint"}))
        assert result["status"] == "ok"
        assert result["tier_answered"] == "taint"
        assert result["degraded"] is False
        assert result["taint"]["findings"]

    def test_valueset_tier_includes_taint(self, engine):
        result = engine.execute(
            submit({"spec": "corpus:v1", "tier": "valueset"}))
        assert result["tier_answered"] == "valueset"
        assert "taint" in result and "valueset" in result

    def test_symx_tier_full_budget(self, engine):
        result = engine.execute(
            submit({"spec": "corpus:v1", "tier": "symx"}))
        assert result["tier_answered"] == "symx"
        assert result["degraded"] is False
        assert result["symx"]["verdict"] == "LEAKY"

    def test_fenced_variant_proves_safe(self, engine):
        result = engine.execute(
            submit({"spec": "corpus:v1:fenced", "tier": "symx"}))
        assert result["symx"]["verdict"] == "PROVED_SAFE"


class TestDegradation:
    def test_exhausted_budget_degrades_to_valueset(self, engine):
        result = engine.execute(submit({
            "spec": "corpus:v1", "tier": "symx",
            "budgets": {"wall_clock": 0.0005}}))
        assert result["status"] == "ok"
        assert result["degraded"] is True
        assert result["tier_answered"] == "valueset"
        assert result["symx"]["verdict"] == "UNKNOWN"
        assert result["symx"]["truncated"] is True
        # Structured provenance: what degraded, from where, and why.
        warning = result["warnings"][0]
        assert warning["kind"] == "degraded"
        assert warning["from_tier"] == "symx"
        assert warning["to_tier"] == "valueset"
        assert "wall_clock" in warning["cause"]
        # The degraded answer still carries the cheaper tiers.
        assert "valueset" in result and "taint" in result

    def test_cancelled_job_reports_cancelled(self, engine):
        cancel = threading.Event()
        cancel.set()
        result = engine.execute(
            submit({"spec": "corpus:v1", "tier": "symx"}), cancel)
        assert result["status"] == "ok"
        assert result["degraded"] is True
        assert result["cancelled"] is True
        assert result["symx"]["verdict"] == "UNKNOWN"

    def test_generous_budget_does_not_degrade(self, engine):
        result = engine.execute(submit({
            "spec": "corpus:v1", "tier": "symx",
            "budgets": {"wall_clock": 120.0}}))
        assert result["degraded"] is False
        assert result["tier_answered"] == "symx"


class TestSimulate:
    def test_clean_run(self, engine):
        result = engine.execute(
            submit({"spec": "corpus:v1", "kind": "simulate",
                    "mode": "cache_hit_tpbuf"}))
        assert result["status"] == "ok"
        assert result["degraded"] is False
        assert result["report"]["termination"] == "halt"

    def test_cycle_budget_tags_degraded(self, engine):
        result = engine.execute(
            submit({"asm": "loop:\naddi r1, r1, 1\njmp loop",
                    "kind": "simulate",
                    "budgets": {"max_cycles": 2000,
                                "watchdog_cycles": 100000}}))
        assert result["status"] == "ok"
        assert result["degraded"] is True
        assert result["report"]["termination"] == "cycle_budget"
        assert result["warnings"][0]["kind"] == "cycle_budget"

    def test_poisoned_deadlock_is_a_degraded_result(self, engine):
        result = engine.execute(
            submit({"spec": "corpus:v1", "kind": "simulate",
                    "fault": {"fill_delay_rate": 1.0,
                              "fill_delay_max": 1_000_000_000},
                    "budgets": {"watchdog_cycles": 2000}}))
        assert result["status"] == "ok"
        assert result["degraded"] is True
        assert result["warnings"][0]["kind"] == "deadlock"
        assert result["report"]["termination"] == "deadlock"

    def test_cancelled_simulation(self, engine):
        cancel = threading.Event()
        cancel.set()
        result = engine.execute(
            submit({"asm": "loop:\naddi r1, r1, 1\njmp loop",
                    "kind": "simulate",
                    "budgets": {"max_cycles": 50_000_000,
                                "watchdog_cycles": 40_000_000}}),
            cancel)
        assert result["status"] == "ok"
        assert result["cancelled"] is True
        assert result["report"]["termination"] == "cancelled"


class TestIsolation:
    def test_engine_failure_becomes_error_result(self, engine,
                                                 monkeypatch):
        import repro.serve.engine as engine_module

        def boom(*_args, **_kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(engine_module, "analyze_program", boom)
        result = engine.execute(
            submit({"asm": "halt", "tier": "taint"}))
        assert result["status"] == "error"
        assert result["error"]["type"] == "RuntimeError"
        assert "traceback" in result["error"]

    def test_expected_failures_have_no_traceback(self, engine,
                                                 monkeypatch):
        import repro.serve.engine as engine_module
        from repro.errors import SimulationError

        def boom(*_args, **_kwargs):
            raise SimulationError("known failure mode")

        monkeypatch.setattr(engine_module, "analyze_program", boom)
        result = engine.execute(
            submit({"asm": "halt", "tier": "taint"}))
        assert result["status"] == "error"
        assert "traceback" not in result["error"]


class TestStripTiming:
    def test_strips_wall_clock_facts(self, engine):
        result = engine.execute(
            submit({"spec": "corpus:v1", "tier": "taint"}))
        assert "timing" in result
        stripped = strip_timing(result)
        assert "timing" not in stripped

    def test_identical_jobs_identical_modulo_timing(self, engine):
        body = {"spec": "corpus:v2", "tier": "symx"}
        first = engine.execute(submit(body))
        second = engine.execute(submit(body))
        assert strip_timing(first) == strip_timing(second)


class TestRegionCache:
    def test_repeat_certification_hits_summary_cache(self):
        fresh = AnalysisEngine()
        body = {"spec": "corpus:v1", "tier": "symx"}
        first = fresh.execute(submit(body))
        second = fresh.execute(submit(body))
        assert first["symx"]["summary_cache_hit"] is False
        assert second["symx"]["summary_cache_hit"] is True
        # The hit changes nothing observable but the flag itself.
        assert strip_timing(first) == strip_timing(second)
        assert fresh.summary_cache.stats.hits >= 1
