"""Tests of the Conditional Speculation mechanisms on hand-crafted
programs: suspect tagging, Baseline issue-blocking, the Cache-hit
filter and the TPBuf filter, plus the filter-decision logic."""
import pytest

from conftest import run_to_halt
from repro import Processor, SecurityConfig, tiny_config
from repro.core.filters import HazardFilters, MissVerdict
from repro.core.policy import ProtectionMode
from repro.core.tpbuf import TPBuf
from repro.isa import ProgramBuilder
from repro.memory.replacement import SpeculativeLRUPolicy


def suspect_scenario_program():
    """A delinquent branch followed by a load that misses: the canonical
    suspect + blocked situation."""
    b = ProgramBuilder()
    b.data_word(0x4000, 0)
    b.li(1, 0x4000).clflush(1).fence()
    b.load(2, 1)                  # slow bound
    b.bne(2, 0, "skip")           # not taken; cold prediction correct
    b.li(3, 0x40000)
    b.load(4, 3)                  # dispatched while branch unresolved
    b.label("skip")
    b.halt()
    return b.build()


class TestSuspectTagging:
    def test_origin_never_tags(self):
        cpu, report = run_to_halt(suspect_scenario_program(),
                                  machine=tiny_config(),
                                  security=SecurityConfig.origin())
        assert report.suspect_issues == 0

    @pytest.mark.parametrize("security", [
        SecurityConfig.cache_hit(), SecurityConfig.cache_hit_tpbuf(),
    ], ids=["cache_hit", "tpbuf"])
    def test_filter_modes_tag_suspects(self, security):
        cpu, report = run_to_halt(suspect_scenario_program(),
                                  machine=tiny_config(), security=security)
        assert report.suspect_issues > 0

    def test_baseline_blocks_at_issue(self):
        cpu, report = run_to_halt(suspect_scenario_program(),
                                  machine=tiny_config(),
                                  security=SecurityConfig.baseline())
        assert report.block_events > 0
        assert report.committed_mem_blocked > 0

    def test_blocking_delays_execution(self):
        """Baseline must be slower than Origin on the blocked pattern."""
        _, origin = run_to_halt(suspect_scenario_program(),
                                machine=tiny_config(),
                                security=SecurityConfig.origin())
        _, baseline = run_to_halt(suspect_scenario_program(),
                                  machine=tiny_config(),
                                  security=SecurityConfig.baseline())
        assert baseline.cycles > origin.cycles


class TestCacheHitFilter:
    def test_suspect_miss_is_discarded(self):
        """Under the Cache-hit filter, the suspect missing load must
        not refill the cache while blocked."""
        program = suspect_scenario_program()
        cpu = Processor(program, machine=tiny_config(),
                        security=SecurityConfig.cache_hit())
        target = cpu.vaddr_to_paddr(0x40000)
        # Step until the load was blocked at least once.
        while cpu.report.block_events == 0 and not cpu.halted \
                and cpu.cycle < 100_000:
            cpu.step()
        assert cpu.report.block_events > 0
        assert not cpu.hierarchy.probe_data(target)
        report = cpu.run(max_cycles=200_000)
        assert report.halted
        # After the dependence cleared, the load completed normally.
        assert cpu.hierarchy.probe_data(target)

    def test_suspect_hit_proceeds(self):
        """A suspect load that hits L1D is never blocked."""
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.data_word(0x5000, 5)
        b.li(3, 0x5000).load(4, 3)          # warm target
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)
        b.beq(2, 0, "go")
        b.nop()
        b.label("go")
        b.load(5, 3)                        # suspect but hits
        b.halt()
        cpu, report = run_to_halt(b.build(), machine=tiny_config(),
                                  security=SecurityConfig.cache_hit())
        assert report.suspect_l1_hits > 0
        assert report.block_events == 0


class TestTPBufFilter:
    def _two_stream_program(self, same_page):
        """An older suspect completed load plus a younger suspect miss;
        whether pages match decides the verdict."""
        first = 0x5000
        second = 0x5100 if same_page else 0x9000
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        b.li(3, first).load(4, 3)           # warm first line
        b.li(1, 0x4000).clflush(1).fence()
        b.load(2, 1)                        # delinquent bound
        b.beq(2, 0, "go")
        b.nop()
        b.label("go")
        b.load(5, 3)                        # suspect, hits, completes (W)
        b.li(6, second)
        b.load(7, 6)                        # suspect miss: TPBuf decides
        b.halt()
        return b.build()

    def test_cross_page_suspect_miss_is_blocked(self):
        cpu, report = run_to_halt(self._two_stream_program(same_page=False),
                                  machine=tiny_config(),
                                  security=SecurityConfig.cache_hit_tpbuf())
        assert report.tpbuf_queries > 0
        assert report.block_events > 0

    def test_same_page_suspect_miss_proceeds(self):
        cpu, report = run_to_halt(self._two_stream_program(same_page=True),
                                  machine=tiny_config(),
                                  security=SecurityConfig.cache_hit_tpbuf())
        assert report.tpbuf_queries > 0
        assert report.block_events == 0

    def test_tpbuf_blocks_no_more_than_cache_hit(self):
        """TPBuf only *relaxes* the Cache-hit filter."""
        program = suspect_scenario_program()
        _, cachehit = run_to_halt(program, machine=tiny_config(),
                                  security=SecurityConfig.cache_hit())
        _, tpbuf = run_to_halt(program, machine=tiny_config(),
                               security=SecurityConfig.cache_hit_tpbuf())
        assert tpbuf.block_events <= cachehit.block_events


class TestFilterDecisionLogic:
    def test_hit_always_proceeds(self):
        filters = HazardFilters(SecurityConfig.cache_hit())
        decision = filters.judge_suspect_load(True, 0, 0x100)
        assert decision.verdict is MissVerdict.PROCEED

    def test_cache_hit_mode_blocks_misses(self):
        filters = HazardFilters(SecurityConfig.cache_hit())
        decision = filters.judge_suspect_load(False, 0, 0x100)
        assert decision.verdict is MissVerdict.BLOCK

    def test_tpbuf_mode_consults_buffer(self):
        tpbuf = TPBuf(4)
        tpbuf.allocate(0)
        tpbuf.set_ppn(0, 0x100)
        tpbuf.set_suspect(0, True)
        tpbuf.set_writeback(0)
        tpbuf.allocate(1)
        filters = HazardFilters(SecurityConfig.cache_hit_tpbuf(), tpbuf)
        assert filters.judge_suspect_load(False, 1, 0x100).verdict \
            is MissVerdict.PROCEED
        assert filters.judge_suspect_load(False, 1, 0x200).verdict \
            is MissVerdict.BLOCK

    def test_tpbuf_mode_requires_buffer(self):
        from repro.core.defense import DefenseConfigError
        with pytest.raises(DefenseConfigError):
            HazardFilters(SecurityConfig.cache_hit_tpbuf(), None)

    def test_safe_fraction(self):
        filters = HazardFilters(SecurityConfig.cache_hit())
        filters.judge_suspect_load(True, 0, 0)
        filters.judge_suspect_load(False, 0, 0)
        assert filters.safe_fraction() == 0.5


class TestLRUPolicies:
    def _probe_recency_program(self):
        """Warm two lines of one set, then speculatively re-touch the
        LRU one under an unresolved branch; the policy decides whether
        the touch reorders recency."""
        b = ProgramBuilder()
        b.data_word(0x4000, 0)
        machine = tiny_config()
        set_span = machine.memory.l1d.num_sets * 64
        a, b_addr = 0x10000, 0x10000 + set_span
        b.li(1, a).load(2, 1)           # A
        b.li(3, b_addr).load(4, 3)      # B (A is now LRU)
        b.li(5, 0x4000).clflush(5).fence()
        b.load(6, 5)                    # delinquent
        b.beq(6, 0, "go")
        b.nop()
        b.label("go")
        b.load(7, 1)                    # suspect hit on A
        b.halt()
        return b.build(), machine, a, b_addr, set_span

    def test_normal_policy_updates_recency(self):
        program, machine, a, b_addr, set_span = self._probe_recency_program()
        cpu, _ = run_to_halt(program, machine=machine,
                             security=SecurityConfig(
                                 mode=ProtectionMode.CACHE_HIT_TPBUF,
                                 lru_policy=SpeculativeLRUPolicy.NORMAL))
        # Fill the set with two more lines: with A touched (MRU), B is
        # the victim.
        pa = cpu.vaddr_to_paddr(a)
        pb = cpu.vaddr_to_paddr(b_addr)
        cpu.hierarchy.l1d.fill(pa + 7 * set_span * 16)
        assert cpu.hierarchy.l1d.contains(pa) or \
            not cpu.hierarchy.l1d.contains(pb)

    def test_no_update_policy_leaves_recency(self):
        """Under no_update the speculative hit must NOT refresh A, so A
        (still LRU) is the next victim - no leak through LRU state."""
        program, machine, a, b_addr, set_span = self._probe_recency_program()
        cpu, _ = run_to_halt(program, machine=machine,
                             security=SecurityConfig(
                                 mode=ProtectionMode.CACHE_HIT_TPBUF,
                                 lru_policy=SpeculativeLRUPolicy.NO_UPDATE))
        pa = cpu.vaddr_to_paddr(a)
        set_index = cpu.hierarchy.l1d.set_index(pa)
        lru_way = cpu.hierarchy.l1d._lru[set_index].lru_way()
        lines = cpu.hierarchy.l1d.lines_in_set(set_index)
        assert lines[lru_way] == pa

    def test_delayed_policy_touches_at_commit(self):
        """Delayed update applies the touch when the load commits, so
        after the (committed) program A must be MRU again."""
        program, machine, a, b_addr, set_span = self._probe_recency_program()
        cpu, _ = run_to_halt(program, machine=machine,
                             security=SecurityConfig(
                                 mode=ProtectionMode.CACHE_HIT_TPBUF,
                                 lru_policy=SpeculativeLRUPolicy.DELAYED))
        pa = cpu.vaddr_to_paddr(a)
        set_index = cpu.hierarchy.l1d.set_index(pa)
        lru_way = cpu.hierarchy.l1d._lru[set_index].lru_way()
        lines = cpu.hierarchy.l1d.lines_in_set(set_index)
        assert lines[lru_way] != pa
