"""Parallel sweep execution: determinism, resume, the single-writer
lock, and the RunOptions parameter object."""
import os

import pytest

from repro.core.policy import ProtectionMode
from repro.errors import ConfigError, SimulationError
from repro.experiments.runner import (
    SweepEngine,
    SweepTask,
    execute_sweep_task,
    run_benchmark,
)
from repro.params import DEFAULT_MAX_CYCLES, RunOptions
from repro.perf.parallel import ParallelSweepExecutor
from repro.robustness.checkpoint import (
    CheckpointStore,
    CheckpointWriterConflict,
)
from repro.robustness.faults import FaultPlan

BENCHMARKS = ["bzip2", "mcf"]
MODES = [ProtectionMode.ORIGIN, ProtectionMode.CACHE_HIT_TPBUF]
OPTIONS = RunOptions(max_cycles=60_000)
SCALE = 0.05


def _signature(result, include_duration=False):
    """Order-insensitive view of everything a sweep records (except
    wall-clock durations, the only legitimately nondeterministic
    field)."""
    rows = []
    for row in result.rows:
        record = row.to_record()
        del record["duration_s"]
        rows.append(record)
    return sorted(rows, key=lambda r: (r["benchmark"], r["mode"]))


def _engine(workers, fault_seed=None, **kwargs):
    fault_plan = FaultPlan.moderate(seed=fault_seed) \
        if fault_seed is not None else None
    return SweepEngine(
        benchmarks=BENCHMARKS, modes=MODES, scale=SCALE,
        options=OPTIONS.merged(fault_plan=fault_plan),
        workers=workers, **kwargs,
    )


class TestSerialParallelDeterminism:
    def test_rows_identical_without_faults(self):
        serial = _engine(workers=1).run()
        parallel = _engine(workers=2).run()
        assert _signature(serial) == _signature(parallel)
        assert len(serial.rows) == len(BENCHMARKS) * len(MODES)

    @pytest.mark.parametrize("seed", [7, 1234])
    def test_rows_identical_under_fault_injection(self, seed):
        serial = _engine(workers=1, fault_seed=seed).run()
        parallel = _engine(workers=2, fault_seed=seed).run()
        assert _signature(serial) == _signature(parallel)

    def test_run_tasks_preserves_task_order(self):
        tasks = [
            SweepTask(benchmark=name, mode=mode, scale=SCALE,
                      options=OPTIONS)
            for name in BENCHMARKS for mode in MODES
        ]
        rows = ParallelSweepExecutor(workers=2).run_tasks(tasks)
        assert [(r.benchmark, r.mode) for r in rows] == \
            [(t.benchmark, t.mode) for t in tasks]


class TestParallelCheckpointResume:
    def test_resume_skips_recorded_pairs(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        first = SweepEngine(benchmarks=["bzip2"], modes=MODES,
                            scale=SCALE, options=OPTIONS,
                            checkpoint=path).run()
        assert len(first.rows) == len(MODES)
        resumed = _engine(workers=2, checkpoint=path, resume=True).run()
        assert len(resumed.rows) == len(BENCHMARKS) * len(MODES)
        by_bench = {row.benchmark: row.resumed for row in resumed.rows}
        assert by_bench["bzip2"] is True
        assert by_bench["mcf"] is False
        # The checkpoint now covers everything: a second resume
        # re-runs nothing.
        again = _engine(workers=2, checkpoint=path, resume=True).run()
        assert all(row.resumed for row in again.rows)
        assert _signature(resumed) == _signature(again)

    def test_parallel_checkpoint_matches_serial(self, tmp_path):
        serial_path = str(tmp_path / "serial.jsonl")
        parallel_path = str(tmp_path / "parallel.jsonl")
        serial = _engine(workers=1, checkpoint=serial_path).run()
        parallel = _engine(workers=2, checkpoint=parallel_path).run()
        assert _signature(serial) == _signature(parallel)
        _, serial_rows = CheckpointStore(serial_path).load()
        _, parallel_rows = CheckpointStore(parallel_path).load()
        assert set(serial_rows) == set(parallel_rows)
        for key in serial_rows:
            a, b = dict(serial_rows[key]), dict(parallel_rows[key])
            a.pop("duration_s"), b.pop("duration_s")
            assert a == b


class TestSingleWriterInvariant:
    def test_second_writer_conflicts(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        holder = CheckpointStore(path)
        holder.acquire_writer()
        try:
            with pytest.raises(CheckpointWriterConflict):
                CheckpointStore(path).append("k", {"x": 1})
            with pytest.raises(CheckpointWriterConflict):
                _engine(workers=1, checkpoint=path).run()
        finally:
            holder.release_writer()
        # Released: a new writer proceeds.
        result = _engine(workers=1, checkpoint=path).run()
        assert len(result.rows) == len(BENCHMARKS) * len(MODES)

    def test_engine_releases_lock_after_run(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        _engine(workers=1, checkpoint=path).run()
        with CheckpointStore(path) as store:
            assert store.exists()

    def test_context_manager_releases(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with CheckpointStore(path) as store:
            store.reset({})
        CheckpointStore(path).acquire_writer()


class TestSpawnSafety:
    def test_unpicklable_run_fn_fails_with_clear_error(self):
        task = SweepTask(benchmark="bzip2", mode=ProtectionMode.ORIGIN,
                         scale=SCALE, options=OPTIONS,
                         run_fn=lambda *a, **k: None)
        executor = ParallelSweepExecutor(workers=2)
        with pytest.raises(SimulationError, match="spawn-safe"):
            list(executor.map_tasks([(0, task)]))

    def test_executor_validation(self):
        with pytest.raises(ConfigError):
            ParallelSweepExecutor(workers=0)
        with pytest.raises(ConfigError):
            ParallelSweepExecutor(workers=4, max_in_flight=2)

    def test_worker_failure_degrades_to_row(self):
        task = SweepTask(benchmark="nope", mode=ProtectionMode.ORIGIN,
                         options=OPTIONS, retries=0)
        rows = ParallelSweepExecutor(workers=2).run_tasks([task])
        assert len(rows) == 1 and not rows[0].ok
        serial_row = execute_sweep_task(task)
        assert rows[0].error_type == serial_row.error_type


class TestRunOptions:
    def test_defaults(self):
        options = RunOptions()
        assert options.max_cycles is None
        assert options.effective_max_cycles == DEFAULT_MAX_CYCLES
        assert options.wall_clock_budget is None
        assert options.fault_plan is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            RunOptions(max_cycles=0)
        with pytest.raises(ConfigError):
            RunOptions(wall_clock_budget=-1.0)

    def test_coerce_legacy_keywords_win(self):
        base = RunOptions(max_cycles=10_000, wall_clock_budget=5.0)
        merged = RunOptions.coerce(base, max_cycles=99)
        assert merged.max_cycles == 99
        assert merged.wall_clock_budget == 5.0
        assert RunOptions.coerce(None).max_cycles is None

    def test_run_benchmark_options_equals_legacy(self):
        legacy = run_benchmark("bzip2", scale=SCALE, max_cycles=60_000)
        bundled = run_benchmark("bzip2", scale=SCALE,
                                options=RunOptions(max_cycles=60_000))
        assert legacy.cycles == bundled.cycles
        assert legacy.committed == bundled.committed

    def test_engine_legacy_views(self):
        engine = SweepEngine(benchmarks=["bzip2"], max_cycles=12_345,
                             wall_clock_budget=9.0)
        assert engine.max_cycles == 12_345
        assert engine.wall_clock_budget == 9.0
        assert engine.options.fault_plan is None


class TestBudgetEnforcement:
    def test_max_cycles_still_enforced_via_options(self):
        report = run_benchmark("bzip2", scale=1.0,
                               options=RunOptions(max_cycles=50))
        assert report.termination == "cycle_budget"
        assert report.cycles == 50
