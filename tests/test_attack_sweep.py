"""Tests for the statistical attack sweep."""
import pytest

from repro import SecurityConfig
from repro.attacks import build_spectre_v1, sweep_attack
from repro.attacks.evaluation import SweepResult
from repro.attacks.harness import AttackResult


def _result(secret, recovered, leaked):
    return AttackResult(
        name="x", mode="origin", secret=secret, recovered=recovered,
        leaked=leaked, gap=0.0, timings=[], report=None,
    )


class TestSweepResultAccounting:
    def test_accuracy(self):
        sweep = SweepResult(name="x", mode="origin", results=[
            _result(1, 1, True), _result(2, 2, True), _result(3, 7, True),
        ])
        assert sweep.accuracy == pytest.approx(2 / 3)
        assert sweep.correct == 2
        assert sweep.false_leaks == 1

    def test_empty(self):
        sweep = SweepResult(name="x", mode="origin")
        assert sweep.accuracy == 0.0

    def test_render(self):
        sweep = SweepResult(name="a", mode="m",
                            results=[_result(1, 1, True)])
        assert "1/1" in sweep.render()


class TestSweepExecution:
    def test_origin_sweep_recovers_multiple_secrets(self):
        sweep = sweep_attack(
            lambda layout: build_spectre_v1(layout=layout),
            SecurityConfig.origin(), secrets=[2, 11],
        )
        assert sweep.trials == 2
        assert sweep.accuracy == 1.0

    def test_defended_sweep_recovers_nothing(self):
        sweep = sweep_attack(
            lambda layout: build_spectre_v1(layout=layout),
            SecurityConfig.cache_hit(), secrets=[2, 11],
        )
        assert sweep.accuracy == 0.0
        assert sweep.false_leaks == 0

    def test_same_page_sweep_layout(self):
        sweep = sweep_attack(
            lambda layout: build_spectre_v1(layout=layout),
            SecurityConfig.origin(), secrets=[3], same_page=False,
        )
        assert sweep.results[0].secret == 3
