"""Coverage for small remaining surfaces: stats helpers, report
safe-fraction, and the remaining CLI subcommands."""
import pytest

from repro.cli import main
from repro.core.policy import ProtectionMode
from repro.pipeline.report import SimReport
from repro.stats import summarize


class TestStatsSummarize:
    def test_summarize_formats_pairs(self):
        text = summarize({"ipc": 1.234, "hits": 10})
        assert "ipc=1.234" in text
        assert "hits=10" in text


class TestSafeFraction:
    def test_all_hits_are_safe(self):
        report = SimReport(name="t", mode=ProtectionMode.CACHE_HIT,
                           suspect_accesses=10, suspect_l1_hits=10)
        assert report.safe_fraction == 1.0

    def test_mixed(self):
        report = SimReport(name="t",
                           mode=ProtectionMode.CACHE_HIT_TPBUF,
                           suspect_accesses=10, suspect_l1_hits=5,
                           tpbuf_queries=5, tpbuf_safe=3)
        assert report.safe_fraction == pytest.approx(0.8)


class TestCLIExperimentCommands:
    def test_table6_subset(self, capsys):
        code = main(["table6", "--scale", "0.05", "hmmer"])
        out = capsys.readouterr().out
        assert code == 0
        assert "a57-like" in out

    def test_lru_subset(self, capsys):
        code = main(["lru", "--scale", "0.05", "hmmer"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no_update" in out

    def test_run_with_trace_flag(self, tmp_path, capsys):
        source = tmp_path / "p.s"
        source.write_text("li r1, 1\nhalt\n")
        code = main(["run", str(source), "--machine", "tiny", "--trace"])
        out = capsys.readouterr().out
        assert code == 0
        assert "seq" in out and "halt" in out
