"""Unit tests for rename, ROB, issue queue, LSQ, store buffer and the
event queue."""
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tpbuf import TPBuf
from repro.errors import SimulationError
from repro.isa.instructions import Instruction, Opcode
from repro.memory.hierarchy import MemoryHierarchy
from repro.params import tiny_config
from repro.pipeline.dyninst import DynInst
from repro.pipeline.events import EventQueue
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.lsq import LoadStoreQueue
from repro.pipeline.rename import RenameState
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.store_buffer import StoreBuffer


def dyninst(seq, op=Opcode.ADD, **kwargs):
    return DynInst(seq, 0x1000 + 4 * seq, Instruction(op, **kwargs))


class TestRename:
    def test_initial_identity_mapping(self):
        rename = RenameState(8, 24)
        assert [rename.lookup(i) for i in range(8)] == list(range(8))

    def test_allocate_and_write(self):
        rename = RenameState(8, 24)
        new, old = rename.allocate(3)
        assert old == 3 and new >= 8
        assert not rename.is_ready(new)
        rename.write(new, 42)
        assert rename.is_ready(new)
        assert rename.architectural_value(3) == 42

    def test_rollback_restores_mapping(self):
        rename = RenameState(8, 24)
        new, old = rename.allocate(3)
        rename.rollback(3, new, old)
        assert rename.lookup(3) == old

    def test_rollback_out_of_order_detected(self):
        rename = RenameState(8, 24)
        new1, old1 = rename.allocate(3)
        rename.allocate(3)
        with pytest.raises(SimulationError):
            rename.rollback(3, new1, old1)   # must roll back youngest first

    def test_exhaustion(self):
        rename = RenameState(8, 10)
        rename.allocate(1)
        rename.allocate(2)
        assert not rename.can_allocate()
        with pytest.raises(SimulationError):
            rename.allocate(3)

    def test_release_recycles(self):
        rename = RenameState(8, 9)
        new, old = rename.allocate(1)
        rename.release(old)    # commit frees the previous mapping
        assert rename.can_allocate()

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 7), min_size=1, max_size=10))
    def test_allocate_rollback_is_identity(self, regs):
        rename = RenameState(8, 40)
        baseline = rename.mapping_snapshot()
        history = [(reg, *rename.allocate(reg)) for reg in regs]
        for reg, new, old in reversed(history):
            rename.rollback(reg, new, old)
        assert rename.mapping_snapshot() == baseline
        rename.check_free_list_integrity()


class TestROB:
    def test_fifo_order(self):
        rob = ReorderBuffer(4)
        a, b = dyninst(1), dyninst(2)
        rob.append(a)
        rob.append(b)
        assert rob.head() is a
        assert rob.pop_head() is a
        assert rob.head() is b

    def test_full_and_empty(self):
        rob = ReorderBuffer(2)
        assert rob.empty
        rob.append(dyninst(1))
        rob.append(dyninst(2))
        assert rob.full

    def test_squash_younger_than_returns_youngest_first(self):
        rob = ReorderBuffer(8)
        insts = [dyninst(i) for i in range(1, 6)]
        for inst in insts:
            rob.append(inst)
        squashed = rob.squash_younger_than(2)
        assert [i.seq for i in squashed] == [5, 4, 3]
        assert len(rob) == 2

    def test_is_head(self):
        rob = ReorderBuffer(4)
        a = dyninst(1)
        rob.append(a)
        assert rob.is_head(a)
        assert not rob.is_head(dyninst(2))


class TestIssueQueue:
    def test_insert_assigns_slot(self):
        iq = IssueQueue(4)
        inst = dyninst(1, Opcode.LOAD, rd=1, rs1=2)
        pos = iq.insert(inst, 0)
        assert inst.iq_pos == pos
        assert iq.occupancy() == 1

    def test_producer_mask_tracks_unissued_mem_and_branches(self):
        iq = IssueQueue(8)
        load = dyninst(1, Opcode.LOAD, rd=1, rs1=2)
        branch = dyninst(2, Opcode.BNE, rs1=1, rs2=2)
        alu = dyninst(3, Opcode.ADD, rd=1, rs1=2, rs2=3)
        iq.insert(load, 0)
        iq.insert(branch, 0)
        iq.insert(alu, 0)
        mask = iq.producer_mask()
        assert mask & (1 << load.iq_pos)
        assert mask & (1 << branch.iq_pos)
        assert not mask & (1 << alu.iq_pos)

    def test_branch_only_mask(self):
        iq = IssueQueue(8)
        load = dyninst(1, Opcode.LOAD, rd=1, rs1=2)
        branch = dyninst(2, Opcode.BNE, rs1=1, rs2=2)
        iq.insert(load, 0)
        iq.insert(branch, 0)
        mask = iq.branch_producer_mask()
        assert not mask & (1 << load.iq_pos)
        assert mask & (1 << branch.iq_pos)

    def test_issued_producer_leaves_mask(self):
        iq = IssueQueue(8)
        branch = dyninst(1, Opcode.BNE, rs1=1, rs2=2)
        iq.insert(branch, 0)
        iq.mark_issued(branch)
        assert iq.producer_mask() == 0

    def test_memory_consumer_gets_row(self):
        iq = IssueQueue(8)
        branch = dyninst(1, Opcode.BNE, rs1=1, rs2=2)
        iq.insert(branch, 0)
        load = dyninst(2, Opcode.LOAD, rd=1, rs1=2)
        iq.insert(load, iq.producer_mask())
        assert iq.has_security_dependence(load)

    def test_non_memory_consumer_gets_empty_row(self):
        iq = IssueQueue(8)
        branch = dyninst(1, Opcode.BNE, rs1=1, rs2=2)
        iq.insert(branch, 0)
        alu = dyninst(2, Opcode.ADD, rd=1, rs1=2, rs2=3)
        iq.insert(alu, iq.producer_mask())
        assert not iq.has_security_dependence(alu)

    def test_dependence_clears_next_cycle_after_producer_issue(self):
        iq = IssueQueue(8)
        branch = dyninst(1, Opcode.BNE, rs1=1, rs2=2)
        iq.insert(branch, 0)
        load = dyninst(2, Opcode.LOAD, rd=1, rs1=2)
        iq.insert(load, iq.producer_mask())
        iq.mark_issued(branch)
        assert iq.has_security_dependence(load)   # same cycle: suspect
        iq.end_cycle()
        assert not iq.has_security_dependence(load)

    def test_load_keeps_slot_at_issue(self):
        iq = IssueQueue(8)
        load = dyninst(1, Opcode.LOAD, rd=1, rs1=2)
        iq.insert(load, 0)
        iq.mark_issued(load)
        assert load.iq_pos is not None
        iq.release(load)
        iq.end_cycle()
        assert iq.occupancy() == 0

    def test_slot_not_reusable_until_end_cycle(self):
        iq = IssueQueue(1)
        branch = dyninst(1, Opcode.BNE, rs1=1, rs2=2)
        iq.insert(branch, 0)
        iq.mark_issued(branch)   # releases (non-load) ...
        assert iq.full           # ... but the slot recycles at end_cycle
        iq.end_cycle()
        assert not iq.full


class TestLSQ:
    def _lsq(self, tpbuf=None):
        return LoadStoreQueue(4, 4, tpbuf=tpbuf)

    def _load(self, seq, vaddr=None):
        inst = dyninst(seq, Opcode.LOAD, rd=1, rs1=2)
        if vaddr is not None:
            inst.vaddr = vaddr
            inst.addr_ready = True
        return inst

    def _store(self, seq, vaddr=None, data_ready=False):
        inst = dyninst(seq, Opcode.STORE, rs1=1, rs2=2)
        if vaddr is not None:
            inst.vaddr = vaddr
            inst.addr_ready = True
        inst.store_data_ready = data_ready
        inst.value = 99
        return inst

    def test_allocation_capacity(self):
        lsq = self._lsq()
        for seq in range(4):
            lsq.allocate_load(self._load(seq))
        assert not lsq.can_allocate_load()
        assert lsq.can_allocate_store()

    def test_release_recycles_slot(self):
        lsq = self._lsq()
        load = self._load(1)
        lsq.allocate_load(load)
        lsq.release(load)
        assert lsq.load_occupancy() == 0

    def test_forward_from_youngest_matching_store(self):
        lsq = self._lsq()
        s1 = self._store(1, vaddr=0x100, data_ready=True)
        s2 = self._store(2, vaddr=0x100, data_ready=True)
        load = self._load(3, vaddr=0x100)
        for inst in (s1, s2, load):
            if inst.instr.is_store:
                lsq.allocate_store(inst)
            else:
                lsq.allocate_load(inst)
        decision = lsq.check_load(load)
        assert decision.source is s2
        assert not decision.speculation_hazard

    def test_unknown_address_store_is_a_hazard(self):
        lsq = self._lsq()
        store = self._store(1)                    # address unknown
        load = self._load(2, vaddr=0x100)
        lsq.allocate_store(store)
        lsq.allocate_load(load)
        decision = lsq.check_load(load)
        assert decision.speculation_hazard
        assert decision.source is None

    def test_known_younger_source_dominates_older_unknown(self):
        lsq = self._lsq()
        unknown = self._store(1)
        known = self._store(2, vaddr=0x100, data_ready=True)
        load = self._load(3, vaddr=0x100)
        lsq.allocate_store(unknown)
        lsq.allocate_store(known)
        lsq.allocate_load(load)
        decision = lsq.check_load(load)
        assert decision.source is known
        assert not decision.speculation_hazard

    def test_different_word_does_not_forward(self):
        lsq = self._lsq()
        store = self._store(1, vaddr=0x108, data_ready=True)
        load = self._load(2, vaddr=0x100)
        lsq.allocate_store(store)
        lsq.allocate_load(load)
        assert lsq.check_load(load).source is None

    def test_violating_loads_detected(self):
        lsq = self._lsq()
        store = self._store(1, vaddr=0x100)
        load = self._load(2, vaddr=0x100)
        load.speculated_past_store = True
        lsq.allocate_store(store)
        lsq.allocate_load(load)
        assert lsq.violating_loads(store) == [load]

    def test_load_forwarded_from_younger_store_does_not_violate(self):
        lsq = self._lsq()
        old_store = self._store(1, vaddr=0x100)
        young_store = self._store(2, vaddr=0x100, data_ready=True)
        load = self._load(3, vaddr=0x100)
        load.speculated_past_store = True
        load.forward_seq = 2
        lsq.allocate_store(old_store)
        lsq.allocate_store(young_store)
        lsq.allocate_load(load)
        assert lsq.violating_loads(old_store) == []

    def test_tpbuf_mirrors_lsq_lifecycle(self):
        tpbuf = TPBuf(8)
        lsq = self._lsq(tpbuf=tpbuf)
        load = self._load(1)
        store = self._store(2)
        lsq.allocate_load(load)
        lsq.allocate_store(store)
        assert tpbuf.allocated_count() == 2
        assert store.tpbuf_index == 4 + store.lsq_slot
        lsq.release(load)
        assert tpbuf.allocated_count() == 1


class TestStoreBufferAndEvents:
    def test_store_buffer_drains_in_background(self):
        hierarchy = MemoryHierarchy(tiny_config().memory)
        buffer = StoreBuffer(2, hierarchy)
        buffer.push(0x1000)
        assert len(buffer) == 1
        cycle = 0
        while len(buffer) and cycle < 1000:
            cycle += 1
            buffer.tick(cycle)
        assert len(buffer) == 0
        assert hierarchy.l1d.contains(0x1000)

    def test_store_buffer_full(self):
        hierarchy = MemoryHierarchy(tiny_config().memory)
        buffer = StoreBuffer(1, hierarchy)
        buffer.push(0x1000)
        assert buffer.full

    def test_event_queue_fires_in_cycle_order(self):
        events = EventQueue()
        fired = []
        events.schedule(5, lambda: fired.append("a"))
        events.schedule(3, lambda: fired.append("b"))
        for cycle in range(1, 7):
            events.fire(cycle)
        assert fired == ["b", "a"]
        assert events.pending == 0

    def test_event_queue_clear(self):
        events = EventQueue()
        events.schedule(1, lambda: None)
        events.clear()
        assert events.fire(1) == 0
