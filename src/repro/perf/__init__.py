"""Performance subsystem: parallel sweep execution and benchmarking.

- :mod:`repro.perf.parallel` — :class:`ParallelSweepExecutor`, the
  process-pool fan-out behind ``SweepEngine(workers=N)``.  Independent
  (benchmark, mode) simulation points are embarrassingly parallel;
  the executor runs them across cores while the parent process stays
  the single writer of the crash-safe checkpoint.
- :mod:`repro.perf.bench` — the ``repro bench --suite`` /
  ``tools/bench.py`` harness measuring simulated-instructions/sec and
  serial-vs-parallel sweep wall-clock (``BENCH_sweep.json``), the
  repo's performance trajectory and CI regression guard.

See ``docs/performance.md`` for the profiling method behind the
simulator hot-path optimizations that live next to this package (the
cycle-exactness contract is pinned by ``tests/data/cycles_golden.json``
and ``tools/cycles_golden.py``).
"""
from .bench import BenchResult, run_bench
from .parallel import ParallelSweepExecutor

__all__ = [
    "BenchResult",
    "ParallelSweepExecutor",
    "run_bench",
]
