"""Process-pool execution of independent sweep tasks.

Every (benchmark, mode) point of an experiment sweep is an independent,
deterministic simulation, so a sweep is embarrassingly parallel.  The
:class:`ParallelSweepExecutor` fans
:class:`~repro.experiments.runner.SweepTask` payloads out across a
``ProcessPoolExecutor`` and yields finished
:class:`~repro.experiments.runner.SweepRow` results back to the parent
as they complete.

The executor is generic over the payload: ``map_tasks`` accepts a
``run_fn`` (a module-level function, so it pickles under spawn) and
any picklable task type.  The default pairing stays
``execute_sweep_task``/:class:`SweepTask` for the simulation sweeps;
the precision study fans :class:`~repro.experiments.precision_study.
PrecisionTask` payloads through the same pool.

Design constraints (all load-bearing):

- **Spawn-safe payloads.**  Workers are started with the ``spawn``
  method — no forked interpreter state, the same behavior on every
  platform — so a task must fully describe its run and pickle cleanly.
  :meth:`ParallelSweepExecutor.map_tasks` verifies this up front and
  fails with an actionable error instead of a deep pickle traceback.
- **Bounded in-flight work.**  At most ``max_in_flight`` tasks
  (default ``2 * workers``) are queued on the pool at once, so a huge
  sweep never materializes thousands of pending futures and the
  parent can checkpoint completed rows promptly.
- **Workers never write.**  A worker returns its ``SweepRow`` (pickled
  back); only the parent process appends to the fsync'd JSONL
  checkpoint, preserving the
  :class:`~repro.robustness.checkpoint.CheckpointStore` single-writer
  invariant.  Retry/backoff and failure isolation happen inside
  :func:`~repro.experiments.runner.execute_sweep_task` in the worker,
  identically to the serial path.
"""
from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from ..errors import ConfigError, SimulationError
from ..experiments.runner import SweepRow, SweepTask, execute_sweep_task

__all__ = ["ParallelSweepExecutor", "default_workers"]


def default_workers() -> int:
    """A sensible worker count: one per CPU, at least one."""
    return max(1, multiprocessing.cpu_count())


def _task_label(task: object) -> str:
    benchmark = getattr(task, "benchmark", None)
    mode = getattr(task, "mode", None)
    if benchmark is not None and mode is not None:
        return f"{benchmark}/{getattr(mode, 'value', mode)}"
    return getattr(task, "name", None) or repr(task)


def _check_spawn_safe(task: object) -> None:
    """Fail fast (and clearly) on payloads a spawned worker can't load."""
    try:
        pickle.dumps(task)
    except Exception as exc:
        raise SimulationError(
            f"sweep task {_task_label(task)} is not "
            f"spawn-safe ({type(exc).__name__}: {exc}); parallel sweeps "
            f"require picklable payloads — in particular run_fn must be "
            f"a module-level function, not a lambda or closure"
        ) from exc


class ParallelSweepExecutor:
    """Run sweep tasks on a spawn-based process pool.

    ``map_tasks`` takes ``(index, task)`` pairs and yields
    ``(index, row)`` pairs in *completion* order; the caller keys rows
    back into task order with the index.  The executor itself holds no
    sweep state — checkpointing, resume and progress reporting stay in
    the single-writer parent (:class:`~repro.experiments.runner.
    SweepEngine`).
    """

    def __init__(
        self,
        workers: int,
        max_in_flight: Optional[int] = None,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        if max_in_flight is not None and max_in_flight < workers:
            raise ConfigError("max_in_flight must be >= workers")
        self.workers = workers
        self.max_in_flight = max_in_flight if max_in_flight is not None \
            else 2 * workers
        self.start_method = start_method

    def map_tasks(
        self,
        tasks: Iterable[Tuple[int, object]],
        run_fn: Callable[[Any], Any] = execute_sweep_task,
    ) -> Iterator[Tuple[int, Any]]:
        """Execute every task; yield ``(index, row)`` as each finishes.

        ``run_fn`` (default :func:`~repro.experiments.runner.
        execute_sweep_task`) runs in the worker and must be a
        module-level function so it pickles under spawn.  A worker
        whose simulation fails still yields a failure row (see
        :func:`~repro.experiments.runner.execute_sweep_task`); only
        infrastructure-level errors — an unpicklable payload, a dead
        worker process — propagate as exceptions.
        """
        items: List[Tuple[int, object]] = list(tasks)
        if not items:
            return
        _check_spawn_safe(run_fn)
        for _index, task in items:
            _check_spawn_safe(task)
        context = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=context) as pool:
            queue = iter(items)
            in_flight: Dict[object, int] = {}

            def submit_next() -> bool:
                try:
                    index, task = next(queue)
                except StopIteration:
                    return False
                in_flight[pool.submit(run_fn, task)] = index
                return True

            for _ in range(min(self.max_in_flight, len(items))):
                submit_next()
            while in_flight:
                finished, _pending = wait(in_flight,
                                          return_when=FIRST_COMPLETED)
                for future in finished:
                    index = in_flight.pop(future)
                    submit_next()
                    yield index, future.result()

    def run_tasks(
        self,
        tasks: Iterable[object],
        run_fn: Callable[[Any], Any] = execute_sweep_task,
    ) -> List[Any]:
        """Convenience: run a plain task list, rows in task order."""
        indexed = list(enumerate(tasks))
        rows: List[Optional[Any]] = [None] * len(indexed)
        for index, row in self.map_tasks(indexed, run_fn):
            rows[index] = row
        return [row for row in rows if row is not None]
