"""Sweep benchmark harness: the repo's performance trajectory.

Measures the two numbers this project's perf work is judged by:

- **simulated-instructions/sec** (and simulated-cycles/sec): committed
  instructions divided by serial sweep wall-clock — the simulator
  hot-path throughput; and
- **serial vs parallel sweep wall-clock** for the same (benchmark,
  mode) grid through :class:`~repro.experiments.runner.SweepEngine`,
  plus the resulting speedup — the fan-out efficiency of
  ``SweepEngine(workers=N)``.

The parallel pass also double-checks determinism: every row it
produces must match the serial row for the same pair (cycles,
committed count, status), or the result is flagged.

``tools/bench.py`` drives this module from the command line (and in
CI) and writes ``BENCH_sweep.json``; the committed baseline under
``benchmarks/`` turns it into a regression guard.
"""
from __future__ import annotations

import json
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..core.policy import EVALUATION_MODES, ProtectionMode
from ..params import MachineParams, RunOptions
from ..experiments.runner import SweepEngine, SweepResult
from ..stats import safe_div
from ..workloads import spec_names
from .parallel import default_workers

__all__ = [
    "BenchResult",
    "run_bench",
    "write_bench_json",
    "load_bench_json",
    "check_regression",
]

#: JSON schema version of ``BENCH_sweep.json``.
BENCH_FORMAT = "repro-bench-sweep"
BENCH_VERSION = 1


@dataclass
class BenchResult:
    """One benchmark harness run (the contents of ``BENCH_sweep.json``)."""

    machine: str
    scale: float
    benchmarks: List[str]
    modes: List[str]
    workers: int
    rows: int = 0
    #: Totals over the serial sweep (every row, ok rows only).
    sim_instructions: int = 0
    sim_cycles: int = 0
    serial_wall_s: float = 0.0
    parallel_wall_s: float = 0.0
    #: Simulator throughput: committed instructions (cycles) per
    #: wall-clock second of the *serial* sweep.
    instructions_per_sec: float = 0.0
    cycles_per_sec: float = 0.0
    #: serial wall / parallel wall (1.0 when the parallel pass is skipped).
    speedup: float = 1.0
    #: Parallel rows matched serial rows exactly (cycles/committed/status).
    deterministic: bool = True
    failures: int = 0
    python: str = field(default_factory=platform.python_version)

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["format"] = BENCH_FORMAT
        data["version"] = BENCH_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BenchResult":
        fields = set(cls.__dataclass_fields__)
        return cls(**{k: v for k, v in data.items() if k in fields})

    def render(self) -> str:
        lines = [
            f"bench: {len(self.benchmarks)} benchmarks x "
            f"{len(self.modes)} modes on '{self.machine}' "
            f"(scale={self.scale}, {self.rows} rows, "
            f"{self.failures} failures)",
            f"  simulated throughput : "
            f"{self.instructions_per_sec:,.0f} instructions/s "
            f"({self.cycles_per_sec:,.0f} cycles/s)",
            f"  serial sweep         : {self.serial_wall_s:.2f}s",
        ]
        if self.workers > 1:
            lines.append(
                f"  parallel sweep       : {self.parallel_wall_s:.2f}s "
                f"({self.workers} workers, {self.speedup:.2f}x, "
                f"deterministic={'yes' if self.deterministic else 'NO'})"
            )
        return "\n".join(lines)


def _row_signature(result: SweepResult) -> Dict[Any, Any]:
    """What must agree between a serial and a parallel sweep."""
    return {
        (row.benchmark, row.mode.value):
            (row.status, row.cycles, row.committed)
        for row in result.rows
    }


def run_bench(
    benchmarks: Optional[Sequence[str]] = None,
    modes: Sequence[ProtectionMode] = EVALUATION_MODES,
    machine: Optional[MachineParams] = None,
    scale: float = 1.0,
    workers: Optional[int] = None,
    options: Optional[RunOptions] = None,
    parallel: bool = True,
) -> BenchResult:
    """Time the overhead sweep serially, then with ``workers`` processes.

    ``workers=None`` picks one worker per CPU (minimum 2, so the
    parallel path is always exercised); ``parallel=False`` measures
    only simulator throughput.
    """
    names = list(benchmarks) if benchmarks is not None else spec_names()
    mode_list = list(modes)
    if workers is None:
        workers = max(2, default_workers())
    result = BenchResult(
        machine=machine.name if machine is not None else "paper",
        scale=scale,
        benchmarks=names,
        modes=[mode.value for mode in mode_list],
        workers=workers if parallel else 1,
    )

    def engine(n_workers: int) -> SweepEngine:
        return SweepEngine(benchmarks=names, modes=mode_list,
                           machine=machine, scale=scale,
                           options=options, workers=n_workers)

    started = time.monotonic()
    serial = engine(1).run()
    result.serial_wall_s = time.monotonic() - started
    result.rows = len(serial.rows)
    result.failures = len(serial.failures)
    for row in serial.rows:
        if row.ok:
            result.sim_instructions += row.committed
            result.sim_cycles += row.cycles
    result.instructions_per_sec = safe_div(
        result.sim_instructions, result.serial_wall_s)
    result.cycles_per_sec = safe_div(result.sim_cycles,
                                     result.serial_wall_s)

    if parallel and workers > 1:
        started = time.monotonic()
        fanned = engine(workers).run()
        result.parallel_wall_s = time.monotonic() - started
        result.speedup = safe_div(result.serial_wall_s,
                                  result.parallel_wall_s, default=1.0)
        result.deterministic = \
            _row_signature(serial) == _row_signature(fanned)
    return result


# ---------------------------------------------------------------------------
# JSON + regression guard
# ---------------------------------------------------------------------------


def write_bench_json(result: BenchResult, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(result.to_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_bench_json(path: str) -> BenchResult:
    with open(path) as handle:
        data = json.load(handle)
    if data.get("format") not in (None, BENCH_FORMAT):
        raise ValueError(f"{path}: not a bench result "
                         f"(format={data.get('format')!r})")
    return BenchResult.from_dict(data)


def check_regression(
    result: BenchResult,
    baseline: BenchResult,
    tolerance: float = 0.2,
) -> List[str]:
    """Regression-guard verdict: problems (empty list = pass).

    Fails when simulated-instructions/sec drops more than ``tolerance``
    (default 20%) below the committed baseline, when the parallel pass
    lost determinism, or when rows failed that the baseline completed.
    """
    problems: List[str] = []
    floor = baseline.instructions_per_sec * (1.0 - tolerance)
    if result.instructions_per_sec < floor:
        problems.append(
            f"simulated-instructions/sec regressed: "
            f"{result.instructions_per_sec:,.0f} < {floor:,.0f} "
            f"(baseline {baseline.instructions_per_sec:,.0f} "
            f"- {tolerance:.0%})"
        )
    if not result.deterministic:
        problems.append("parallel sweep rows diverged from serial rows")
    if result.failures > baseline.failures:
        problems.append(
            f"sweep failures increased: {result.failures} > "
            f"baseline {baseline.failures}"
        )
    return problems


#: Improvement margin before ``--raise-floor`` rewrites the baseline:
#: a run must beat it by more than 10% — genuine speedups ratchet the
#: floor up, ordinary run-to-run noise does not churn the file.
RAISE_FLOOR_MARGIN = 0.1


def should_raise_floor(
    result: BenchResult,
    baseline: BenchResult,
    margin: float = RAISE_FLOOR_MARGIN,
) -> bool:
    """Whether ``result`` earns a baseline rewrite (the ratchet).

    Only a clean run qualifies: throughput more than ``margin`` above
    the baseline, deterministic parallel rows, and no new failures —
    a fast-but-broken run must never become the bar others are held
    to.
    """
    if not result.deterministic:
        return False
    if result.failures > baseline.failures:
        return False
    ceiling = baseline.instructions_per_sec * (1.0 + margin)
    return result.instructions_per_sec > ceiling
