"""A physically indexed, physically tagged set-associative cache."""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..params import CacheParams
from ..stats import StatGroup
from .replacement import LRUState


@dataclass
class CacheAccess:
    """Outcome of one cache lookup-with-fill."""

    hit: bool
    evicted_line_addr: Optional[int] = None


class SetAssociativeCache:
    """One cache level.

    All addresses handed to the cache are *physical* byte addresses;
    the cache reasons at line granularity.  The cache tracks no data
    (functional values live in the architectural memory image); it only
    models presence, which is all the side channel and the defense need.
    """

    def __init__(self, params: CacheParams) -> None:
        self.params = params
        self.stats = StatGroup(params.name)
        self._line_shift = params.line_bytes.bit_length() - 1
        self._num_sets = params.num_sets
        self._set_mask = self._num_sets - 1
        self._tags: List[List[Optional[int]]] = [
            [None] * params.ways for _ in range(self._num_sets)
        ]
        self._lru: List[LRUState] = [
            LRUState(params.ways) for _ in range(self._num_sets)
        ]

    # ---- address helpers -------------------------------------------------

    def line_address(self, address: int) -> int:
        return address >> self._line_shift << self._line_shift

    def set_index(self, address: int) -> int:
        return (address >> self._line_shift) & self._set_mask

    def _tag(self, address: int) -> int:
        return address >> self._line_shift >> (self._num_sets.bit_length() - 1)

    def _find_way(self, address: int) -> Optional[int]:
        tag = self._tag(address)
        for way, stored in enumerate(self._tags[self.set_index(address)]):
            if stored == tag:
                return way
        return None

    # ---- queries (no state change) ----------------------------------------

    def contains(self, address: int) -> bool:
        """Presence probe; never perturbs replacement state."""
        return self._find_way(address) is not None

    def lines_in_set(self, set_index: int) -> List[Optional[int]]:
        """Line addresses currently resident in ``set_index`` (None for
        invalid ways); used by eviction-set tooling and tests."""
        result: List[Optional[int]] = []
        for tag in self._tags[set_index]:
            if tag is None:
                result.append(None)
            else:
                result.append(
                    ((tag << (self._num_sets.bit_length() - 1)) | set_index)
                    << self._line_shift
                )
        return result

    @property
    def num_sets(self) -> int:
        return self._num_sets

    @property
    def ways(self) -> int:
        return self.params.ways

    # ---- state-changing operations ------------------------------------------

    def lookup(self, address: int, update_lru: bool = True) -> bool:
        """Lookup without fill.  Returns hit/miss."""
        way = self._find_way(address)
        if way is None:
            self.stats.incr("misses")
            return False
        self.stats.incr("hits")
        if update_lru:
            self._lru[self.set_index(address)].touch(way)
        return True

    def touch(self, address: int) -> bool:
        """Apply only the LRU update for a line (the DELAYED policy's
        commit-time action).  Returns False if the line is gone."""
        way = self._find_way(address)
        if way is None:
            return False
        self._lru[self.set_index(address)].touch(way)
        return True

    def fill(self, address: int) -> Optional[int]:
        """Insert the line containing ``address``; returns the evicted
        line address, if any.  Filling a resident line just refreshes
        its recency."""
        set_index = self.set_index(address)
        way = self._find_way(address)
        if way is not None:
            self._lru[set_index].touch(way)
            return None
        tags = self._tags[set_index]
        valid = [tag is not None for tag in tags]
        victim_way = self._lru[set_index].victim(valid)
        evicted: Optional[int] = None
        if tags[victim_way] is not None:
            evicted = (
                (tags[victim_way] << (self._num_sets.bit_length() - 1))
                | set_index
            ) << self._line_shift
            self.stats.incr("evictions")
        tags[victim_way] = self._tag(address)
        self._lru[set_index].touch(victim_way)
        self.stats.incr("fills")
        return evicted

    def access(self, address: int, update_lru: bool = True) -> CacheAccess:
        """Lookup and fill on miss (the common path)."""
        if self.lookup(address, update_lru=update_lru):
            return CacheAccess(hit=True)
        return CacheAccess(hit=False, evicted_line_addr=self.fill(address))

    def invalidate(self, address: int) -> bool:
        """Remove the line containing ``address``; True if it was present."""
        set_index = self.set_index(address)
        way = self._find_way(address)
        if way is None:
            return False
        self._tags[set_index][way] = None
        self.stats.incr("invalidations")
        return True

    def flush_all(self) -> None:
        """Empty the cache (used between attack phases in tests)."""
        for tags in self._tags:
            for way in range(len(tags)):
                tags[way] = None

    def resident_lines(self) -> List[int]:
        """All resident line addresses (tests and debugging)."""
        lines: List[int] = []
        for set_index in range(self._num_sets):
            for line in self.lines_in_set(set_index):
                if line is not None:
                    lines.append(line)
        return lines

    def hit_rate(self) -> float:
        lookups = self.stats.get("hits") + self.stats.get("misses")
        if lookups == 0:
            return 0.0
        return self.stats.get("hits") / lookups
