"""Memory-system substrate: caches, replacement policies, TLB, hierarchy.

Caches are physically indexed and tagged; the hierarchy is inclusive
with back-invalidation so eviction-set attacks (Prime+Probe) behave the
way the paper's threat model assumes.
"""
from .replacement import LRUState, SpeculativeLRUPolicy
from .cache import CacheAccess, SetAssociativeCache
from .tlb import PageTable, TLB, TranslationResult
from .hierarchy import AccessResult, MemoryHierarchy

__all__ = [
    "LRUState",
    "SpeculativeLRUPolicy",
    "CacheAccess",
    "SetAssociativeCache",
    "PageTable",
    "TLB",
    "TranslationResult",
    "AccessResult",
    "MemoryHierarchy",
]
