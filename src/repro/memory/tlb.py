"""Page table and TLB.

The TPBuf filter compares *physical page numbers* (the paper checks the
PPN after TLB translation so an attacker cannot alias pages virtually),
so the simulator carries a real page table: virtual page number -> PPN,
with support for mapping several virtual pages onto one physical page
(shared memory, the substrate of Flush+Reload-style channels).
"""
from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import SimulationError
from ..params import TLBParams
from ..stats import StatGroup


@dataclass(frozen=True)
class TranslationResult:
    """Outcome of one TLB translation."""

    paddr: int
    ppn: int
    latency: int
    tlb_hit: bool


class PageTable:
    """A flat VPN -> PPN map with on-demand allocation.

    Physical pages are handed out sequentially from ``first_ppn``.
    ``map_shared`` aliases a virtual page onto an existing physical
    page, which is how attack scenarios model memory shared between
    attacker and victim.
    """

    def __init__(self, page_bytes: int = 4096, first_ppn: int = 0x100,
                 allocate_on_access: bool = True) -> None:
        if page_bytes & (page_bytes - 1):
            raise SimulationError("page size must be a power of two")
        self.page_bytes = page_bytes
        self._page_shift = page_bytes.bit_length() - 1
        self._mapping: Dict[int, int] = {}
        self._next_ppn = first_ppn
        self._allocate_on_access = allocate_on_access

    @property
    def page_shift(self) -> int:
        return self._page_shift

    def vpn_of(self, vaddr: int) -> int:
        return vaddr >> self._page_shift

    def offset_of(self, vaddr: int) -> int:
        return vaddr & (self.page_bytes - 1)

    def map_page(self, vpn: int, ppn: Optional[int] = None) -> int:
        """Map ``vpn`` to ``ppn`` (or a fresh physical page)."""
        if vpn in self._mapping:
            raise SimulationError(f"vpn {vpn:#x} already mapped")
        if ppn is None:
            ppn = self._next_ppn
            self._next_ppn += 1
        self._mapping[vpn] = ppn
        return ppn

    def map_shared(self, vpn: int, other_vpn: int) -> int:
        """Alias ``vpn`` to the physical page backing ``other_vpn``."""
        ppn = self.lookup(other_vpn)
        if ppn is None:
            ppn = self.map_page(other_vpn)
        if self._mapping.get(vpn) == ppn:
            return ppn
        if vpn in self._mapping:
            raise SimulationError(f"vpn {vpn:#x} already mapped elsewhere")
        self._mapping[vpn] = ppn
        return ppn

    def lookup(self, vpn: int) -> Optional[int]:
        return self._mapping.get(vpn)

    def translate_vpn(self, vpn: int) -> int:
        """VPN -> PPN, allocating on demand if permitted."""
        ppn = self._mapping.get(vpn)
        if ppn is None:
            if not self._allocate_on_access:
                raise SimulationError(f"page fault: vpn {vpn:#x} unmapped")
            ppn = self.map_page(vpn)
        return ppn

    def physical_address(self, vaddr: int) -> int:
        """Full virtual -> physical byte-address translation."""
        ppn = self.translate_vpn(self.vpn_of(vaddr))
        return (ppn << self._page_shift) | self.offset_of(vaddr)


class TLB:
    """A fully associative translation lookaside buffer with true LRU."""

    def __init__(self, params: TLBParams, page_table: PageTable,
                 name: str = "TLB") -> None:
        if params.page_bytes != page_table.page_bytes:
            raise SimulationError("TLB and page table disagree on page size")
        self.params = params
        self.page_table = page_table
        self.stats = StatGroup(name)
        self._entries: "OrderedDict[int, int]" = OrderedDict()

    def translate(self, vaddr: int) -> TranslationResult:
        """Translate a virtual byte address, modelling hit/miss latency."""
        vpn = self.page_table.vpn_of(vaddr)
        ppn = self._entries.get(vpn)
        if ppn is not None:
            self._entries.move_to_end(vpn)
            self.stats.incr("hits")
            hit = True
            latency = self.params.hit_latency
        else:
            ppn = self.page_table.translate_vpn(vpn)
            self._entries[vpn] = ppn
            if len(self._entries) > self.params.entries:
                self._entries.popitem(last=False)
            self.stats.incr("misses")
            hit = False
            latency = self.params.miss_latency
        paddr = (ppn << self.page_table.page_shift) | \
            self.page_table.offset_of(vaddr)
        return TranslationResult(paddr=paddr, ppn=ppn, latency=latency,
                                 tlb_hit=hit)

    def flush(self) -> None:
        self._entries.clear()

    def resident_vpns(self):
        return list(self._entries)
