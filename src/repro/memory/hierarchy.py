"""Three-level inclusive cache hierarchy plus main memory.

Latency model: a level's lookup latency is paid on the way down, so an
L2 hit costs ``L1 + L2``, a DRAM access costs ``L1 + L2 + L3 + DRAM``.
Fills propagate back up into every level (inclusive); evictions from an
outer level back-invalidate inner levels so inclusion is a maintained
invariant (property-tested).

``CLFLUSH`` timing distinguishes present vs absent lines, which is the
signal the Flush+Flush receiver measures.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..params import MemoryParams
from ..stats import StatGroup
from .cache import SetAssociativeCache

#: CLFLUSH latency when the line was cached somewhere (writeback path).
FLUSH_PRESENT_LATENCY = 42
#: CLFLUSH latency when the line was absent everywhere.
FLUSH_ABSENT_LATENCY = 14


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a hierarchy access."""

    latency: int
    level: str          # "l1", "l2", "l3", or "mem"
    l1_hit: bool


class MemoryHierarchy:
    """L1I + L1D over a shared L2 over L3 over DRAM."""

    def __init__(self, params: MemoryParams) -> None:
        self.params = params
        self.l1i = SetAssociativeCache(params.l1i)
        self.l1d = SetAssociativeCache(params.l1d)
        self.l2 = SetAssociativeCache(params.l2)
        self.l3 = SetAssociativeCache(params.l3)
        self.stats = StatGroup("hierarchy")

    # ---- internal helpers ---------------------------------------------------

    def _back_invalidate_from_l3(self, line_addr: int) -> None:
        self.l2.invalidate(line_addr)
        self.l1i.invalidate(line_addr)
        self.l1d.invalidate(line_addr)

    def _back_invalidate_from_l2(self, line_addr: int) -> None:
        self.l1i.invalidate(line_addr)
        self.l1d.invalidate(line_addr)

    def _fill_outer(self, paddr: int) -> Tuple[str, int]:
        """Look up L2/L3/DRAM and fill the outer levels; returns the
        level that supplied the line plus accumulated outer latency."""
        if self.l2.lookup(paddr):
            return "l2", self.params.l2.hit_latency
        if self.l3.lookup(paddr):
            # Fill L2 from L3.
            evicted = self.l2.fill(paddr)
            if evicted is not None:
                self._back_invalidate_from_l2(evicted)
            return "l3", self.params.l2.hit_latency + self.params.l3.hit_latency
        # Miss everywhere: fetch from memory, fill L3 then L2.
        evicted_l3 = self.l3.fill(paddr)
        if evicted_l3 is not None:
            self._back_invalidate_from_l3(evicted_l3)
        evicted_l2 = self.l2.fill(paddr)
        if evicted_l2 is not None:
            self._back_invalidate_from_l2(evicted_l2)
        latency = (
            self.params.l2.hit_latency
            + self.params.l3.hit_latency
            + self.params.dram_latency
        )
        return "mem", latency

    def _access(self, l1: SetAssociativeCache, paddr: int,
                update_l1_lru: bool) -> AccessResult:
        l1_latency = l1.params.hit_latency
        if l1.lookup(paddr, update_lru=update_l1_lru):
            return AccessResult(latency=l1_latency, level="l1", l1_hit=True)
        level, outer_latency = self._fill_outer(paddr)
        evicted = l1.fill(paddr)
        # L1 evictions need no action (outer levels keep the line).
        del evicted
        return AccessResult(
            latency=l1_latency + outer_latency, level=level, l1_hit=False
        )

    # ---- data side ------------------------------------------------------------

    def data_access(self, paddr: int, update_l1_lru: bool = True) -> AccessResult:
        """A demand load/store access that is allowed to change cache
        content (fills on miss)."""
        self.stats.incr("data_accesses")
        return self._access(self.l1d, paddr, update_l1_lru)

    def data_hit_l1(self, paddr: int, update_lru: bool = True) -> bool:
        """L1D lookup *without fill*: the Cache-hit filter's check.  A
        hit optionally updates LRU state (policy-controlled); a miss
        changes nothing - the request is discarded."""
        self.stats.incr("l1_filter_checks")
        way_hit = self.l1d.contains(paddr)
        if way_hit and update_lru:
            self.l1d.touch(paddr)
        if way_hit:
            self.l1d.stats.incr("hits")
        else:
            self.l1d.stats.incr("misses")
        return way_hit

    def complete_miss(self, paddr: int) -> AccessResult:
        """Finish a demand miss whose L1D lookup was already performed
        (and counted) by :meth:`data_hit_l1`: walk the outer levels and
        refill, including the L1D."""
        level, outer_latency = self._fill_outer(paddr)
        self.l1d.fill(paddr)
        return AccessResult(
            latency=self.params.l1d.hit_latency + outer_latency,
            level=level,
            l1_hit=False,
        )

    def peek_miss(self, paddr: int) -> AccessResult:
        """Latency and supply level a demand miss *would* see, without
        filling any level or touching replacement state — the invisible
        speculative access of InvisiSpec-style defenses.  The L1D
        lookup is assumed already performed (and counted) by
        :meth:`data_hit_l1`, mirroring :meth:`complete_miss`."""
        l1_latency = self.params.l1d.hit_latency
        if self.l2.contains(paddr):
            level = "l2"
            outer = self.params.l2.hit_latency
        elif self.l3.contains(paddr):
            level = "l3"
            outer = self.params.l2.hit_latency + self.params.l3.hit_latency
        else:
            level = "mem"
            outer = (
                self.params.l2.hit_latency
                + self.params.l3.hit_latency
                + self.params.dram_latency
            )
        self.stats.incr("invisible_accesses")
        return AccessResult(
            latency=l1_latency + outer, level=level, l1_hit=False
        )

    def probe_data(self, paddr: int) -> bool:
        """Side-effect-free presence probe of the whole hierarchy."""
        return (
            self.l1d.contains(paddr)
            or self.l2.contains(paddr)
            or self.l3.contains(paddr)
        )

    def probe_l1d(self, paddr: int) -> bool:
        return self.l1d.contains(paddr)

    def touch_l1d(self, paddr: int) -> bool:
        """Commit-time LRU touch (DELAYED policy)."""
        return self.l1d.touch(paddr)

    # ---- instruction side -------------------------------------------------------

    def inst_access(self, paddr: int) -> AccessResult:
        self.stats.incr("inst_accesses")
        return self._access(self.l1i, paddr, update_l1_lru=True)

    def inst_hit_l1(self, paddr: int) -> bool:
        """L1I lookup without fill (the ICache-hit filter's check)."""
        return self.l1i.contains(paddr)

    # ---- flush -------------------------------------------------------------------

    def flush_line(self, paddr: int) -> Tuple[int, bool]:
        """CLFLUSH: remove the line everywhere.  Returns (latency,
        was_present); latency depends on presence, which is the
        Flush+Flush signal."""
        present = False
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            if cache.invalidate(paddr):
                present = True
        self.stats.incr("flushes")
        if present:
            self.stats.incr("flush_hits")
            return FLUSH_PRESENT_LATENCY, True
        return FLUSH_ABSENT_LATENCY, False

    # ---- invariants ------------------------------------------------------------------

    def check_inclusion(self) -> List[str]:
        """Return a list of inclusion violations (empty when healthy).

        Invariant: every line in L1I/L1D is in L2, every line in L2 is
        in L3."""
        problems: List[str] = []
        for name, inner in (("l1i", self.l1i), ("l1d", self.l1d)):
            for line in inner.resident_lines():
                if not self.l2.contains(line):
                    problems.append(f"{name} line {line:#x} missing from l2")
        for line in self.l2.resident_lines():
            if not self.l3.contains(line):
                problems.append(f"l2 line {line:#x} missing from l3")
        return problems

    @property
    def line_bytes(self) -> int:
        return self.params.line_bytes
