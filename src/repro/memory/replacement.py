"""Cache replacement state and the speculative-update policies of
Section VII.A of the paper.

The paper observes that even a speculative L1D *hit* leaks through the
replacement metadata (LRU bits) and proposes:

- ``NORMAL``      - conventional: every access updates LRU state.
- ``NO_UPDATE``   - speculative hits do not touch LRU state at all.
- ``DELAYED``     - speculative hits record a pending update which is
  applied when the access becomes non-speculative (commit time).

The policy only governs *speculative hits*; fills and non-speculative
accesses always update recency.
"""
from __future__ import annotations

from enum import Enum
from typing import List, Optional


class SpeculativeLRUPolicy(Enum):
    """How speculative L1D hits update replacement metadata."""

    NORMAL = "normal"
    NO_UPDATE = "no_update"
    DELAYED = "delayed"


class LRUState:
    """True-LRU recency tracking for one cache set.

    Ways are kept in a list ordered from least- to most-recently used.
    ``victim`` prefers an invalid way, then the LRU valid way.
    """

    def __init__(self, ways: int) -> None:
        self._order: List[int] = list(range(ways))

    def touch(self, way: int) -> None:
        """Mark ``way`` most recently used."""
        self._order.remove(way)
        self._order.append(way)

    def victim(self, valid: List[bool]) -> int:
        """Way to evict: first invalid way, else least recently used."""
        for way in self._order:
            if not valid[way]:
                return way
        return self._order[0]

    def recency_order(self) -> List[int]:
        """Ways ordered least- to most-recently used (for tests)."""
        return list(self._order)

    def lru_way(self) -> int:
        return self._order[0]

    def mru_way(self) -> int:
        return self._order[-1]


class PendingLRUUpdates:
    """Queue of delayed LRU touches (the ``DELAYED`` policy).

    The processor records a pending touch when a speculative hit
    occurs, and drains it when the instruction commits; squashed
    instructions' pending touches are dropped, which is exactly what
    makes the policy leak-free.
    """

    def __init__(self) -> None:
        self._pending: dict[int, int] = {}
        self._next_token = 0

    def record(self, address: int) -> int:
        """Remember a pending touch; returns a token for commit/squash."""
        token = self._next_token
        self._next_token += 1
        self._pending[token] = address
        return token

    def commit(self, token: int) -> Optional[int]:
        """Consume a token at commit; returns the address to touch."""
        return self._pending.pop(token, None)

    def squash(self, token: int) -> None:
        """Drop a pending touch for a squashed instruction."""
        self._pending.pop(token, None)

    def __len__(self) -> int:
        return len(self._pending)
