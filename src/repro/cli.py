"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``      - assemble and simulate a program file.
- ``analyze``  - statically scan a program for Spectre gadgets;
  ``--refine`` applies value-set refutation, ``--fix`` synthesizes a
  minimal fence placement and verifies it, ``--certify`` runs the
  symbolic speculative-noninterference certifier and attaches a
  per-finding certificate.  Programs are either assembly files or
  ``corpus:<kind>[:<variant>]`` specs naming a built-in gadget driver
  (e.g. ``corpus:v1:masked``).
- ``certify``  - symbolically certify programs speculatively
  noninterferent (``PROVED_SAFE``) or refute them with a concrete
  witness replayed on the unsafe pipeline (``LEAKY``); budget
  exhaustion degrades to ``UNKNOWN`` and a non-zero exit.
- ``attack``   - run a Spectre PoC under a protection mode.
- ``bench``    - simulate a SPEC profile under one or all modes, or
  (``--suite``) run the performance harness: simulated-instructions/sec
  plus serial-vs-parallel sweep wall-clock, written to
  ``BENCH_sweep.json``.
- ``sweep``    - checkpointed benchmark x mode sweep with ``--resume``
  and optional fault injection (``--inject``).
- ``fence``    - fence overhead study: unsafe vs fence-all vs
  synthesized fences vs the hardware filters.
- ``prescreen`` - static defense-coverage pre-screen: predict the
  (attack x defense) blocked/leaky matrix from wiring flags plus
  memdep/taint facts, cross-validated cell-by-cell against the
  dynamic shootout (``--static-only`` skips the dynamic leg).
- ``precision`` - static precision study: taint vs +valueset vs
  +symx over the corpus and SPEC-like workloads.
- ``fuzz``     - adversarial validation campaigns (``diff`` /
  ``certify`` / ``evolve``): seeded random programs differentially
  checked against the in-order oracle, symx verdicts cross-checked
  against dynamic two-secret replay, and gadget variants evolved
  against each defense mode.  See ``docs/fuzzing.md``.
- ``figure5`` / ``table4`` / ``table5`` / ``table6`` / ``lru`` /
  ``area``   - regenerate a paper artifact.

Experiment subcommands are thin shells over the unified
:func:`repro.experiments.api.run_experiment` facade; sweeping commands
accept ``--workers N`` to fan independent simulations across a process
pool.
"""
from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .attacks import (
    build_spectre_prime,
    build_spectre_rsb,
    build_spectre_v1,
    build_spectre_v2,
    build_spectre_v4,
    run_attack,
)
from .attacks.layout import AttackLayout
from .attacks.sidechannel import (
    EvictReloadChannel,
    EvictTimeChannel,
    FlushFlushChannel,
    FlushReloadChannel,
    PrimeProbeChannel,
)
from .core.policy import EVALUATION_MODES, ProtectionMode, SecurityConfig
from .experiments import (
    SweepEngine,
    run_area_study,
    run_experiment,
    run_modes,
)
from .experiments.shootout import ATTACK_SUITE
from .experiments.area_study import render_area_study
from .isa import assemble
from .config_io import load_machine
from .params import preset
from .pipeline.processor import Processor
from .pipeline.report import compare_table
from .pipeline.trace import PipelineTracer
from .workloads import spec_names

_CHANNELS = {
    "flush+reload": FlushReloadChannel,
    "flush+flush": FlushFlushChannel,
    "evict+reload": EvictReloadChannel,
    "prime+probe": PrimeProbeChannel,
    "evict+time": EvictTimeChannel,
}

_ATTACKS = {
    "v1": build_spectre_v1,
    "v2": build_spectre_v2,
    "v4": build_spectre_v4,
    "rsb": build_spectre_rsb,
    "prime": lambda channel=None, layout=None, machine=None:
        build_spectre_prime(layout=layout, machine=machine),
}


def _security(mode_name: str) -> SecurityConfig:
    return SecurityConfig.for_defense(mode_name)


def _mode_choices() -> List[str]:
    """Every registered defense name plus its accepted aliases."""
    from .core.defense import DEFENSE_ALIASES, defense_names
    return [*defense_names(), *DEFENSE_ALIASES]


def _add_machine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machine", default="paper",
                        choices=["paper", "a57-like", "i7-like",
                                 "xeon-like", "tiny"],
                        help="machine preset (default: paper)")
    parser.add_argument("--machine-file", default=None,
                        help="JSON machine description (overrides "
                             "--machine; see repro.config_io)")


def _machine(args: argparse.Namespace):
    if getattr(args, "machine_file", None):
        return load_machine(args.machine_file, base=preset(args.machine))
    return preset(args.machine)


def _add_mode_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mode", default="cache_hit_tpbuf",
                        choices=_mode_choices(),
                        help="defense (registered name or alias)")


def _cmd_run(args: argparse.Namespace) -> int:
    with open(args.program) as handle:
        program = assemble(handle.read())
    tracer = PipelineTracer() if args.trace else None
    cpu = Processor(program, machine=_machine(args),
                    security=_security(args.mode), tracer=tracer)
    report = cpu.run(max_cycles=args.max_cycles)
    print(report.render())
    if args.regs:
        for reg in range(32):
            value = cpu.arch_reg(reg)
            if value:
                print(f"  r{reg} = {value:#x} ({value})")
    if tracer is not None:
        print()
        print(tracer.render(last=args.trace_last))
    return 0 if report.halted else 1


def _load_analysis_program(spec: str):
    """Resolve a program argument: an assembly file path, or
    ``corpus:<kind>[:<variant>]`` naming a built-in gadget driver.
    Returns ``(program, default_secret_words)``."""
    if spec.startswith("corpus:"):
        from .analysis.corpus import (
            CORPUS_VARIANTS,
            GADGET_KINDS,
            build_corpus_variant,
            corpus_secret_words,
        )

        parts = spec.split(":")
        kind = parts[1] if len(parts) > 1 else ""
        variant = parts[2] if len(parts) > 2 else "unsafe"
        if kind not in GADGET_KINDS or variant not in CORPUS_VARIANTS \
                or len(parts) > 3:
            raise ValueError(
                f"bad corpus spec {spec!r}: expected "
                f"corpus:{{{','.join(GADGET_KINDS)}}}"
                f"[:{{{','.join(CORPUS_VARIANTS)}}}]"
            )
        return build_corpus_variant(kind, variant), corpus_secret_words()
    with open(spec) as handle:
        return assemble(handle.read()), ()


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import (
        DEFAULT_WINDOW,
        Verdict,
        analyze_program,
        certify_program,
        cross_validate,
        finding_certificates,
        oracle_equivalent,
        refine_report,
        synthesize_fences,
        uses_rdcycle,
    )

    try:
        program, default_secrets = _load_analysis_program(args.program)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    secrets = tuple(int(word, 0) for word in args.secret) \
        if args.secret else tuple(default_secrets)
    window = args.window if args.window is not None else DEFAULT_WINDOW
    report = analyze_program(program, window=window, name=args.program)
    print(report.render())
    summaries = None
    summary_cache = None
    if args.refine or args.fix or args.certify:
        from .analysis.summaries import (
            SummaryCache,
            compute_program_summaries,
        )

        if args.summary_cache:
            summary_cache = SummaryCache(path=args.summary_cache)
        summaries = compute_program_summaries(
            program, window=window, cache=summary_cache)
    refined = None
    if args.refine or args.fix:
        refined = refine_report(program, report, secret_words=secrets,
                                summaries=summaries)
        print()
        print(refined.render())
    synthesis = None
    if args.fix:
        synthesis = synthesize_fences(
            program, window=window, secret_words=secrets,
            certify=args.certify, name=args.program,
        )
        print()
        print(synthesis.render())
        if uses_rdcycle(program):
            print("  oracle equivalence: skipped (program uses RDCYCLE)")
        else:
            matches = oracle_equivalent(program, synthesis.rewrite)
            print(f"  oracle equivalence: "
                  f"{'OK' if matches else 'MISMATCH'}")
            if not matches:
                return 1
        if not synthesis.clean:
            return 1
        if args.certify and not synthesis.certified:
            return 1
    certified = None
    if args.certify:
        from .analysis.symx import DEFAULT_MAX_PATHS

        certified = certify_program(
            program, secret_words=secrets, window=window,
            max_paths=(args.max_paths if args.max_paths is not None
                       else DEFAULT_MAX_PATHS),
            name=args.program,
            summaries=summaries,
        )
        print()
        print(certified.render())
    if summary_cache is not None:
        summary_cache.close()
    if args.json:
        import json

        certificates = (finding_certificates(certified, report)
                        if certified is not None else None)
        memdep_blocks = None
        if report.findings:
            from .analysis.memdep import (
                compute_memdep_summary,
                finding_memdep_block,
            )

            memdep_summary = compute_memdep_summary(program,
                                                    window=window)
            memdep_blocks = {}
            for finding in report.findings:
                block = finding_memdep_block(memdep_summary, finding)
                if block["may_bypass"] or block["disjoint"]:
                    memdep_blocks[finding.sink_pc] = block
        document = report.to_dict(certificates=certificates,
                                  memdep=memdep_blocks)
        if refined is not None:
            document["refinement"] = refined.to_dict()
        if synthesis is not None:
            document["fence_synthesis"] = synthesis.to_dict()
        if certified is not None:
            document["certify"] = certified.to_dict()
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
        print(f"wrote {args.json}")
    if args.verify:
        validation = cross_validate(
            program, machine=_machine(args), security=_security(args.mode),
            name=args.program, max_cycles=args.max_cycles,
        )
        print()
        print(validation.render())
        if not validation.covered:
            return 1
    if args.fail_on_findings:
        surviving = refined.confirmed if refined is not None \
            else report.findings
        if surviving:
            return 1
    if certified is not None:
        if certified.verdict is Verdict.UNKNOWN:
            return 1
        if any(leak.replay is not None and not leak.replay.reproduced
               for leak in certified.leaks):
            return 1
    return 0


def _cmd_certify(args: argparse.Namespace) -> int:
    from .analysis import DEFAULT_WINDOW, Verdict, certify_program
    from .analysis.symx import (
        DEFAULT_MAX_DEPTH,
        DEFAULT_MAX_PATHS,
        DEFAULT_MAX_STEPS,
    )

    machine = _machine(args)
    window = args.window if args.window is not None else DEFAULT_WINDOW
    max_depth = (args.max_depth if args.max_depth is not None
                 else DEFAULT_MAX_DEPTH)
    max_paths = (args.max_paths if args.max_paths is not None
                 else DEFAULT_MAX_PATHS)
    max_steps = (args.max_steps if args.max_steps is not None
                 else DEFAULT_MAX_STEPS)
    summary_cache = None
    if args.summary_cache:
        from .analysis.summaries import SummaryCache

        summary_cache = SummaryCache(path=args.summary_cache)
    exit_code = 0
    documents = []
    for spec in args.programs:
        try:
            program, default_secrets = _load_analysis_program(spec)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            if summary_cache is not None:
                summary_cache.close()
            return 2
        secrets = tuple(int(word, 0) for word in args.secret) \
            if args.secret else tuple(default_secrets)
        result = certify_program(
            program,
            secret_words=secrets,
            window=window,
            max_depth=max_depth,
            max_paths=max_paths,
            max_steps=max_steps,
            replay=not args.no_replay,
            machine=machine,
            name=spec,
            summary_cache=summary_cache,
        )
        print(result.render())
        documents.append(result.to_dict())
        if result.verdict is Verdict.UNKNOWN:
            exit_code = 1
        elif result.verdict is Verdict.LEAKY:
            if any(leak.replay is not None and not leak.replay.reproduced
                   for leak in result.leaks):
                exit_code = 1
            if args.fail_on_leak:
                exit_code = 1
    if summary_cache is not None:
        summary_cache.close()
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump({"results": documents}, handle, indent=2)
        print(f"wrote {args.json}")
    return exit_code


def _cmd_attack(args: argparse.Namespace) -> int:
    build = _ATTACKS[args.variant]
    channel = _CHANNELS[args.channel]() if args.variant != "prime" else None
    layout = AttackLayout.same_page() if args.same_page else None
    machine = _machine(args)
    kwargs = {"layout": layout, "machine": machine}
    if args.variant != "prime":
        kwargs["channel"] = channel
    attack = build(**kwargs)
    result = run_attack(attack, machine=machine,
                        security=_security(args.mode))
    print(result.render())
    print(f"timings: {result.timings}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    machine = _machine(args)
    unknown = [name for name in args.benchmarks
               if name not in spec_names()]
    if unknown:
        print(f"unknown benchmark(s) {', '.join(unknown)}; "
              f"choose from {', '.join(spec_names())}", file=sys.stderr)
        return 2
    if args.suite:
        from .perf.bench import run_bench, write_bench_json

        result = run_bench(
            benchmarks=args.benchmarks or None, machine=machine,
            scale=args.scale, workers=args.workers,
            parallel=not args.serial_only,
        )
        print(result.render())
        if args.out:
            write_bench_json(result, args.out)
            print(f"wrote {args.out}")
        return 0
    if len(args.benchmarks) != 1:
        print("bench: give exactly one benchmark, or --suite",
              file=sys.stderr)
        return 2
    reports = run_modes(args.benchmarks[0], machine=machine,
                        scale=args.scale)
    origin = reports[ProtectionMode.ORIGIN]
    print(compare_table(list(reports.values()), origin))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .robustness import FaultPlan

    machine = _machine(args)
    modes = list(args.modes) if args.modes else list(EVALUATION_MODES)
    fault_plan = None
    if args.inject:
        fault_plan = FaultPlan.moderate(seed=args.fault_seed)
    engine = SweepEngine(
        benchmarks=args.benchmarks or None,
        modes=modes,
        machine=machine,
        scale=args.scale,
        max_cycles=args.max_cycles,
        checkpoint=args.checkpoint,
        resume=args.resume,
        retries=args.retries,
        wall_clock_budget=args.wall_clock_budget,
        fault_plan=fault_plan,
        workers=args.workers,
    )
    result = engine.run(
        progress=lambda row: print(
            f"  {row.benchmark}/{row.defense_name}: {row.status} "
            f"({row.cycles} cycles, {row.attempts} attempt(s))",
            file=sys.stderr,
        )
    )
    print(result.render())
    return 0 if not result.failures else 1


def _cmd_shootout(args: argparse.Namespace) -> int:
    from .experiments.shootout import print_progress, \
        run_defense_shootout

    result = run_defense_shootout(
        defenses=args.defenses or None,
        attacks=args.attacks or None,
        benchmarks=args.benchmarks or None,
        machine=_machine(args),
        scale=args.scale,
        trials=args.trials,
        evolve=not args.no_evolve,
        evolve_generations=args.generations,
        seed=args.seed,
        progress=None if args.quiet else print_progress,
    )
    print(result.render())
    _write_json(args.json, result.to_dict())
    return 0


def _cmd_prescreen(args: argparse.Namespace) -> int:
    from .core.defense import normalize_defense_name

    extras = {}
    if args.window is not None:
        extras["window"] = args.window
    result = run_experiment(
        "defense_prescreen",
        machine=_machine(args),
        defenses=([normalize_defense_name(d) for d in args.defenses]
                  if args.defenses else None),
        attacks=args.attacks or None,
        dynamic=not args.static_only,
        trials=args.trials,
        seed=args.seed,
        **extras,
    )
    print(result.render())
    _write_json(args.json, result.to_dict())
    if args.static_only:
        return 0
    return 0 if result.validated else 1


def _cmd_fence(args: argparse.Namespace) -> int:
    result = run_experiment(
        "fence_study",
        machine=_machine(args),
        benchmarks=args.benchmarks or None,
        scale=args.scale,
        window=args.window,
        max_cycles=args.max_cycles,
    )
    print(result.render())
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_precision(args: argparse.Namespace) -> int:
    from .analysis.symx import DEFAULT_MAX_PATHS, DEFAULT_MAX_STEPS

    result = run_experiment(
        "precision_study",
        machine=_machine(args),
        benchmarks=args.benchmarks or None,
        scale=args.scale,
        workers=args.workers,
        window=args.window,
        max_paths=(args.max_paths if args.max_paths is not None
                   else DEFAULT_MAX_PATHS),
        max_steps=(args.max_steps if args.max_steps is not None
                   else DEFAULT_MAX_STEPS),
        replay=not args.no_replay,
        summary_cache=args.summary_cache,
    )
    print(result.render())
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(result.to_dict(), handle, indent=2)
        print(f"wrote {args.json}")
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    result = run_experiment("figure5",
                            benchmarks=args.benchmarks or None,
                            scale=args.scale,
                            checkpoint=args.checkpoint,
                            resume=args.resume,
                            workers=args.workers)
    print(result.render())
    if args.json:
        from .experiments.export import dump_json, figure5_to_dict
        dump_json(figure5_to_dict(result), args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    result = run_experiment("table4")
    print(result.render())
    return 0 if result.all_match_paper() else 1


def _cmd_table5(args: argparse.Namespace) -> int:
    result = run_experiment("table5",
                            benchmarks=args.benchmarks or None,
                            scale=args.scale,
                            checkpoint=args.checkpoint,
                            resume=args.resume,
                            workers=args.workers)
    print(result.render())
    if args.json:
        from .experiments.export import dump_json, table5_to_dict
        dump_json(table5_to_dict(result), args.json)
        print(f"wrote {args.json}")
    return 0


def _cmd_table6(args: argparse.Namespace) -> int:
    result = run_experiment("table6",
                            benchmarks=args.benchmarks or None,
                            scale=args.scale)
    print(result.render())
    return 0


def _cmd_lru(args: argparse.Namespace) -> int:
    result = run_experiment("lru_study",
                            benchmarks=args.benchmarks or None,
                            scale=args.scale)
    print(result.render())
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    print(render_area_study(run_area_study()))
    return 0


def _fuzz_generator_config(args: argparse.Namespace,
                           secret: bool) -> "object":
    from .fuzz import GeneratorConfig
    if secret:
        return GeneratorConfig(secret=True, length=args.length or 20,
                               loops=False)
    if args.length:
        return GeneratorConfig(length=args.length)
    return GeneratorConfig()


def _write_json(path: Optional[str], payload: object) -> None:
    if not path:
        return
    import json
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _cmd_fuzz_diff(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .core.defense import normalize_defense_name
    from .fuzz import (ALL_MODES, case_seed, differential_check,
                       generate_program, run_diff_campaign)
    modes = tuple(normalize_defense_name(m) for m in args.modes) \
        if args.modes else ALL_MODES
    config = _fuzz_generator_config(args, secret=False)
    machine = _machine(args)
    if args.only is not None:
        seed = case_seed(args.seed, args.only)
        generated = generate_program(seed, config)  # type: ignore[arg-type]
        outcome = differential_check(generated.program, modes=modes,
                                     machine=machine)
        print(f"case {args.only} (seed {seed!r}):")
        print(outcome.render())
        return 0 if outcome.clean else 1
    result = run_diff_campaign(
        args.seed, args.count,
        config=config,  # type: ignore[arg-type]
        modes=modes, machine=machine,
        checkpoint=Path(args.checkpoint) if args.checkpoint else None,
        resume=not args.no_resume,
        minimize=not args.no_minimize,
        regressions=Path(args.pin_dir) if args.pin_dir else None,
        progress=print,
    )
    print(f"diff campaign {args.seed!r}: {result.cases} programs, "
          f"{result.invalid} invalid, {result.resumed} resumed, "
          f"{result.disagreements} mismatch(es) "
          f"[{result.duration_s:.1f}s]")
    _write_json(args.json, result.to_dict())
    return 0 if result.clean else 1


def _cmd_fuzz_certify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .fuzz import (case_seed, certify_agreement, generate_program,
                       run_certify_campaign)
    config = _fuzz_generator_config(args, secret=True)
    machine = _machine(args)
    if args.only is not None:
        seed = case_seed(args.seed, args.only)
        generated = generate_program(seed, config)  # type: ignore[arg-type]
        outcome = certify_agreement(
            generated.program, generated.secret_words, machine=machine)
        print(f"case {args.only} (seed {seed!r}):")
        if outcome is None:
            print("invalid program (dynamic run did not halt)")
            return 0
        for line in outcome.to_dict().items():
            print(f"  {line[0]}: {line[1]}")
        return 0 if outcome.clean else 1
    result = run_certify_campaign(
        args.seed, args.count,
        config=config,  # type: ignore[arg-type]
        machine=machine,
        checkpoint=Path(args.checkpoint) if args.checkpoint else None,
        resume=not args.no_resume,
        minimize=not args.no_minimize,
        regressions=Path(args.pin_dir) if args.pin_dir else None,
        progress=print,
    )
    verdicts = ", ".join(f"{k}={v}"
                         for k, v in sorted(result.verdicts.items()))
    print(f"certify campaign {args.seed!r}: {result.cases} programs "
          f"({verdicts}), {result.explained} explained, "
          f"{result.disagreements} disagreement(s) "
          f"[{result.duration_s:.1f}s]")
    _write_json(args.json, result.to_dict())
    return 0 if result.clean else 1


def _cmd_fuzz_evolve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis.corpus import (IngestedGadget,
                                  register_ingested_gadget)
    from .analysis.verify import corpus_precision
    from .core.defense import normalize_defense_name
    from .fuzz import ALL_MODES, run_evolve_campaign
    modes = tuple(normalize_defense_name(m) for m in args.modes) \
        if args.modes else ALL_MODES
    result, survivors = run_evolve_campaign(
        args.seed,
        modes=modes,
        generated_seeds=args.generated_seeds,
        generations=args.generations,
        population=args.population,
        offspring=args.offspring,
        machine=_machine(args),
        regressions=Path(args.pin_dir) if args.pin_dir else None,
        progress=print,
    )
    print(f"evolve campaign {args.seed!r}: {result.cases} "
          f"(seed x mode) runs, {len(survivors)} verified "
          f"survivor(s) [{result.duration_s:.1f}s]")
    if survivors:
        for case in survivors:
            register_ingested_gadget(IngestedGadget(
                name=case.case_id, source=case.source,
                base_address=case.base_address, is_gadget=True,
                secret_words=case.secret_words,
                origin=f"fuzz-evolve:{','.join(case.modes)}"))
        precision = corpus_precision()
        print("precision over the extended corpus "
              f"({len(precision.cases)} cases):")
        print(precision.render())
    _write_json(args.json, result.to_dict())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        rate=args.rate,
        burst=args.burst,
        checkpoint=args.checkpoint,
        machine=args.machine,
        default_wall_clock=args.wall_clock,
        drain_grace=args.drain_grace,
    )
    try:
        asyncio.run(run_server(config))
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Conditional Speculation (HPCA 2019) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="assemble and simulate a program")
    p_run.add_argument("program", help="assembly source file")
    p_run.add_argument("--max-cycles", type=int, default=2_000_000)
    p_run.add_argument("--regs", action="store_true",
                       help="dump non-zero registers")
    p_run.add_argument("--trace", action="store_true",
                       help="print a pipeline trace")
    p_run.add_argument("--trace-last", type=int, default=40,
                       help="trace records to print (default 40)")
    _add_machine_arg(p_run)
    _add_mode_arg(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_analyze = sub.add_parser(
        "analyze",
        help="statically scan a program for Spectre gadgets",
    )
    p_analyze.add_argument("program",
                           help="assembly source file, or "
                                "corpus:<kind>[:<variant>] for a "
                                "built-in gadget driver")
    p_analyze.add_argument("--window", type=int, default=None,
                           help="speculation window in instructions "
                                "(default: analysis default, ~ROB size)")
    p_analyze.add_argument("--json", default=None,
                           help="also write the findings as JSON")
    p_analyze.add_argument("--refine", action="store_true",
                           help="apply value-set refinement: refute "
                                "findings whose speculative loads are "
                                "provably in-bounds")
    p_analyze.add_argument("--fix", action="store_true",
                           help="synthesize a minimal fence placement "
                                "for the confirmed findings and verify "
                                "it (implies --refine)")
    p_analyze.add_argument("--certify", action="store_true",
                           help="run the symbolic speculative-"
                                "noninterference certifier; attaches a "
                                "per-finding certificate to --json and "
                                "(with --fix) proves the fenced image")
    p_analyze.add_argument("--max-paths", type=int, default=None,
                           help="symbolic path budget for --certify "
                                "(exhaustion degrades to UNKNOWN)")
    p_analyze.add_argument("--summary-cache", default=None,
                           metavar="PATH",
                           help="persist CFG/loop summaries for "
                                "--refine/--certify across runs "
                                "(content-addressed; safe to share)")
    p_analyze.add_argument("--secret", action="append", default=None,
                           metavar="ADDR",
                           help="word address holding a secret (may "
                                "repeat; accepts 0x...; corpus "
                                "programs default to their layout's "
                                "secret)")
    p_analyze.add_argument("--verify", action="store_true",
                           help="simulate the program and cross-check "
                                "static coverage of the dynamic "
                                "security dependences")
    p_analyze.add_argument("--fail-on-findings", action="store_true",
                           help="exit non-zero when gadgets survive "
                                "(confirmed findings under --refine; "
                                "lint mode)")
    p_analyze.add_argument("--max-cycles", type=int, default=2_000_000)
    _add_machine_arg(p_analyze)
    _add_mode_arg(p_analyze)
    p_analyze.set_defaults(func=_cmd_analyze)

    p_certify = sub.add_parser(
        "certify",
        help="symbolically certify programs speculatively "
             "noninterferent, or refute them with replayed witnesses",
    )
    p_certify.add_argument("programs", nargs="+",
                           help="assembly files or corpus:<kind>"
                                "[:<variant>] specs")
    p_certify.add_argument("--window", type=int, default=None,
                           help="speculation window in instructions "
                                "(default: analysis default)")
    p_certify.add_argument("--max-depth", type=int, default=None,
                           help="nested misprediction depth (default 2)")
    p_certify.add_argument("--max-paths", type=int, default=None,
                           help="symbolic path budget (exhaustion "
                                "degrades to UNKNOWN, exit 1)")
    p_certify.add_argument("--max-steps", type=int, default=None,
                           help="symbolic step budget")
    p_certify.add_argument("--no-replay", action="store_true",
                           help="skip replaying witnesses on the "
                                "dynamic pipeline")
    p_certify.add_argument("--summary-cache", default=None,
                           metavar="PATH",
                           help="persist CFG/loop summaries across "
                                "runs (content-addressed; safe to "
                                "share)")
    p_certify.add_argument("--secret", action="append", default=None,
                           metavar="ADDR",
                           help="word address holding a secret (may "
                                "repeat; corpus programs default to "
                                "their layout's secret)")
    p_certify.add_argument("--fail-on-leak", action="store_true",
                           help="exit non-zero on LEAKY verdicts too "
                                "(lint mode)")
    p_certify.add_argument("--json", default=None,
                           help="write all certification results as "
                                "JSON")
    _add_machine_arg(p_certify)
    p_certify.set_defaults(func=_cmd_certify)

    p_attack = sub.add_parser("attack", help="run a Spectre PoC")
    p_attack.add_argument("variant", choices=sorted(_ATTACKS))
    p_attack.add_argument("--channel", default="flush+reload",
                          choices=sorted(_CHANNELS))
    p_attack.add_argument("--same-page", action="store_true",
                          help="same-page transmit layout (non-shared "
                               "scenario; evades the TPBuf)")
    _add_machine_arg(p_attack)
    _add_mode_arg(p_attack)
    p_attack.set_defaults(func=_cmd_attack)

    p_fence = sub.add_parser(
        "fence",
        help="fence overhead study: unsafe vs fence-all vs synthesized "
             "fences vs the hardware filters",
    )
    p_fence.add_argument("benchmarks", nargs="*",
                         help="SPEC-like benchmark subset (default: all; "
                              "the gadget corpus is always included)")
    p_fence.add_argument("--scale", type=float, default=0.3,
                         help="SPEC workload scale (default 0.3)")
    p_fence.add_argument("--window", type=int, default=None,
                         help="speculation window (default: ROB size)")
    p_fence.add_argument("--max-cycles", type=int, default=2_000_000)
    p_fence.add_argument("--json", default=None,
                         help="also write the study table as JSON")
    _add_machine_arg(p_fence)
    p_fence.set_defaults(func=_cmd_fence)

    p_precision = sub.add_parser(
        "precision",
        help="static precision study: taint vs +valueset vs +symx "
             "over the corpus + SPEC-like workloads",
    )
    p_precision.add_argument(
        "benchmarks", nargs="*",
        help="SPEC-like benchmark subset (default: all; the gadget "
             "corpus is always included)")
    p_precision.add_argument("--scale", type=float, default=0.1,
                             help="SPEC workload scale (default 0.1)")
    p_precision.add_argument("--window", type=int, default=None,
                             help="speculation window "
                                  "(default: analysis default)")
    p_precision.add_argument("--max-paths", type=int, default=None,
                             help="certifier path budget")
    p_precision.add_argument("--max-steps", type=int, default=None,
                             help="certifier step budget")
    p_precision.add_argument("--no-replay", action="store_true",
                             help="skip dynamic witness replay")
    p_precision.add_argument("--workers", type=int, default=1,
                             help="fan rows across N worker processes "
                                  "(default 1; identical table)")
    p_precision.add_argument("--summary-cache", default=None,
                             metavar="PATH",
                             help="persist CFG/loop summaries across "
                                  "runs (serial only)")
    p_precision.add_argument("--json", default=None,
                             help="also write the study table as JSON")
    _add_machine_arg(p_precision)
    p_precision.set_defaults(func=_cmd_precision)

    p_bench = sub.add_parser(
        "bench",
        help="simulate one SPEC profile, or --suite for the "
             "performance harness (BENCH_sweep.json)",
    )
    p_bench.add_argument("benchmarks", nargs="*",
                         help="one benchmark, or a subset with --suite "
                              "(default with --suite: all)")
    p_bench.add_argument("--scale", type=float, default=1.0)
    p_bench.add_argument("--suite", action="store_true",
                         help="run the sweep benchmark harness: "
                              "simulated-instructions/sec and "
                              "serial-vs-parallel wall-clock")
    p_bench.add_argument("--workers", type=int, default=None,
                         help="process-pool size for the parallel pass "
                              "(default: one per CPU, minimum 2)")
    p_bench.add_argument("--serial-only", action="store_true",
                         help="skip the parallel pass (throughput only)")
    p_bench.add_argument("--out", default=None, metavar="JSON",
                         help="write the harness result "
                              "(e.g. BENCH_sweep.json)")
    _add_machine_arg(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_sweep = sub.add_parser(
        "sweep",
        help="checkpointed benchmark x mode sweep (crash-safe, "
             "resumable, optional fault injection)",
    )
    p_sweep.add_argument("benchmarks", nargs="*",
                         help="benchmark subset (default: all)")
    p_sweep.add_argument("--modes", nargs="*", default=None,
                         choices=_mode_choices(),
                         help="defenses (default: the paper's four "
                              "modes; any registered zoo name works)")
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument("--max-cycles", type=int, default=None)
    p_sweep.add_argument("--wall-clock-budget", type=float, default=None,
                         help="per-run wall-clock budget in seconds")
    p_sweep.add_argument("--retries", type=int, default=2,
                         help="retries per failing run (default 2)")
    p_sweep.add_argument("--checkpoint", default=None,
                         help="JSONL checkpoint file; completed "
                              "(benchmark, mode) pairs are durably "
                              "recorded as they finish")
    p_sweep.add_argument("--resume", action="store_true",
                         help="skip pairs already in --checkpoint")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="process-pool size; >1 fans independent "
                              "runs across cores (default 1)")
    p_sweep.add_argument("--inject", action="store_true",
                         help="run under seeded fault injection")
    p_sweep.add_argument("--fault-seed", type=int, default=0,
                         help="fault-injection seed (default 0)")
    _add_machine_arg(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_shoot = sub.add_parser(
        "shootout",
        help="defense zoo shootout: attack suite x SPEC overhead x "
             "area frontier over every registered defense "
             "(docs/defenses.md)",
    )
    p_shoot.add_argument("benchmarks", nargs="*",
                         help="SPEC subset (default: all profiles)")
    p_shoot.add_argument("--defenses", nargs="*", default=None,
                         choices=_mode_choices(),
                         help="defense subset (default: whole zoo; "
                              "origin is always included)")
    p_shoot.add_argument("--attacks", nargs="*", default=None,
                         choices=list(ATTACK_SUITE),
                         help="attack subset (default: all five)")
    p_shoot.add_argument("--scale", type=float, default=0.05,
                         help="SPEC profile scale (default 0.05)")
    p_shoot.add_argument("--trials", type=int, default=3,
                         help="secrets swept per attack (default 3)")
    p_shoot.add_argument("--no-evolve", action="store_true",
                         help="skip the adversarial evolve leg")
    p_shoot.add_argument("--generations", type=int, default=4,
                         help="evolve generations (default 4)")
    p_shoot.add_argument("--seed", default="shootout",
                         help="evolve RNG seed (default: shootout)")
    p_shoot.add_argument("--quiet", action="store_true",
                         help="suppress per-leg progress on stderr")
    p_shoot.add_argument("--json", default=None,
                         help="write the frontier as JSON")
    _add_machine_arg(p_shoot)
    p_shoot.set_defaults(func=_cmd_shootout)

    p_pre = sub.add_parser(
        "prescreen",
        help="static defense-coverage pre-screen: predict the attack x "
             "defense matrix and cross-validate it against the "
             "dynamic shootout (docs/analysis.md)",
    )
    p_pre.add_argument("--defenses", nargs="*", default=None,
                       choices=_mode_choices(),
                       help="defense subset (default: whole zoo)")
    p_pre.add_argument("--attacks", nargs="*", default=None,
                       choices=list(ATTACK_SUITE),
                       help="attack subset (default: all five)")
    p_pre.add_argument("--window", type=int, default=None,
                       help="speculation window for the static passes "
                            "(default: analysis default)")
    p_pre.add_argument("--static-only", action="store_true",
                       help="skip the dynamic cross-validation leg")
    p_pre.add_argument("--trials", type=int, default=1,
                       help="secrets swept per dynamic attack "
                            "(default 1)")
    p_pre.add_argument("--seed", default="prescreen",
                       help="dynamic-leg RNG seed (default: prescreen)")
    p_pre.add_argument("--json", default=None,
                       help="write matrix + validation as JSON")
    _add_machine_arg(p_pre)
    p_pre.set_defaults(func=_cmd_prescreen)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="adversarial fuzzing: differential, certifier-agreement "
             "and gadget-evolution campaigns (docs/fuzzing.md)",
    )
    fuzz_sub = p_fuzz.add_subparsers(dest="fuzz_command", required=True)

    def _fuzz_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", default="fuzz",
                       help="campaign master seed (default: fuzz)")
        p.add_argument("--length", type=int, default=None,
                       help="generated program body length")
        p.add_argument("--pin-dir", default=None,
                       help="write FuzzCase files for disagreements "
                            "here (e.g. tests/data/fuzz_regressions)")
        p.add_argument("--json", default=None,
                       help="write the campaign summary as JSON")
        p.add_argument("--machine", default="tiny",
                       choices=["paper", "a57-like", "i7-like",
                                "xeon-like", "tiny"],
                       help="machine preset (default: tiny)")
        p.add_argument("--machine-file", default=None,
                       help="JSON machine description")

    p_fdiff = fuzz_sub.add_parser(
        "diff", help="OoO-vs-oracle differential + round-trip sweep")
    _fuzz_common(p_fdiff)
    p_fdiff.add_argument("--count", type=int, default=500,
                         help="programs to generate (default 500)")
    p_fdiff.add_argument("--modes", nargs="*", default=None,
                         choices=_mode_choices(),
                         help="defenses (default: the paper's four "
                              "modes)")
    p_fdiff.add_argument("--checkpoint", default=None,
                         help="JSONL campaign checkpoint")
    p_fdiff.add_argument("--no-resume", action="store_true",
                         help="restart even if --checkpoint matches")
    p_fdiff.add_argument("--no-minimize", action="store_true",
                         help="pin disagreements unminimized")
    p_fdiff.add_argument("--only", type=int, default=None,
                         help="replay one case index and exit")
    p_fdiff.set_defaults(func=_cmd_fuzz_diff)

    p_fcert = fuzz_sub.add_parser(
        "certify",
        help="symx verdict vs dynamic two-secret reality sweep")
    _fuzz_common(p_fcert)
    p_fcert.add_argument("--count", type=int, default=100,
                         help="programs to generate (default 100)")
    p_fcert.add_argument("--checkpoint", default=None,
                         help="JSONL campaign checkpoint")
    p_fcert.add_argument("--no-resume", action="store_true",
                         help="restart even if --checkpoint matches")
    p_fcert.add_argument("--no-minimize", action="store_true",
                         help="pin disagreements unminimized")
    p_fcert.add_argument("--only", type=int, default=None,
                         help="replay one case index and exit")
    p_fcert.set_defaults(func=_cmd_fuzz_certify)

    p_fev = fuzz_sub.add_parser(
        "evolve",
        help="evolve gadget variants against each defense mode; "
             "verified survivors extend the analysis corpus")
    _fuzz_common(p_fev)
    p_fev.add_argument("--modes", nargs="*", default=None,
                       choices=_mode_choices(),
                       help="defenses (default: the paper's four "
                            "modes)")
    p_fev.add_argument("--generated-seeds", type=int, default=2,
                       help="leaky generated seed programs (default 2)")
    p_fev.add_argument("--generations", type=int, default=6)
    p_fev.add_argument("--population", type=int, default=5)
    p_fev.add_argument("--offspring", type=int, default=3)
    p_fev.set_defaults(func=_cmd_fuzz_evolve)

    p_serve = sub.add_parser(
        "serve",
        help="run the analysis-as-a-service daemon (HTTP/JSON job "
             "queue with tiered graceful degradation; see "
             "docs/serving.md)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8377,
                         help="listen port (0 = ephemeral; default 8377)")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="analysis worker threads (default 4)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="background-job queue bound; submissions "
                              "beyond it are shed with 429 (default 64)")
    p_serve.add_argument("--rate", type=float, default=50.0,
                         help="per-client admission rate, requests/s "
                              "(default 50)")
    p_serve.add_argument("--burst", type=float, default=100.0,
                         help="per-client burst allowance (default 100)")
    p_serve.add_argument("--checkpoint", default=None,
                         help="JSONL job journal for crash-safe "
                              "restart/resume (default: ephemeral)")
    p_serve.add_argument("--machine", default="tiny",
                         choices=["paper", "a57-like", "i7-like",
                                  "xeon-like", "tiny"],
                         help="machine preset for simulate jobs "
                              "(default: tiny)")
    p_serve.add_argument("--wall-clock", type=float, default=20.0,
                         help="default per-job wall-clock budget in "
                              "seconds (default 20)")
    p_serve.add_argument("--drain-grace", type=float, default=30.0,
                         help="seconds a SIGTERM drain waits before "
                              "cancelling in-flight jobs (default 30)")
    p_serve.set_defaults(func=_cmd_serve)

    for name, func, with_scale in [
        ("figure5", _cmd_figure5, True),
        ("table4", _cmd_table4, False),
        ("table5", _cmd_table5, True),
        ("table6", _cmd_table6, True),
        ("lru", _cmd_lru, True),
        ("area", _cmd_area, False),
    ]:
        p_exp = sub.add_parser(name, help=f"regenerate {name}")
        if with_scale:
            p_exp.add_argument("--scale", type=float, default=1.0)
            p_exp.add_argument("--json", default=None,
                               help="also write the result as JSON")
            p_exp.add_argument("benchmarks", nargs="*",
                               help="benchmark subset (default: all)")
        if name in ("figure5", "table5"):
            p_exp.add_argument("--checkpoint", default=None,
                               help="JSONL checkpoint file for "
                                    "crash-safe regeneration")
            p_exp.add_argument("--resume", action="store_true",
                               help="skip runs already in --checkpoint")
            p_exp.add_argument("--workers", type=int, default=1,
                               help="process-pool size (default 1)")
        p_exp.set_defaults(func=func)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
