"""Branch prediction: gshare direction predictor plus a tag-less BTB.

The BTB is deliberately direct-mapped and tag-less, like the simplest
commodity designs: two branches whose PCs alias to the same entry share
it.  This is exactly the property Spectre V2 exploits (the attacker
trains the victim's indirect-jump entry from an aliasing PC), so the
predictor is both the performance substrate and part of the attack
surface.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from ..stats import StatGroup

_TAKEN_THRESHOLD = 2  # 2-bit counters: 0,1 predict not-taken; 2,3 taken.


@dataclass(frozen=True)
class Prediction:
    """Fetch-time prediction for one instruction."""

    taken: bool
    target: int


class BranchPredictor:
    """gshare + tag-less BTB + return-address stack.

    The RAS is speculative (pushed/popped at fetch time) and is not
    repaired on squash - the behaviour ret2spec-style attacks rely on.
    """

    def __init__(self, history_bits: int, btb_entries: int,
                 ras_entries: int = 16) -> None:
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._counters: List[int] = [1] * (1 << history_bits)
        self._btb_entries = btb_entries
        self._btb: List[Optional[int]] = [None] * btb_entries
        self._ras: List[int] = []
        self._ras_entries = ras_entries
        self.stats = StatGroup("branch_predictor")

    # ---- indexing -------------------------------------------------------

    def _counter_index(self, pc: int) -> int:
        return ((pc // INSTRUCTION_BYTES) ^ self._history) & self._history_mask

    def btb_index(self, pc: int) -> int:
        """BTB slot for ``pc`` (public: attacks reason about aliasing)."""
        return (pc // INSTRUCTION_BYTES) % self._btb_entries

    # ---- prediction -------------------------------------------------------

    def predict(self, pc: int, instruction: Instruction) -> Prediction:
        """Predict direction and target for a control instruction.

        Direct branches take their target from the instruction word;
        indirect jumps consult the BTB (falling back to not-taken /
        fall-through when the BTB slot is cold).
        """
        fallthrough = pc + INSTRUCTION_BYTES
        op = instruction.op
        if op is Opcode.JMP:
            self.stats.incr("predict_direct_jumps")
            return Prediction(taken=True, target=instruction.target)
        if op is Opcode.CALL:
            self.stats.incr("predict_calls")
            self.ras_push(fallthrough)
            return Prediction(taken=True, target=instruction.target)
        if op is Opcode.RET:
            self.stats.incr("predict_returns")
            target = self.ras_pop()
            if target is None:
                return Prediction(taken=False, target=fallthrough)
            return Prediction(taken=True, target=target)
        if op is Opcode.JMPI:
            self.stats.incr("predict_indirect_jumps")
            cached = self._btb[self.btb_index(pc)]
            if cached is None:
                return Prediction(taken=False, target=fallthrough)
            return Prediction(taken=True, target=cached)
        # Conditional branch: gshare direction, instruction-word target.
        self.stats.incr("predict_conditional")
        counter = self._counters[self._counter_index(pc)]
        taken = counter >= _TAKEN_THRESHOLD
        return Prediction(
            taken=taken,
            target=instruction.target if taken else fallthrough,
        )

    # ---- training (at branch resolution) --------------------------------------

    def update(self, pc: int, instruction: Instruction, taken: bool,
               target: int, mispredicted: bool) -> None:
        """Train the predictor with the resolved outcome."""
        op = instruction.op
        if mispredicted:
            self.stats.incr("mispredictions")
        self.stats.incr("resolved")
        if op is Opcode.JMPI:
            self._btb[self.btb_index(pc)] = target
            return
        if op in (Opcode.JMP, Opcode.CALL, Opcode.RET):
            return
        index = self._counter_index(pc)
        counter = self._counters[index]
        if taken:
            self._counters[index] = min(3, counter + 1)
        else:
            self._counters[index] = max(0, counter - 1)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    # ---- return-address stack --------------------------------------------------

    def ras_push(self, return_address: int) -> None:
        """Push at fetch time; oldest entry falls off when full."""
        self._ras.append(return_address)
        if len(self._ras) > self._ras_entries:
            self._ras.pop(0)

    def ras_pop(self) -> Optional[int]:
        if not self._ras:
            return None
        return self._ras.pop()

    def ras_depth(self) -> int:
        return len(self._ras)

    # ---- introspection -----------------------------------------------------------

    def btb_target(self, pc: int) -> Optional[int]:
        return self._btb[self.btb_index(pc)]

    def counter_value(self, pc: int) -> int:
        return self._counters[self._counter_index(pc)]

    def misprediction_rate(self) -> float:
        resolved = self.stats.get("resolved")
        if resolved == 0:
            return 0.0
        return self.stats.get("mispredictions") / resolved
