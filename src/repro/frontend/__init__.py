"""Front-end components: branch prediction."""
from .branch_predictor import BranchPredictor, Prediction

__all__ = ["BranchPredictor", "Prediction"]
