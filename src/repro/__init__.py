"""repro - a reproduction of *Conditional Speculation: An Effective
Approach to Safeguard Out-of-Order Execution Against Spectre Attacks*
(Li, Zhao, Hou, Zhang, Meng - HPCA 2019).

The package provides:

- a cycle-level out-of-order CPU simulator (:mod:`repro.pipeline`) with
  caches, TLBs and branch prediction (:mod:`repro.memory`,
  :mod:`repro.frontend`) and a small RISC ISA (:mod:`repro.isa`);
- the paper's defense (:mod:`repro.core`): security dependence matrix,
  Cache-hit hazard filter, TPBuf / S-Pattern filter, the speculative
  LRU policies and the ICache-hit extension;
- Spectre V1 / V2 / V4 / SpectrePrime proof-of-concept attacks with
  five cache side-channel receivers (:mod:`repro.attacks`);
- SPEC-CPU-2006-profile synthetic workloads (:mod:`repro.workloads`);
- experiment drivers regenerating every table and figure of the
  paper's evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import Processor, ProgramBuilder, SecurityConfig

    b = ProgramBuilder()
    b.li(1, 5).label("loop").addi(1, 1, -1).bne(1, 0, "loop").halt()
    cpu = Processor(b.build(), security=SecurityConfig.cache_hit_tpbuf())
    report = cpu.run()
    print(report.render())
"""
from .core.policy import EVALUATION_MODES, ProtectionMode, SecurityConfig
from .errors import CycleBudgetExceeded, DeadlockError, SimulationError
from .isa import Instruction, Opcode, Program, ProgramBuilder, assemble
from .isa.oracle import run_oracle
from .memory.replacement import SpeculativeLRUPolicy
from .params import (
    MachineParams,
    a57_like,
    i7_like,
    paper_config,
    preset,
    tiny_config,
    xeon_like,
)
from .pipeline import PipelineTracer, Processor, SimReport
from .robustness import FaultInjector, FaultPlan
from .config_io import load_machine, machine_from_dict, save_machine

__version__ = "1.0.0"

__all__ = [
    "EVALUATION_MODES",
    "ProtectionMode",
    "SecurityConfig",
    "SpeculativeLRUPolicy",
    "Instruction",
    "Opcode",
    "Program",
    "ProgramBuilder",
    "assemble",
    "run_oracle",
    "MachineParams",
    "paper_config",
    "a57_like",
    "i7_like",
    "xeon_like",
    "tiny_config",
    "preset",
    "Processor",
    "SimReport",
    "PipelineTracer",
    "SimulationError",
    "DeadlockError",
    "CycleBudgetExceeded",
    "FaultPlan",
    "FaultInjector",
    "load_machine",
    "machine_from_dict",
    "save_machine",
    "__version__",
]
