"""SPEC CPU 2006 benchmark profiles.

One synthetic profile per benchmark of the paper's Table V, calibrated
so the characteristics that drive the evaluation land in the right
band:

- *L1 hit rate*: working-set size relative to the 64KB L1 plus the
  stream stride (a stream with stride ``s`` over a >L1 set hits at
  ``~1 - s/64``); small working sets give the high-hit compute codes.
- *S-Pattern mismatch*: the number of concurrently touched pages.
  Single-stream codes (lbm) leave same-page histories in the TPBuf, so
  their suspect misses look safe (high mismatch); many-stream codes
  (libquantum, bwaves, soplex, omnetpp) always have another page in
  flight, so their misses match the S-Pattern (low mismatch).
- *Branch misprediction*: data-dependent branch count (astar, gobmk,
  sjeng are the branchy ones; astar's high mispredict rate is called
  out in Section VI.C).

Absolute numbers will not equal gem5-with-reference-inputs; the bands
and the cross-benchmark ordering are what the experiments assert.
"""
from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigError
from ..isa.program import Program
from .synthetic import SyntheticSpec, build_workload

KB = 1024

#: Calibrated per-benchmark profiles (order follows Table V).
SPEC_PROFILES: Dict[str, SyntheticSpec] = {
    "astar": SyntheticSpec(
        name="astar", iterations=260, stream_loads=3, stores=1,
        chase_loads=1, alu_ops=5, random_branches=1,
        predictable_branches=4, page_streams=1, stride=16,
        stream_bytes=16 * KB, chase_pages=48, slow_branch_chain=2, seed=11,
    ),
    "bwaves": SyntheticSpec(
        name="bwaves", iterations=240, stream_loads=6, stores=1,
        alu_ops=8, random_branches=0, predictable_branches=1,
        page_streams=6, stride=16, stream_bytes=128 * KB, slow_branch_chain=2, seed=12,
    ),
    "bzip2": SyntheticSpec(
        name="bzip2", iterations=260, stream_loads=4, stores=1,
        random_loads=1, alu_ops=6, random_branches=1,
        predictable_branches=2, page_streams=3, stride=8,
        stream_bytes=8 * KB, slow_branch_chain=2, seed=13,
    ),
    "dealII": SyntheticSpec(
        name="dealII", iterations=600, stream_loads=3, stores=1,
        alu_ops=10, random_branches=0, predictable_branches=1,
        page_streams=2, stride=8, stream_bytes=2 * KB, slow_branch_chain=3, seed=14,
    ),
    "gamess": SyntheticSpec(
        name="gamess", iterations=550, stream_loads=3, stores=1,
        alu_ops=12, random_branches=0, predictable_branches=1,
        page_streams=2, stride=8, stream_bytes=4 * KB, slow_branch_chain=4, seed=15,
    ),
    "gcc": SyntheticSpec(
        name="gcc", iterations=260, stream_loads=3, stores=1,
        chase_loads=1, alu_ops=5, random_branches=1,
        predictable_branches=2, page_streams=2, stride=8,
        stream_bytes=8 * KB, chase_pages=24, slow_branch_chain=2, seed=16,
    ),
    "GemsFDTD": SyntheticSpec(
        name="GemsFDTD", iterations=800, stream_loads=4, stores=1,
        alu_ops=10, random_branches=0, predictable_branches=1,
        page_streams=4, stride=8, stream_bytes=2 * KB, slow_branch_chain=2, seed=17,
    ),
    "gobmk": SyntheticSpec(
        name="gobmk", iterations=260, stream_loads=3, stores=1,
        alu_ops=6, random_branches=1, predictable_branches=3,
        page_streams=1, stride=8, stream_bytes=16 * KB, slow_branch_chain=4, seed=18,
    ),
    "gromacs": SyntheticSpec(
        name="gromacs", iterations=280, stream_loads=4, stores=1,
        alu_ops=8, random_branches=1, predictable_branches=1,
        page_streams=2, stride=16, stream_bytes=8 * KB, slow_branch_chain=3, seed=19,
    ),
    "h264ref": SyntheticSpec(
        name="h264ref", iterations=600, stream_loads=4, stores=1,
        alu_ops=8, random_branches=1, predictable_branches=1,
        page_streams=1, stride=8, stream_bytes=2 * KB, slow_branch_chain=3, seed=20,
    ),
    "hmmer": SyntheticSpec(
        name="hmmer", iterations=600, stream_loads=4, stores=1,
        alu_ops=8, random_branches=0, predictable_branches=1,
        page_streams=5, stride=8, stream_bytes=2 * KB, slow_branch_chain=3, seed=21,
    ),
    "lbm": SyntheticSpec(
        name="lbm", iterations=220, stream_loads=5, stores=2,
        alu_ops=6, random_branches=0, predictable_branches=1,
        page_streams=1, stride=24, stream_bytes=256 * KB,
        stores_share_stream=True, seed=22,
    ),
    "leslie3d": SyntheticSpec(
        name="leslie3d", iterations=400, stream_loads=4, stores=1,
        alu_ops=8, random_branches=0, predictable_branches=1,
        page_streams=2, stride=8, stream_bytes=4 * KB, slow_branch_chain=3, seed=23,
    ),
    "libquantum": SyntheticSpec(
        name="libquantum", iterations=220, stream_loads=6, stores=1,
        alu_ops=4, random_branches=0, predictable_branches=1,
        page_streams=8, stride=16, stream_bytes=128 * KB, slow_branch_chain=2, seed=24,
    ),
    "mcf": SyntheticSpec(
        name="mcf", iterations=220, stream_loads=2, stores=1,
        chase_loads=2, alu_ops=4, random_branches=1,
        predictable_branches=4, page_streams=1, stride=8,
        stream_bytes=16 * KB, chase_pages=96, seed=25,
    ),
    "milc": SyntheticSpec(
        name="milc", iterations=220, stream_loads=5, stores=1,
        alu_ops=6, random_branches=0, predictable_branches=1,
        page_streams=5, stride=32, stream_bytes=256 * KB, slow_branch_chain=2, seed=26,
    ),
    "namd": SyntheticSpec(
        name="namd", iterations=600, stream_loads=3, stores=1,
        alu_ops=12, random_branches=0, predictable_branches=1,
        page_streams=1, stride=8, stream_bytes=2 * KB, slow_branch_chain=4, seed=27,
    ),
    "omnetpp": SyntheticSpec(
        name="omnetpp", iterations=240, stream_loads=3, stores=1,
        chase_loads=1, alu_ops=5, random_branches=0,
        predictable_branches=1, page_streams=4, stride=16,
        stream_bytes=64 * KB, chase_pages=64, slow_branch_chain=2, seed=28,
    ),
    "sjeng": SyntheticSpec(
        name="sjeng", iterations=650, stream_loads=3, stores=1,
        alu_ops=8, random_branches=1, predictable_branches=4,
        page_streams=1, stride=8, stream_bytes=2 * KB, slow_branch_chain=5, seed=29,
    ),
    "soplex": SyntheticSpec(
        name="soplex", iterations=240, stream_loads=5, stores=1,
        alu_ops=6, random_branches=1, predictable_branches=1,
        page_streams=6, stride=16, stream_bytes=64 * KB, slow_branch_chain=2, seed=30,
    ),
    "sphinx3": SyntheticSpec(
        name="sphinx3", iterations=550, stream_loads=4, stores=1,
        alu_ops=8, random_branches=0, predictable_branches=1,
        page_streams=2, stride=8, stream_bytes=2 * KB, slow_branch_chain=3, seed=31,
    ),
    "zeusmp": SyntheticSpec(
        name="zeusmp", iterations=220, stream_loads=4, stores=2,
        alu_ops=8, random_branches=0, predictable_branches=1,
        page_streams=1, stride=24, stream_bytes=256 * KB,
        stores_share_stream=True, seed=47,
    ),
}


def spec_names() -> List[str]:
    """Benchmark names in Table V order."""
    return list(SPEC_PROFILES)


def spec_spec(name: str) -> SyntheticSpec:
    try:
        return SPEC_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown SPEC profile {name!r}; choose from {spec_names()}"
        ) from None


def spec_program(name: str, scale: float = 1.0) -> Program:
    """Build the synthetic program for one benchmark profile."""
    return build_workload(spec_spec(name), scale=scale)
