"""Workload generators.

:mod:`synthetic` provides parameterized program generators (streams,
pointer chases, random access, branchy control) whose knobs map onto
the characteristics that drive the paper's evaluation: L1 hit rate,
branch misprediction rate, and the number of concurrently touched
pages (the S-Pattern signature).  :mod:`spec2006` instantiates one
profile per benchmark of Table V.
"""
from .synthetic import SyntheticSpec, build_workload
from .spec2006 import SPEC_PROFILES, spec_names, spec_program, spec_spec

__all__ = [
    "SyntheticSpec",
    "build_workload",
    "SPEC_PROFILES",
    "spec_names",
    "spec_program",
    "spec_spec",
]
