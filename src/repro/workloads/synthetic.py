"""Parameterized synthetic workload generator.

A workload is a kernel loop over a mix of memory streams, pointer
chases, random accesses, ALU work and branches.  The knobs map onto the
microarchitectural characteristics the paper's evaluation keys on:

- ``stride`` and working-set size control the L1 hit rate (a sequential
  stream with stride ``s`` over a >L1 working set hits at ``1 - s/64``);
- ``page_streams`` controls how many distinct pages are touched by
  in-flight accesses, which is exactly what the TPBuf's S-Pattern
  detection observes (one bursty stream -> misses look safe; many
  interleaved streams -> misses match the S-Pattern);
- ``random_branches`` / ``predictable_branches`` set the branch
  misprediction rate;
- ``chase_loads`` adds serially dependent (pointer-chasing) loads.
"""
from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigError
from ..isa.builder import ProgramBuilder
from ..isa.program import Program

PAGE = 4096
LINE = 64
WORD = 8

#: Register allocation for generated kernels.
_R_LOOP = 1
_R_LCG = 2
_R_STREAM0 = 3          # r3.. one offset register per stream
_R_CHASE = 20
_R_ACC = 21
_R_SCRATCH = 22         # r22..r25 scratch
_MAX_STREAMS = 12

#: Data-region bases (virtual).
_STREAM_BASE = 0x100000
_STREAM_REGION = 0x80000      # 512KB per stream slot
_CHASE_BASE = 0xA00000
_RANDOM_DATA_BASE = 0x40000   # small resident page of random words
_STORE_BASE = 0xC00000


@dataclass(frozen=True)
class SyntheticSpec:
    """Recipe for one synthetic workload."""

    name: str
    #: Kernel-loop iterations (scaled by ``build_workload(scale=...)``).
    iterations: int = 200
    #: Sequential-stream loads per loop body.
    stream_loads: int = 4
    #: Stores per loop body (to a private store stream).
    stores: int = 1
    #: Pointer-chase (serially dependent) loads per body.
    chase_loads: int = 0
    #: Indirect (A[f(B[i])]) loads per body: the data load's address
    #: depends on an index load that may miss, so the data load can
    #: linger unissued for a DRAM latency.  These are the delinquent
    #: producers that make security dependence (suspicion) common and
    #: block the ROB head so completed suspects accumulate in the LSQ -
    #: the two effects the paper's Table V statistics hinge on.
    indirect_loads: int = 1
    #: Random-index loads per body (LCG over the working set).
    random_loads: int = 0
    #: Plain ALU operations per body.
    alu_ops: int = 6
    #: Data-dependent branches per body (~50% mispredicted each).
    random_branches: int = 0
    #: Loop-counter branches per body (learned quickly).
    predictable_branches: int = 1
    #: Perfectly predictable branches whose *condition* flows from the
    #: last loaded value, so they resolve late while predicting
    #: correctly.  Free on Origin; under BASELINE they hold younger
    #: memory accesses in the issue queue until they issue - the
    #: branch-memory security dependence cost of Section VI.C(1).
    slow_branches: int = 1
    #: Extra multiply chain feeding each slow branch's condition, for
    #: workloads whose branch conditions are computation- rather than
    #: memory-bound (chess/video codes): lengthens the unissued window
    #: of a perfectly predicted branch without adding cache misses.
    slow_branch_chain: int = 0
    #: Concurrent sequential streams, each on its own page range.
    page_streams: int = 1
    #: Bytes between consecutive accesses of one stream.
    stride: int = 8
    #: Working-set bytes per stream (power of two).
    stream_bytes: int = 64 * 1024
    #: Pages covered by the pointer-chase chain.
    chase_pages: int = 64
    #: Stores write back into the load stream's own pages
    #: (read-modify-write codes like lbm) instead of a private store
    #: region; keeps the in-flight page history single-page.
    stores_share_stream: bool = False
    #: RNG seed for instruction interleaving and data values.
    seed: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.page_streams <= _MAX_STREAMS:
            raise ConfigError("page_streams must be in [1, 12]")
        if self.stream_bytes & (self.stream_bytes - 1):
            raise ConfigError("stream_bytes must be a power of two")
        if self.stride % WORD != 0 or self.stride <= 0:
            raise ConfigError("stride must be a positive multiple of 8")

    def stream_base(self, index: int) -> int:
        return _STREAM_BASE + index * _STREAM_REGION


def _emit_stream_load(builder: ProgramBuilder, spec: SyntheticSpec,
                      stream: int) -> None:
    offset_reg = _R_STREAM0 + stream
    builder.li(_R_SCRATCH, spec.stream_base(stream))
    builder.add(_R_SCRATCH + 1, _R_SCRATCH, offset_reg)
    builder.load(_R_ACC, _R_SCRATCH + 1)
    builder.addi(offset_reg, offset_reg, spec.stride)
    builder.andi(offset_reg, offset_reg, spec.stream_bytes - 1)


def _emit_store(builder: ProgramBuilder, spec: SyntheticSpec,
                stream: int) -> None:
    offset_reg = _R_STREAM0 + stream
    if spec.stores_share_stream:
        base = spec.stream_base(stream)
    else:
        base = _STORE_BASE + stream * _STREAM_REGION
    builder.li(_R_SCRATCH, base)
    builder.add(_R_SCRATCH + 1, _R_SCRATCH, offset_reg)
    builder.store(_R_ACC, _R_SCRATCH + 1)


def _emit_chase_load(builder: ProgramBuilder) -> None:
    builder.load(_R_CHASE, _R_CHASE)


_R_IDX = 26
_R_IDX2 = 27


def _emit_indirect_load(builder: ProgramBuilder, spec: SyntheticSpec,
                        stream: int) -> None:
    """A[f(B[i])]: index load (advances the stream) feeding the address
    of a data load into the same stream's region."""
    offset_reg = _R_STREAM0 + stream
    base = spec.stream_base(stream)
    builder.li(_R_IDX2, base)
    builder.add(_R_IDX2, _R_IDX2, offset_reg)
    builder.load(_R_IDX, _R_IDX2)                 # index load (can miss)
    builder.addi(offset_reg, offset_reg, spec.stride)
    builder.andi(offset_reg, offset_reg, spec.stream_bytes - 1)
    # Spread the index pseudo-randomly over the region even when the
    # loaded word is zero, while keeping the address data-dependent.
    builder.li(_R_IDX2, 2654435761)
    builder.mul(_R_IDX2, offset_reg, _R_IDX2)
    builder.xor(_R_IDX, _R_IDX, _R_IDX2)
    builder.andi(_R_IDX, _R_IDX, (spec.stream_bytes - 1) & ~7)
    builder.li(_R_IDX2, base)
    builder.add(_R_IDX2, _R_IDX2, _R_IDX)
    builder.load(_R_ACC, _R_IDX2)                 # delinquent data load


def _emit_random_load(builder: ProgramBuilder, spec: SyntheticSpec) -> None:
    # LCG step, then index into stream 0's working set.
    builder.li(_R_SCRATCH, 6364136223846793005)
    builder.mul(_R_LCG, _R_LCG, _R_SCRATCH)
    builder.addi(_R_LCG, _R_LCG, 1442695040888963407)
    builder.shri(_R_SCRATCH, _R_LCG, 20)
    builder.andi(_R_SCRATCH, _R_SCRATCH, (spec.stream_bytes - 1) & ~7)
    builder.li(_R_SCRATCH + 1, spec.stream_base(0))
    builder.add(_R_SCRATCH + 1, _R_SCRATCH + 1, _R_SCRATCH)
    builder.load(_R_ACC, _R_SCRATCH + 1)


def _emit_random_branch(builder: ProgramBuilder, tag: str) -> None:
    """A branch on loaded pseudo-random data (~50% taken)."""
    label = f"rb_{tag}"
    builder.andi(_R_SCRATCH, _R_ACC, 1)
    builder.beq(_R_SCRATCH, 0, label)
    builder.addi(_R_ACC, _R_ACC, 3)
    builder.label(label)


def _emit_slow_branch(builder: ProgramBuilder, tag: str,
                      chain: int = 0) -> None:
    """Always-taken branch whose operand is data-dependent on the most
    recent load (optionally through a multiply chain): predicted
    perfectly, resolved late."""
    label = f"sb_{tag}"
    builder.mov(_R_SCRATCH, _R_ACC)
    for _ in range(chain):
        builder.mul(_R_SCRATCH, _R_SCRATCH, _R_SCRATCH)
    builder.andi(_R_SCRATCH, _R_SCRATCH, 0)   # always 0, arrives late
    builder.beq(_R_SCRATCH, 0, label)         # always taken
    builder.nop()
    builder.label(label)


def _emit_predictable_branch(builder: ProgramBuilder, tag: str) -> None:
    """A branch the gshare predictor learns almost immediately."""
    label = f"pb_{tag}"
    builder.bge(_R_LOOP, 0, label)
    builder.nop()
    builder.label(label)


def _emit_alu(builder: ProgramBuilder, rng: random.Random) -> None:
    choice = rng.randrange(4)
    if choice == 0:
        builder.add(_R_SCRATCH + 2, _R_ACC, _R_LCG)
    elif choice == 1:
        builder.xor(_R_SCRATCH + 2, _R_SCRATCH + 2, _R_ACC)
    elif choice == 2:
        builder.shli(_R_SCRATCH + 3, _R_ACC, 3)
    else:
        builder.mul(_R_SCRATCH + 3, _R_SCRATCH + 2, _R_ACC)


def _build_chase_chain(builder: ProgramBuilder, spec: SyntheticSpec,
                       rng: random.Random) -> int:
    """Lay out a shuffled pointer chain, one node per line, spread over
    ``chase_pages`` pages.  Returns the chain's entry address."""
    nodes = [
        _CHASE_BASE + page * PAGE + line * LINE
        for page in range(spec.chase_pages)
        for line in range(0, PAGE // LINE, 4)   # 16 nodes per page
    ]
    order = nodes[:]
    rng.shuffle(order)
    for here, there in zip(order, order[1:]):
        builder.data_word(here, there)
    builder.data_word(order[-1], order[0])
    return order[0]


def build_lru_stress(iterations: int = 120, hot_sets: int = 24,
                     hot_ways: int = 3, scale: float = 1.0,
                     l1_ways: int = 4, l1_sets: int = 256) -> Program:
    """A workload whose hit rate depends on replacement *recency*.

    ``hot_ways`` hot lines compete in each of ``hot_sets`` L1 sets
    (occupying all but one way) and are re-read every iteration, while
    a cold stream pours one fill per set per iteration.  With true LRU
    the hot lines' hits keep them most-recent and the stream evicts its
    own older lines; under the no-update policy (Section VII.A) the hot
    lines' recency is never refreshed, so the stream ages them out and
    every stream pass costs extra hot misses.  This is the workload
    that makes the LRU-policy cost measurable.
    """
    hot_base = 0x200000
    cold_base = 0x600000
    set_span = l1_sets * LINE                 # bytes between same-set lines
    cold_bytes = 1 << 20
    hot_addresses = [
        hot_base + set_index * LINE + way * set_span
        for set_index in range(hot_sets)
        for way in range(hot_ways)
    ]
    builder = ProgramBuilder()
    # The hot lines form a pointer chain so their accesses are serially
    # dependent: a recency-induced miss lands squarely on the critical
    # path instead of hiding under memory-level parallelism.
    for here, there in zip(hot_addresses,
                           hot_addresses[1:] + hot_addresses[:1]):
        builder.data_word(here, there)
    builder.li(_R_LOOP, max(1, int(iterations * scale)))
    builder.li(3, hot_addresses[0])           # chain cursor
    builder.li(4, 0)                          # cold cursor (bytes)
    builder.label("kernel")
    for _ in hot_addresses:                   # hot reuse, every iteration
        builder.load(3, 3)
    # One fresh stream fill into each *hot* set per iteration: the
    # stream walks same-set lines (stride = set span) so the pressure
    # lands exactly where the hot lines live.
    for set_index in range(hot_sets):
        builder.li(_R_SCRATCH, cold_base + set_index * LINE)
        builder.add(_R_SCRATCH + 1, _R_SCRATCH, 4)
        builder.load(_R_ACC, _R_SCRATCH + 1)
    builder.addi(4, 4, set_span)              # next pass, next frame
    builder.andi(4, 4, cold_bytes - 1)
    builder.addi(_R_LOOP, _R_LOOP, -1)
    builder.bne(_R_LOOP, 0, "kernel")
    builder.halt()
    return builder.build()


def build_workload(spec: SyntheticSpec, scale: float = 1.0,
                   builder_factory=ProgramBuilder) -> Program:
    """Generate the program for ``spec``.

    ``scale`` multiplies the iteration count, letting tests run tiny
    instances and benchmarks run larger ones from one profile.
    ``builder_factory`` lets callers inject an instrumenting builder
    (e.g. the LFENCE-after-branch mitigation ablation).
    """
    rng = random.Random(spec.seed)
    builder = builder_factory()

    # Random data in stream 0 so data-dependent branches see entropy
    # and the accumulator carries varying values.
    for word_index in range(0, min(spec.stream_bytes, 16 * 1024), WORD):
        for stream in range(spec.page_streams):
            builder.data_word(
                spec.stream_base(stream) + word_index,
                rng.getrandbits(63),
            )

    chase_entry = 0
    if spec.chase_loads:
        chase_entry = _build_chase_chain(builder, spec, rng)

    # ---- prologue --------------------------------------------------------
    iterations = max(1, int(spec.iterations * scale))
    builder.li(_R_LOOP, iterations)
    builder.li(_R_LCG, spec.seed * 2654435761 + 1)
    builder.li(_R_ACC, 0)
    for stream in range(spec.page_streams):
        # Stagger stream origins so concurrent streams sit on
        # different pages from the first iteration on.
        builder.li(_R_STREAM0 + stream, (stream * 8 * LINE) % spec.stream_bytes)
    if spec.chase_loads:
        builder.li(_R_CHASE, chase_entry)

    # ---- kernel body -----------------------------------------------------
    body = (
        [("stream", i % spec.page_streams) for i in range(spec.stream_loads)]
        + [("store", i % spec.page_streams) for i in range(spec.stores)]
        + [("chase", 0)] * spec.chase_loads
        + [("indirect", i % spec.page_streams)
           for i in range(spec.indirect_loads)]
        + [("random", 0)] * spec.random_loads
        + [("alu", 0)] * spec.alu_ops
        + [("rbranch", i) for i in range(spec.random_branches)]
        + [("sbranch", i) for i in range(spec.slow_branches)]
        + [("pbranch", i) for i in range(spec.predictable_branches)]
    )
    rng.shuffle(body)

    builder.label("kernel")
    for position, (kind, arg) in enumerate(body):
        tag = f"{position}"
        if kind == "stream":
            _emit_stream_load(builder, spec, arg)
        elif kind == "store":
            _emit_store(builder, spec, arg)
        elif kind == "chase":
            _emit_chase_load(builder)
        elif kind == "indirect":
            _emit_indirect_load(builder, spec, arg)
        elif kind == "random":
            _emit_random_load(builder, spec)
        elif kind == "alu":
            _emit_alu(builder, rng)
        elif kind == "rbranch":
            _emit_random_branch(builder, tag)
        elif kind == "sbranch":
            _emit_slow_branch(builder, tag, chain=spec.slow_branch_chain)
        else:
            _emit_predictable_branch(builder, tag)
    builder.addi(_R_LOOP, _R_LOOP, -1)
    builder.bne(_R_LOOP, 0, "kernel")
    builder.halt()
    return builder.build()
