"""Differential fuzzing of the simulator and its static-analysis stack.

Three adversarial loops validate the taint/valueset/symx tiers
against the cycle-level simulator as ground truth (ROADMAP item 3):

- :mod:`generator` — seeded, constrained random programs over the
  full ISA, always-terminating by construction;
- :mod:`differential` — OoO-core-vs-in-order-oracle architectural
  equivalence under every protection mode, plus the
  ``assemble(disassemble(p))`` round-trip property;
- :mod:`agreement` — symx verdicts cross-checked against dynamic
  two-secret reality (PROVED_SAFE soundness, witness reproduction,
  tier ordering);
- :mod:`evolve` — mutation search for S-Pattern variants that leak
  through a defense mode;
- :mod:`minimize` — deterministic delta-debugging shrinker;
- :mod:`case` — replayable pinned regression cases;
- :mod:`campaign` — seeded sweeps with crash-safe JSONL checkpoints.
"""
from .agreement import (
    AgreementOutcome,
    Disagreement,
    certify_agreement,
    two_secret_probe,
)
from .campaign import (
    CampaignResult,
    run_certify_campaign,
    run_diff_campaign,
    run_evolve_campaign,
)
from .case import (
    REGRESSION_DIR,
    FuzzCase,
    case_fires,
    load_cases,
    make_case,
)
from .differential import (
    ALL_MODES,
    DiffOutcome,
    Mismatch,
    differential_check,
    roundtrip_error,
)
from .evolve import (
    EvolveReport,
    StagedSeed,
    evolve_mode,
    leak_fitness,
    minimize_survivor,
    mutate,
    staged_seed,
)
from .generator import (
    GeneratedProgram,
    GeneratorConfig,
    case_seed,
    generate_program,
)
from .minimize import MinimizeResult, minimize_program, strip_nops

__all__ = [
    "ALL_MODES",
    "REGRESSION_DIR",
    "AgreementOutcome",
    "CampaignResult",
    "DiffOutcome",
    "Disagreement",
    "EvolveReport",
    "FuzzCase",
    "GeneratedProgram",
    "GeneratorConfig",
    "MinimizeResult",
    "Mismatch",
    "StagedSeed",
    "case_fires",
    "case_seed",
    "certify_agreement",
    "differential_check",
    "evolve_mode",
    "generate_program",
    "leak_fitness",
    "load_cases",
    "make_case",
    "minimize_program",
    "minimize_survivor",
    "mutate",
    "roundtrip_error",
    "run_certify_campaign",
    "run_diff_campaign",
    "run_evolve_campaign",
    "staged_seed",
    "strip_nops",
    "two_secret_probe",
]
