"""Differential checking: OoO core vs in-order oracle, plus the
assembler/builder round-trip property.

For any generated program, under every protection mode, the
out-of-order core must retire to exactly the architectural state the
in-order oracle computes (registers, memory, committed-instruction
count, halting).  The same program must also survive
``assemble(disassemble(p))`` unchanged — text serialization is how
fuzz cases are persisted and replayed, so a round-trip bug would
corrupt every regression case downstream.

Outcomes are structured, never asserted: the campaign layer decides
what to do with a mismatch (minimize, persist, fail).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.policy import SecurityConfig
from ..isa.assembler import assemble, disassemble
from ..isa.instructions import WORD_BYTES
from ..isa.oracle import OracleResult, run_oracle
from ..isa.program import Program
from ..params import MachineParams, tiny_config
from ..pipeline.processor import Processor

_WORD_ALIGN = ~(WORD_BYTES - 1)

#: The four defense configurations of the paper, by mode name.
MODE_FACTORIES = {
    "origin": SecurityConfig.origin,
    "baseline": SecurityConfig.baseline,
    "cache_hit": SecurityConfig.cache_hit,
    "cache_hit_tpbuf": SecurityConfig.cache_hit_tpbuf,
}
#: The paper's four modes — the default differential matrix.  Zoo
#: defenses are added below so ``--modes`` / campaigns can target any
#: registered scheme by name without widening the default set.
ALL_MODES: Tuple[str, ...] = tuple(MODE_FACTORIES)


def _register_zoo_factories() -> None:
    from ..core.defense import defense_names

    for name in defense_names():
        if name not in MODE_FACTORIES:
            MODE_FACTORIES[name] = (
                lambda _name=name: SecurityConfig.for_defense(_name))


_register_zoo_factories()


@dataclass(frozen=True)
class Mismatch:
    """One architectural disagreement between core and oracle."""

    kind: str          # "register" | "memory" | "committed" | "no_halt"
    mode: str          # protection mode the core ran under
    where: str         # "r5" / hex address / ""
    expected: int
    actual: int

    def render(self) -> str:
        return (f"[{self.mode}] {self.kind} {self.where}: "
                f"oracle {self.expected:#x} != core {self.actual:#x}")


@dataclass
class DiffOutcome:
    """Result of one program's differential check."""

    #: Oracle executed to HALT within budget (a generated program that
    #: does not is *invalid input*, not a finding).
    valid: bool
    mismatches: Tuple[Mismatch, ...] = ()
    #: Round-trip failure description ("" when the property held).
    roundtrip_error: str = ""
    modes: Tuple[str, ...] = ()
    oracle_retired: int = 0

    @property
    def clean(self) -> bool:
        return self.valid and not self.mismatches \
            and not self.roundtrip_error

    def render(self) -> str:
        if not self.valid:
            return "invalid program (oracle did not halt)"
        if self.clean:
            return (f"clean over {len(self.modes)} mode(s), "
                    f"{self.oracle_retired} retired")
        lines = [m.render() for m in self.mismatches]
        if self.roundtrip_error:
            lines.append(f"round-trip: {self.roundtrip_error}")
        return "\n".join(lines)


def _encoding(program: Program) -> List[Tuple[object, ...]]:
    """Per-instruction encoding fields (``note`` excluded — it is a
    comment, dropped by design on reassembly)."""
    return [(i.op, i.rd, i.rs1, i.rs2, i.imm, i.target)
            for i in program.instructions]


def roundtrip_error(program: Program) -> str:
    """Check ``assemble(disassemble(program))`` reproduces the program
    (instruction encodings, labels, data image).  Returns an error
    description or ``""``."""
    try:
        text = disassemble(program)
        rebuilt = assemble(text, base_address=program.base_address)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return f"{type(exc).__name__}: {exc}"
    if _encoding(rebuilt) != _encoding(program):
        for index, (a, b) in enumerate(
                zip(_encoding(program), _encoding(rebuilt))):
            if a != b:
                return f"instruction {index} differs: {a} != {b}"
        return (f"instruction count differs: {len(program.instructions)}"
                f" != {len(rebuilt.instructions)}")
    if rebuilt.labels != program.labels:
        return "label table differs"
    if rebuilt.initial_memory != program.initial_memory:
        return "initial memory differs"
    if rebuilt.entry_point != program.entry_point:
        return "entry point differs"
    return ""


def _compare_state(
    cpu: Processor,
    oracle: OracleResult,
    mode: str,
    committed: int,
    halted: bool,
) -> List[Mismatch]:
    mismatches: List[Mismatch] = []
    if not halted:
        mismatches.append(Mismatch("no_halt", mode, "", 1, 0))
        return mismatches
    for reg in range(32):
        want = oracle.reg(reg)
        got = cpu.arch_reg(reg)
        if got != want:
            mismatches.append(Mismatch("register", mode, f"r{reg}",
                                       want, got))
    for vaddr in sorted(oracle.memory):
        want = oracle.mem(vaddr)
        got = cpu.read_vword(vaddr)
        if got != want:
            mismatches.append(Mismatch("memory", mode, f"{vaddr:#x}",
                                       want, got))
    if committed != oracle.retired:
        mismatches.append(Mismatch("committed", mode, "",
                                   oracle.retired, committed))
    return mismatches


def differential_check(
    program: Program,
    *,
    modes: Sequence[str] = ALL_MODES,
    machine: Optional[MachineParams] = None,
    max_cycles: int = 500_000,
    oracle_budget: int = 200_000,
    check_roundtrip: bool = True,
) -> DiffOutcome:
    """Run ``program`` through the oracle and through the OoO core
    under each protection mode, and diff the architectural states."""
    machine = machine if machine is not None else tiny_config()
    oracle = run_oracle(program, max_instructions=oracle_budget)
    if not oracle.halted:
        return DiffOutcome(valid=False, modes=tuple(modes))
    mismatches: List[Mismatch] = []
    for mode in modes:
        security = MODE_FACTORIES[mode]()
        cpu = Processor(program, machine=machine, security=security)
        report = cpu.run(max_cycles=max_cycles)
        mismatches.extend(_compare_state(
            cpu, oracle, mode, report.committed, report.halted))
    error = roundtrip_error(program) if check_roundtrip else ""
    return DiffOutcome(
        valid=True,
        mismatches=tuple(mismatches),
        roundtrip_error=error,
        modes=tuple(modes),
        oracle_retired=oracle.retired,
    )
