"""Fuzz campaigns: seeded sweeps with crash-safe checkpoints.

A campaign is a deterministic function of its master seed: case ``i``
draws from ``random.Random(case_seed(master, i))``, so any single
case replays in isolation and an interrupted campaign resumes without
re-running finished cases.  Checkpointing reuses the fsync'd JSONL
:class:`~repro.robustness.checkpoint.CheckpointStore` from the
robustness sweeps (single writer, last-record-wins, header-validated
resume).

Three campaign kinds mirror the three oracles:

- :func:`run_diff_campaign` — generator → OoO-vs-oracle differential
  (+ the assemble/disassemble round-trip property) under every
  protection mode;
- :func:`run_certify_campaign` — generator (secret mode) → symx
  verdict vs dynamic two-secret reality;
- :func:`run_evolve_campaign` — staged corpus gadgets and leaky
  generated seeds evolved against each defense mode.

Disagreements are minimized on the spot and persisted as replayable
:class:`~repro.fuzz.case.FuzzCase` files.
"""
from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.corpus import GADGET_KINDS, build_corpus_variant, \
    corpus_secret_words
from ..isa.assembler import disassemble
from ..isa.program import Program
from ..params import MachineParams, tiny_config
from ..robustness.checkpoint import CheckpointStore
from .agreement import certify_agreement
from .case import FuzzCase, make_case
from .differential import ALL_MODES, differential_check
from .evolve import EvolveReport, evolve_mode, leak_fitness, \
    minimize_survivor, staged_seed
from .generator import GeneratorConfig, case_seed, generate_program
from .minimize import minimize_program

ProgressFn = Callable[[str], None]


def _no_progress(message: str) -> None:
    del message


@dataclass
class CampaignResult:
    """Aggregated outcome of one campaign run."""

    kind: str
    master_seed: str
    cases: int = 0
    invalid: int = 0
    #: Diff: mismatching programs.  Certify: real disagreements.
    disagreements: int = 0
    #: Certify only: excused non-reproducing witnesses.
    explained: int = 0
    verdicts: Dict[str, int] = field(default_factory=dict)
    #: Paths of FuzzCase files written for disagreements.
    pinned: List[str] = field(default_factory=list)
    #: Evolve only: per-(seed, mode) reports.
    evolve: List[EvolveReport] = field(default_factory=list)
    resumed: int = 0
    duration_s: float = 0.0

    @property
    def clean(self) -> bool:
        return self.disagreements == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "master_seed": self.master_seed,
            "cases": self.cases,
            "invalid": self.invalid,
            "disagreements": self.disagreements,
            "explained": self.explained,
            "verdicts": dict(self.verdicts),
            "pinned": list(self.pinned),
            "evolve": [report.to_dict() for report in self.evolve],
            "resumed": self.resumed,
            "duration_s": round(self.duration_s, 2),
        }


def _json_round_trip(config: Dict[str, object]) -> Dict[str, object]:
    loaded = json.loads(json.dumps(config))
    assert isinstance(loaded, dict)
    return loaded


def _open_store(
    path: Optional[Path],
    config: Dict[str, object],
    resume: bool,
) -> Tuple[Optional[CheckpointStore], Dict[str, Dict[str, object]]]:
    if path is None:
        return None, {}
    store = CheckpointStore(str(path))
    store.acquire_writer()
    done: Dict[str, Dict[str, object]] = {}
    if resume and store.exists():
        header, rows = store.load()
        # ``load`` returns the header's config dict; resuming under a
        # different campaign config restarts from scratch.
        if header == _json_round_trip(config):
            done = dict(rows)
        else:
            store.reset(config=config)
    else:
        store.reset(config=config)
    return store, done


def _close_store(store: Optional[CheckpointStore]) -> None:
    if store is not None:
        store.release_writer()


def _pin(
    result: CampaignResult,
    regressions: Optional[Path],
    case: FuzzCase,
) -> None:
    if regressions is None:
        return
    path = case.save(regressions)
    result.pinned.append(str(path))


def run_diff_campaign(
    master_seed: str,
    count: int,
    *,
    config: Optional[GeneratorConfig] = None,
    modes: Sequence[str] = ALL_MODES,
    machine: Optional[MachineParams] = None,
    checkpoint: Optional[Path] = None,
    resume: bool = True,
    minimize: bool = True,
    regressions: Optional[Path] = None,
    progress: ProgressFn = _no_progress,
) -> CampaignResult:
    """Differential sweep: ``count`` generated programs, each checked
    OoO-vs-oracle under every mode plus the round-trip property."""
    started = time.perf_counter()
    config = config if config is not None else GeneratorConfig()
    machine = machine if machine is not None else tiny_config()
    store_config: Dict[str, object] = {
        "campaign": "diff", "seed": master_seed, "count": count,
        "modes": list(modes), "generator": config.to_dict(),
    }
    store, done = _open_store(checkpoint, store_config, resume)
    result = CampaignResult(kind="diff", master_seed=master_seed)
    try:
        for index in range(count):
            key = f"case/{index}"
            if key in done:
                result.resumed += 1
                result.cases += 1
                record = done[key]
                result.invalid += int(not record.get("valid", True))
                result.disagreements += int(
                    not record.get("clean", True)
                    and record.get("valid", True))
                continue
            seed = case_seed(master_seed, index)
            generated = generate_program(seed, config)
            outcome = differential_check(
                generated.program, modes=modes, machine=machine)
            result.cases += 1
            if not outcome.valid:
                result.invalid += 1
            elif not outcome.clean:
                result.disagreements += 1
                progress(f"[{index}] MISMATCH\n{outcome.render()}")
                program = generated.program
                if minimize:
                    def still_bad(candidate: Program) -> bool:
                        check = differential_check(
                            candidate, modes=modes, machine=machine)
                        return check.valid and not check.clean
                    program = minimize_program(
                        program, still_bad).program
                _pin(result, regressions, make_case(
                    case_id=f"diff_{_slug(seed)}",
                    kind="diff_mismatch",
                    seed=seed,
                    program=program,
                    modes=tuple(modes),
                    config=config.to_dict(),
                    details=outcome.render(),
                    repro=(f"repro fuzz diff --seed {master_seed!r} "
                           f"--count {count} --only {index}"),
                ))
            if store is not None:
                store.append(key, {
                    "valid": outcome.valid, "clean": outcome.clean,
                    "retired": outcome.oracle_retired,
                })
    finally:
        _close_store(store)
    result.duration_s = time.perf_counter() - started
    return result


def run_certify_campaign(
    master_seed: str,
    count: int,
    *,
    config: Optional[GeneratorConfig] = None,
    machine: Optional[MachineParams] = None,
    checkpoint: Optional[Path] = None,
    resume: bool = True,
    minimize: bool = True,
    regressions: Optional[Path] = None,
    progress: ProgressFn = _no_progress,
) -> CampaignResult:
    """Certifier-agreement sweep over secret-mode generated programs."""
    started = time.perf_counter()
    if config is None:
        config = GeneratorConfig(secret=True, length=20, loops=False)
    machine = machine if machine is not None else tiny_config()
    store_config: Dict[str, object] = {
        "campaign": "certify", "seed": master_seed, "count": count,
        "generator": config.to_dict(),
    }
    store, done = _open_store(checkpoint, store_config, resume)
    result = CampaignResult(kind="certify", master_seed=master_seed)
    try:
        for index in range(count):
            key = f"case/{index}"
            if key in done:
                record = done[key]
                result.resumed += 1
                result.cases += 1
                verdict = str(record.get("verdict", "invalid"))
                result.verdicts[verdict] = \
                    result.verdicts.get(verdict, 0) + 1
                result.invalid += int(verdict == "invalid")
                result.disagreements += int(
                    not record.get("clean", True))
                result.explained += int(record.get("explained", 0))
                continue
            seed = case_seed(master_seed, index)
            generated = generate_program(seed, config)
            outcome = certify_agreement(
                generated.program, generated.secret_words,
                machine=machine, name=f"fuzz:{index}")
            result.cases += 1
            if outcome is None:
                result.invalid += 1
                result.verdicts["invalid"] = \
                    result.verdicts.get("invalid", 0) + 1
                if store is not None:
                    store.append(key, {"verdict": "invalid",
                                       "clean": True})
                continue
            result.verdicts[outcome.verdict] = \
                result.verdicts.get(outcome.verdict, 0) + 1
            result.explained += len(outcome.explained)
            if not outcome.clean:
                result.disagreements += 1
                detail = "; ".join(d.render()
                                   for d in outcome.disagreements)
                progress(f"[{index}] DISAGREEMENT {detail}")
                program = generated.program
                if minimize:
                    def still_bad(candidate: Program) -> bool:
                        check = certify_agreement(
                            candidate, generated.secret_words,
                            machine=machine)
                        return check is not None and not check.clean
                    program = minimize_program(
                        program, still_bad).program
                _pin(result, regressions, make_case(
                    case_id=f"certify_{_slug(seed)}",
                    kind="certify_disagreement",
                    seed=seed,
                    program=program,
                    secret_words=generated.secret_words,
                    config=config.to_dict(),
                    details=detail,
                    repro=(f"repro fuzz certify --seed {master_seed!r}"
                           f" --count {count} --only {index}"),
                ))
            if store is not None:
                store.append(key, {
                    "verdict": outcome.verdict,
                    "clean": outcome.clean,
                    "explained": len(outcome.explained),
                })
    finally:
        _close_store(store)
    result.duration_s = time.perf_counter() - started
    return result


def _evolve_seeds(
    master_seed: str,
    generated_seeds: int,
    config: GeneratorConfig,
    machine: MachineParams,
) -> List[Tuple[str, Program, Tuple[int, ...], Tuple[int, ...]]]:
    """Corpus gadgets (witness-staged) plus dynamically leaky
    generated programs, as (name, program, secrets, warm) tuples."""
    seeds: List[Tuple[str, Program, Tuple[int, ...], Tuple[int, ...]]] = []
    for kind in GADGET_KINDS:
        program = build_corpus_variant(kind, "unsafe")
        staged = staged_seed(f"{kind}/unsafe", program,
                             corpus_secret_words(), machine=machine)
        if staged is None:
            continue
        fitness = leak_fitness(staged.program, staged.secret_words,
                               "origin", machine=machine,
                               warm_words=staged.warm_words)
        if fitness:
            seeds.append((staged.name, staged.program,
                          staged.secret_words, staged.warm_words))
    found = 0
    index = 0
    while found < generated_seeds and index < generated_seeds * 50:
        seed = case_seed(master_seed, index)
        index += 1
        generated = generate_program(seed, config)
        if not generated.expected_leaky:
            continue
        fitness = leak_fitness(
            generated.program, generated.secret_words, "origin",
            machine=machine, warm_words=generated.secret_words)
        if fitness:
            seeds.append((f"gen:{seed}", generated.program,
                          generated.secret_words,
                          generated.secret_words))
            found += 1
    return seeds


def run_evolve_campaign(
    master_seed: str,
    *,
    modes: Sequence[str] = ALL_MODES,
    generated_seeds: int = 2,
    generations: int = 6,
    population: int = 5,
    offspring: int = 3,
    config: Optional[GeneratorConfig] = None,
    machine: Optional[MachineParams] = None,
    regressions: Optional[Path] = None,
    progress: ProgressFn = _no_progress,
) -> Tuple[CampaignResult, List[FuzzCase]]:
    """Evolve gadget variants against each mode; returns the campaign
    result plus FuzzCases for verified survivors (the caller ingests
    them into the analysis corpus)."""
    started = time.perf_counter()
    if config is None:
        config = GeneratorConfig(secret=True, length=22, loops=False)
    machine = machine if machine is not None else tiny_config()
    result = CampaignResult(kind="evolve", master_seed=master_seed)
    survivors: List[FuzzCase] = []
    seeds = _evolve_seeds(master_seed, generated_seeds, config, machine)
    for name, program, secrets, warm in seeds:
        for mode in modes:
            rng = random.Random(f"{master_seed}:evolve:{name}:{mode}")
            report = evolve_mode(
                program, secrets, mode, rng,
                seed_name=name, generations=generations,
                population=population, offspring=offspring,
                machine=machine, disassemble=disassemble,
                warm_words=warm)
            result.cases += 1
            result.evolve.append(report)
            progress(f"{name} vs {mode}: best={report.best_fitness} "
                     f"survivor={report.survivor}")
            if report.survivor and report.verified:
                result.disagreements += 1
                shrunk = minimize_survivor(
                    assembleable(report.best_source, program),
                    secrets, mode, machine=machine, warm_words=warm)
                report.minimized_instructions = \
                    shrunk.instructions_after
                case = make_case(
                    case_id=f"evolve_{_slug(name)}_{mode}",
                    kind="evolve_survivor",
                    seed=master_seed,
                    program=shrunk.program,
                    secret_words=secrets,
                    modes=(mode,),
                    config=config.to_dict(),
                    details=(f"leaks {report.best_fitness} line(s) "
                             f"under {mode}"),
                    repro=(f"repro fuzz evolve --seed "
                           f"{master_seed!r} --modes {mode}"),
                    expect="reproduces",
                )
                survivors.append(case)
                _pin(result, regressions, case)
    result.duration_s = time.perf_counter() - started
    return result, survivors


def assembleable(source: str, fallback: Program) -> Program:
    """Reassemble evolve output (it was produced by ``disassemble``);
    fall back to the unmutated seed if the text is empty."""
    if not source:
        return fallback
    from ..isa.assembler import assemble
    return assemble(source, base_address=fallback.base_address)


def _slug(text: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in text)
