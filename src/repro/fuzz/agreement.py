"""Certifier-agreement oracle: symx verdicts vs dynamic reality.

For a generated (or corpus) program with declared secret words, three
cross-checks tie the static stack to the simulator:

1. **PROVED_SAFE soundness.**  A program the certifier proves
   speculatively noninterferent must show *no* secret-dependent
   transient cache-line difference when the unsafe (ORIGIN) pipeline
   runs it twice with two different secret valuations.  The probe runs
   cold (no warm-up): cold misses maximize the speculation window, so
   an empty diff here is the strongest dynamic corroboration the
   simulator can give.
2. **LEAKY witnesses reproduce.**  Every :class:`LeakRecord` carries a
   two-secret replay; each must have ``reproduced=True``.  A
   non-reproducing witness is *explained* — a precision gap, not a
   soundness bug — only when its own staged replay shows an *empty*
   dynamic line diff: symx's always-mispredict semantics explores
   wrong paths the real front end never follows, so a
   symbolically-leaky program can be dynamically tight.  A replay
   that leaks *different* lines than predicted is a real
   disagreement.
3. **Tier ordering.**  The three tiers must stay ordered
   over-approximation ⊇ truth: if symx proves a sink LEAKY, the taint
   scanner must flag that sink and the value-set layer must not refute
   every finding covering it.  (And a program with no secret words can
   never be LEAKY.)

The transient diff is computed to match what symx models: lines
touched only by squashed loads in exactly one variant, with every
architecturally-committed line of either run excluded —

    ``ta = A.squashed - A.committed - B.committed``
    ``tb = B.squashed - A.committed - B.committed``
    ``diff = ta ^ tb``

Architectural (committed) differences between the two secret runs are
the in-order program semantics, which SNI deliberately does not judge.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.symx import CertifyResult, Verdict, certify_program
from ..analysis.taint import analyze_program
from ..analysis.valueset import refine_report
from ..analysis.witness import _LineProbe
from ..core.policy import SecurityConfig
from ..isa.instructions import mask64
from ..isa.program import Program
from ..params import MachineParams, tiny_config
from ..pipeline.processor import Processor

#: Two fixed, well-separated secret valuations.  Word i of the secret
#: region gets ``base + i * 8``.  The bases differ in low bits *and*
#: high bits (xor ``0x78F``) so the difference survives both a
#: low-bits line mask (``andi idx, secret, lines-1``) and a shifted
#: transmit (``secret << 6``).
SECRET_VALUE_A = 0x043
SECRET_VALUE_B = 0x7CC

#: Depth for fuzz certification.  symx's depth cap silently drops
#: forks past ``max_depth`` nesting levels without marking the result
#: truncated, so the campaign keeps generated nesting shallow *and*
#: certifies one level deeper than the generator ever nests.
FUZZ_MAX_DEPTH = 3


@dataclass(frozen=True)
class Disagreement:
    """One static-vs-dynamic disagreement."""

    kind: str   # "proved_safe_leaks" | "witness_not_reproduced"
                # | "tier_taint_missed" | "tier_valueset_refuted"
                # | "leaky_without_secret"
    detail: str

    def render(self) -> str:
        return f"{self.kind}: {self.detail}"


@dataclass
class AgreementOutcome:
    """Result of one program's certifier-agreement check."""

    verdict: str
    disagreements: Tuple[Disagreement, ...]
    #: Non-reproducing witnesses excused by an empty dynamic diff.
    explained: Tuple[str, ...]
    #: The program's own two-secret transient line diff (ORIGIN mode).
    dynamic_diff: Tuple[int, ...]
    truncated: bool
    leaks: int
    duration_s: float

    @property
    def clean(self) -> bool:
        return not self.disagreements

    def to_dict(self) -> Dict[str, object]:
        return {
            "verdict": self.verdict,
            "disagreements": [d.render() for d in self.disagreements],
            "explained": list(self.explained),
            "dynamic_diff": list(self.dynamic_diff),
            "truncated": self.truncated,
            "leaks": self.leaks,
            "duration_s": round(self.duration_s, 4),
        }


def _secret_overrides(
    secret_words: Sequence[int], base_value: int
) -> Dict[int, int]:
    return {mask64(word): mask64(base_value + 8 * index)
            for index, word in enumerate(secret_words)}


def _probe_variant(
    program: Program,
    overrides: Dict[int, int],
    *,
    machine: MachineParams,
    max_cycles: int,
    security: Optional[SecurityConfig] = None,
    warm_words: Sequence[int] = (),
) -> Optional[_LineProbe]:
    staged = dataclasses.replace(
        program,
        initial_memory={**program.initial_memory, **overrides},
    )
    probe = _LineProbe(machine.memory.line_bytes)
    cpu = Processor(
        staged, machine=machine,
        security=security if security is not None
        else SecurityConfig.origin(),
        tracer=probe)
    for word in warm_words:
        translation = cpu.dtlb.translate(mask64(word))
        cpu.hierarchy.data_access(translation.paddr)
    report = cpu.run(max_cycles=max_cycles)
    if not report.halted:
        return None
    return probe


def two_secret_probe(
    program: Program,
    secret_words: Sequence[int],
    *,
    machine: Optional[MachineParams] = None,
    max_cycles: int = 500_000,
    security: Optional[SecurityConfig] = None,
    values: Tuple[int, int] = (SECRET_VALUE_A, SECRET_VALUE_B),
    warm_words: Sequence[int] = (),
) -> Optional[Tuple[int, ...]]:
    """Transient-only secret-dependent line diff on the dynamic core.

    Runs ``program`` twice (ORIGIN mode unless ``security`` overrides
    it — the evolve loop probes defended cores too) with two secret
    valuations, and returns the sorted virtual line indices
    transiently touched by exactly one run (see module docstring for
    the exact formula).  ``warm_words`` are pre-installed in the
    hierarchy before each run (warm data / cold trigger, exactly as
    :func:`repro.analysis.witness.replay_witness` stages it); the
    default is fully cold.  ``None`` when either run fails to halt
    within ``max_cycles`` (the caller treats the program as invalid
    input, not as a finding).
    """
    machine = machine if machine is not None else tiny_config()
    probe_a = _probe_variant(
        program, _secret_overrides(secret_words, values[0]),
        machine=machine, max_cycles=max_cycles, security=security,
        warm_words=warm_words)
    probe_b = _probe_variant(
        program, _secret_overrides(secret_words, values[1]),
        machine=machine, max_cycles=max_cycles, security=security,
        warm_words=warm_words)
    if probe_a is None or probe_b is None:
        return None
    committed = probe_a.committed_lines | probe_b.committed_lines
    transient_a = probe_a.squashed_lines - committed
    transient_b = probe_b.squashed_lines - committed
    return tuple(sorted(transient_a ^ transient_b))


def certify_agreement(
    program: Program,
    secret_words: Sequence[int],
    *,
    machine: Optional[MachineParams] = None,
    window: int = 192,
    max_depth: int = FUZZ_MAX_DEPTH,
    max_paths: int = 4096,
    max_steps: int = 200_000,
    name: str = "fuzz",
) -> Optional[AgreementOutcome]:
    """Run the full three-tier stack and the dynamic cross-checks.

    Returns ``None`` for invalid inputs (a dynamic run that does not
    halt).  ``UNKNOWN`` verdicts produce no disagreement — the
    certifier gave up, which is honest, not wrong.
    """
    machine = machine if machine is not None else tiny_config()
    # Warm data / cold trigger: the secret words are the victim's own
    # data (recently touched); triggers stay cold so the speculation
    # window is maximal.  A cold secret load returns after the squash
    # and hides real dynamic leaks.
    dynamic = (two_secret_probe(program, secret_words, machine=machine,
                                warm_words=secret_words)
               if secret_words else ())
    if dynamic is None:
        return None

    result: CertifyResult = certify_program(
        program,
        secret_words=secret_words,
        window=window,
        max_depth=max_depth,
        max_paths=max_paths,
        max_steps=max_steps,
        replay=True,
        machine=machine,
        name=name,
    )

    disagreements: List[Disagreement] = []
    explained: List[str] = []

    if not secret_words and result.verdict is Verdict.LEAKY:
        disagreements.append(Disagreement(
            "leaky_without_secret",
            f"LEAKY with no declared secrets: {result.leaky_pcs}"))

    if result.verdict is Verdict.PROVED_SAFE and dynamic:
        disagreements.append(Disagreement(
            "proved_safe_leaks",
            "PROVED_SAFE but dynamic two-secret transient diff is "
            f"non-empty: lines {list(dynamic)}"))

    if result.verdict is Verdict.LEAKY:
        for leak in result.leaks:
            if leak.replay is not None and leak.replay.reproduced:
                continue
            note = (f"witness sink {leak.pc:#x} predicted lines "
                    f"{list(leak.witness.predicted_lines)}")
            leaked = (leak.replay.leaked_lines
                      if leak.replay is not None else None)
            if leaked == ():
                # The witness's own staged replay shows *no* dynamic
                # difference at all: symx's always-mispredict semantics
                # explored a wrong path the real front end never
                # follows.  A documented precision gap, not a bug.
                explained.append(
                    note + " — dynamically tight (always-mispredict "
                    "over-approximation)")
            else:
                disagreements.append(Disagreement(
                    "witness_not_reproduced",
                    note + f"; replay leaked {leaked!r}"))

        report = analyze_program(program, window=window, name=name)
        refined = refine_report(program, report,
                                secret_words=secret_words)
        flagged = {f.sink_pc for f in report.findings}
        surviving = {f.sink_pc for f in refined.confirmed}
        for sink in result.leaky_pcs:
            if sink not in flagged:
                disagreements.append(Disagreement(
                    "tier_taint_missed",
                    f"symx LEAKY sink {sink:#x} has no taint finding"))
            elif sink not in surviving:
                disagreements.append(Disagreement(
                    "tier_valueset_refuted",
                    f"value-set layer refuted symx-LEAKY sink "
                    f"{sink:#x}"))

    return AgreementOutcome(
        verdict=result.verdict.value,
        disagreements=tuple(disagreements),
        explained=tuple(explained),
        dynamic_diff=tuple(dynamic),
        truncated=result.truncated,
        leaks=len(result.leaks),
        duration_s=result.duration_s,
    )
