"""Mutation search for S-Pattern variants the defenses miss.

Starting from the corpus gadgets and freshly generated secret-mode
programs, a hill-climbing loop applies *address-preserving* mutations
(instruction count never changes, so every branch target, label and
label-valued immediate stays valid) and scores each mutant by the
number of secret-dependent transient cache lines it leaks under a
given protection mode — the paper's own success metric, measured on
the simulator.

Under ``origin`` (no defense) the loop is a positive control: corpus
gadgets already leak and evolution should keep them leaking.  Under
the defended modes (``baseline`` / ``cache_hit`` / ``cache_hit_tpbuf``)
any mutant with fitness > 0 is a *survivor* — a candidate filter
bypass.  Survivors are re-verified with a second, independent secret
value pair (guarding against coincidental line diffs), minimized
while still leaking, and handed to the corpus ingestion layer so
``precision_study`` re-measures the static stack against them.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import dataclasses

from ..analysis.symx import Verdict, certify_program
from ..core.policy import SecurityConfig
from ..isa.instructions import WORD_BYTES, Instruction, Opcode, mask64
from ..isa.program import Program
from ..params import MachineParams, tiny_config
from .agreement import SECRET_VALUE_A, SECRET_VALUE_B, two_secret_probe
from .differential import MODE_FACTORIES
from .minimize import MinimizeResult, minimize_program

#: Second secret value pair used only for survivor re-verification
#: (differs from the primary pair in low and high bits alike).
VERIFY_VALUES = (0x1C5, 0x63A)

_IMM_OPS = {Opcode.ADDI, Opcode.ANDI, Opcode.XORI, Opcode.SHLI,
            Opcode.SHRI, Opcode.LI, Opcode.LOAD, Opcode.STORE,
            Opcode.CLFLUSH}
_IMM_DELTAS = (-64, -8, -1, 1, 8, 64)
_REG_POOL = tuple(range(1, 19))


@dataclass
class EvolveReport:
    """Outcome of one mode's evolution run."""

    mode: str
    seed_name: str
    generations: int
    #: Best fitness after each generation (leaked transient lines).
    history: Tuple[int, ...]
    best_fitness: int
    #: Disassembled best program (for the campaign log).
    best_source: str = ""
    #: True when fitness > 0 under a *defended* mode.
    survivor: bool = False
    #: Survivor held up under the second secret pair.
    verified: bool = False
    minimized_instructions: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "seed_name": self.seed_name,
            "generations": self.generations,
            "history": list(self.history),
            "best_fitness": self.best_fitness,
            "survivor": self.survivor,
            "verified": self.verified,
            "minimized_instructions": self.minimized_instructions,
        }


@dataclass(frozen=True)
class StagedSeed:
    """A gadget plus the attack staging that makes it leak."""

    name: str
    program: Program
    secret_words: Tuple[int, ...]
    warm_words: Tuple[int, ...]


def staged_seed(
    name: str,
    program: Program,
    secret_words: Sequence[int],
    *,
    machine: Optional[MachineParams] = None,
) -> Optional[StagedSeed]:
    """Turn a corpus-style gadget into an evolve seed.

    A corpus driver carries benign inputs — the leak needs adversarial
    public memory (an out-of-bounds index, a poisoned return word)
    only the certifier's witness knows.  This bakes the first leak
    witness's public memory into the program and returns its warm
    words, so :func:`leak_fitness` measures the staged attack.
    ``None`` when symx finds no replayable leak to stage.
    """
    result = certify_program(
        program, secret_words=secret_words, replay=True,
        machine=machine, name=name)
    if result.verdict is not Verdict.LEAKY:
        return None
    align = ~(WORD_BYTES - 1)
    for leak in result.leaks:
        if leak.replay is None or not leak.replay.reproduced:
            continue
        public = {mask64(addr) & align: mask64(value)
                  for addr, value in leak.witness.public_memory}
        staged = dataclasses.replace(
            program,
            initial_memory={**program.initial_memory, **public})
        return StagedSeed(
            name=name,
            program=staged,
            secret_words=tuple(secret_words),
            warm_words=tuple(leak.witness.warm_words),
        )
    return None


def _mutable_indices(program: Program) -> List[int]:
    return [index for index, instruction
            in enumerate(program.instructions)
            if instruction.op is not Opcode.HALT]


def _tweak_imm(rng: random.Random, instruction: Instruction) -> Instruction:
    return dc_replace(instruction,
                      imm=instruction.imm + rng.choice(_IMM_DELTAS))


def _change_reg(rng: random.Random, instruction: Instruction) -> Instruction:
    fields = [name for name in ("rd", "rs1", "rs2")
              if getattr(instruction, name) != 0]
    if not fields:
        return instruction
    name = rng.choice(fields)
    return dc_replace(instruction, **{name: rng.choice(_REG_POOL)})


def _weaken(rng: random.Random, instruction: Instruction) -> Instruction:
    """Turn a masking/shifting op into a plain copy — the classic way
    a bounds mask gets optimized out."""
    if instruction.op in (Opcode.ANDI, Opcode.SHRI, Opcode.SHLI):
        return dc_replace(instruction, op=Opcode.ADDI, imm=0)
    return _tweak_imm(rng, instruction)


def mutate(program: Program, rng: random.Random) -> Program:
    """One address-preserving mutation (same instruction count)."""
    indices = _mutable_indices(program)
    if not indices:
        return program
    instructions = list(program.instructions)
    index = rng.choice(indices)
    instruction = instructions[index]
    roll = rng.random()
    if roll < 0.35 and instruction.op in _IMM_OPS:
        instructions[index] = _tweak_imm(rng, instruction)
    elif roll < 0.55:
        instructions[index] = _change_reg(rng, instruction)
    elif roll < 0.70:
        instructions[index] = _weaken(rng, instruction)
    elif roll < 0.85:
        instructions[index] = Instruction(Opcode.NOP)
    else:
        # Transplant another instruction into this slot (count stable).
        instructions[index] = instructions[rng.choice(indices)]
    return dc_replace(program, instructions=instructions)


def leak_fitness(
    program: Program,
    secret_words: Sequence[int],
    mode: str,
    *,
    machine: Optional[MachineParams] = None,
    max_cycles: int = 200_000,
    values: Tuple[int, int] = (SECRET_VALUE_A, SECRET_VALUE_B),
    warm_words: Sequence[int] = (),
) -> Optional[int]:
    """Leaked transient line count under ``mode``; ``None`` = invalid
    (a mutant that no longer halts)."""
    security: SecurityConfig = (
        MODE_FACTORIES[mode]() if mode in MODE_FACTORIES
        else SecurityConfig.for_defense(mode))
    diff = two_secret_probe(
        program, secret_words,
        machine=machine, max_cycles=max_cycles, security=security,
        values=values, warm_words=warm_words)
    if diff is None:
        return None
    return len(diff)


def evolve_mode(
    seed_program: Program,
    secret_words: Sequence[int],
    mode: str,
    rng: random.Random,
    *,
    seed_name: str = "seed",
    generations: int = 8,
    population: int = 6,
    offspring: int = 3,
    machine: Optional[MachineParams] = None,
    disassemble: Optional[Callable[[Program], str]] = None,
    warm_words: Sequence[int] = (),
) -> EvolveReport:
    """Hill-climb ``seed_program`` against one protection mode."""
    machine = machine if machine is not None else tiny_config()

    def fitness(candidate: Program) -> int:
        score = leak_fitness(candidate, secret_words, mode,
                             machine=machine, warm_words=warm_words)
        return -1 if score is None else score

    pool: List[Tuple[int, Program]] = [
        (fitness(seed_program), seed_program)]
    history: List[int] = []
    for _ in range(generations):
        children: List[Tuple[int, Program]] = []
        for _, parent in pool:
            for _ in range(offspring):
                child = mutate(parent, rng)
                children.append((fitness(child), child))
        pool = sorted(pool + children, key=lambda pair: pair[0],
                      reverse=True)[:population]
        history.append(pool[0][0])

    best_fitness, best = pool[0]
    best_fitness = max(best_fitness, 0)
    survivor = mode != "origin" and best_fitness > 0
    verified = False
    if survivor:
        check = leak_fitness(best, secret_words, mode,
                             machine=machine, values=VERIFY_VALUES,
                             warm_words=warm_words)
        verified = bool(check)
    source = ""
    if disassemble is not None and best_fitness > 0:
        source = disassemble(best)
    return EvolveReport(
        mode=mode,
        seed_name=seed_name,
        generations=generations,
        history=tuple(history),
        best_fitness=best_fitness,
        best_source=source,
        survivor=survivor,
        verified=verified,
    )


def minimize_survivor(
    program: Program,
    secret_words: Sequence[int],
    mode: str,
    *,
    machine: Optional[MachineParams] = None,
    warm_words: Sequence[int] = (),
) -> MinimizeResult:
    """Shrink a verified survivor while it still leaks under ``mode``
    with *both* secret value pairs."""
    machine = machine if machine is not None else tiny_config()

    def predicate(candidate: Program) -> bool:
        primary = leak_fitness(candidate, secret_words, mode,
                               machine=machine, warm_words=warm_words)
        if not primary:
            return False
        check = leak_fitness(candidate, secret_words, mode,
                             machine=machine, values=VERIFY_VALUES,
                             warm_words=warm_words)
        return bool(check)

    return minimize_program(program, predicate)
