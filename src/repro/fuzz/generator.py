"""Seeded, constrained random program generator over the full ISA.

Programs are **always terminating by construction** — the property the
whole differential harness rests on (a generated program that fails to
halt is a generator bug, never a legitimate fuzz outcome):

- all control flow inside the main body is *forward*: conditional
  branches, ``JMP`` and ``JMPI`` (through a label-valued immediate or a
  label-valued data word) only target join labels emitted a bounded
  number of items later;
- the one allowed backward branch is the counted outer loop, whose
  dedicated counter register is never touched by body items;
- ``CALL`` targets straight-line functions (emitted after ``HALT``)
  that never call and always ``RET`` — call depth is exactly one;
- every body item is finite; the program ends in ``HALT``.

Memory discipline: data loads/stores mask their index into a small
initialized data region, so the architectural heap stays bounded.  In
*secret mode* the generator additionally stages a labelled secret word
plus a probe array and plants speculation-guarded S-Pattern blocks —
the bounds-check shape of the paper — in leaky (unmasked transmit) and
mitigated (masked or fenced) flavours, which is what gives the
certifier-agreement oracle a bimodal population to chew on.

``RDCYCLE`` is deliberately excluded: the oracle defines it as the
retired-instruction count, which *intentionally* disagrees with the
core's cycle counter, so it can never appear in a differential check
(see :mod:`repro.isa.oracle`).

All randomness flows through one injected :class:`random.Random`; the
same seed and config reproduce the same program bit-for-bit.
"""
from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..isa.builder import ProgramBuilder
from ..isa.program import Program

#: Junk items write/read this register pool only.
POOL_REGS: Tuple[int, ...] = (1, 2, 3, 4, 5, 6)
#: Loop counter — body items must never touch it.
LOOP_REG = 7
#: Address-computation scratch registers.
SCRATCH_A = 8
SCRATCH_B = 9
#: Secret chains live in a register range disjoint from the junk pool
#: so a leak is attributable to the planted block, not register reuse.
SECRET_REGS: Tuple[int, ...] = (16, 17, 18)

_ALU3_METHODS: Tuple[str, ...] = (
    "add", "sub", "mul", "div", "and_", "or_", "xor", "shl", "shr")
_ALUI_METHODS: Tuple[str, ...] = ("addi", "andi", "xori", "shli", "shri")
_BRANCH_METHODS: Tuple[str, ...] = ("beq", "bne", "blt", "bge")


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape of one generated program (all knobs deterministic)."""

    #: Number of body items (an item is 1..~8 instructions).
    length: int = 24
    base_address: int = 0x1000
    #: Initialized public data region (word granularity).
    data_base: int = 0x4000
    data_words: int = 16
    #: Counted outer loop around the whole body.
    loops: bool = True
    max_loop_iterations: int = 3
    #: Straight-line functions reachable via CALL.
    calls: bool = True
    max_functions: int = 2
    max_function_items: int = 4
    #: Forward indirect jumps (label-valued immediates / data words).
    jmpi: bool = True
    #: Plant speculation-guarded secret blocks (certifier campaigns).
    secret: bool = False
    secret_addr: int = 0x5000
    #: Cold trigger words guarding the speculative blocks.
    trigger_base: int = 0x7000
    #: Probe array indexed by (masked) transmitted values.
    probe_base: int = 0x6000
    probe_lines: int = 16
    line_bytes: int = 64
    #: Upper bound on guarded secret blocks per program.
    max_secret_blocks: int = 2
    #: Probability a junk load bypasses the region mask entirely and
    #: dereferences a raw register value (wild but architecturally
    #: harmless: unmapped words read as zero).
    wild_load_rate: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "GeneratorConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class GeneratedProgram:
    """A generated program plus the metadata campaigns need."""

    program: Program
    seed: object
    config: GeneratorConfig
    #: Word addresses holding secrets (empty unless ``config.secret``).
    secret_words: Tuple[int, ...] = ()
    #: Generator intent: at least one *unmasked* secret transmit was
    #: planted inside a speculative block.  A statistic for campaign
    #: reports — dynamic replay, not intent, is the ground truth.
    expected_leaky: bool = False
    #: Count of speculation sources planted (guards + jmpi + ret).
    speculation_sources: int = 0


class _Emitter:
    """One generation run (bundles rng + config + builder state)."""

    def __init__(self, rng: random.Random, config: GeneratorConfig) -> None:
        self.rng = rng
        self.config = config
        self.builder = ProgramBuilder(base_address=config.base_address)
        #: (due_item_index, label) joins still to be placed.
        self.pending: List[Tuple[int, str]] = []
        #: (data word address, label name) patches applied post-build.
        self.data_labels: List[Tuple[int, str]] = []
        self.functions: List[str] = []
        self.next_trigger = config.trigger_base
        self.expected_leaky = False
        self.speculation_sources = 0
        self._unique = 0

    # ---- helpers --------------------------------------------------------

    def fresh(self, stem: str) -> str:
        self._unique += 1
        return f"{stem}_{self._unique}"

    def pool(self) -> int:
        return self.rng.choice(POOL_REGS)

    def masked_data_address(self, dst: int, src: int) -> None:
        """dst = data_base + (src mod data_words) * 8 — always in
        the initialized region."""
        b = self.builder
        b.andi(dst, src, self.config.data_words - 1)
        b.shli(dst, dst, 3)
        b.li(SCRATCH_B, self.config.data_base)
        b.add(dst, SCRATCH_B, dst)

    def alloc_trigger(self) -> int:
        """A fresh cold word (initially zero, never touched again)."""
        address = self.next_trigger
        self.next_trigger += 8
        return address

    # ---- junk items -----------------------------------------------------

    def item_alu(self) -> None:
        method = self.rng.choice(_ALU3_METHODS)
        getattr(self.builder, method)(self.pool(), self.pool(), self.pool())

    def item_alui(self) -> None:
        method = self.rng.choice(_ALUI_METHODS)
        imm = (self.rng.randint(0, 12) if method in ("shli", "shri")
               else self.rng.randint(-64, 64))
        getattr(self.builder, method)(self.pool(), self.pool(), imm)

    def item_li(self) -> None:
        self.builder.li(self.pool(), self.rng.randint(-(1 << 16), 1 << 16))

    def item_load(self) -> None:
        rd = self.pool()
        if (self.config.wild_load_rate > 0
                and self.rng.random() < self.config.wild_load_rate):
            self.builder.load(rd, self.pool())
            return
        self.masked_data_address(SCRATCH_A, self.pool())
        self.builder.load(rd, SCRATCH_A)

    def item_store(self) -> None:
        self.masked_data_address(SCRATCH_A, self.pool())
        self.builder.store(self.pool(), SCRATCH_A)

    def item_load_direct(self) -> None:
        word = self.rng.randrange(self.config.data_words)
        self.builder.li(SCRATCH_A, self.config.data_base)
        self.builder.load(self.pool(), SCRATCH_A, word * 8)

    def item_flush(self) -> None:
        word = self.rng.randrange(self.config.data_words)
        self.builder.li(SCRATCH_A, self.config.data_base + word * 8)
        self.builder.clflush(SCRATCH_A)

    def item_fence(self) -> None:
        self.builder.fence()

    def item_nop(self) -> None:
        self.builder.nop()

    # ---- forward control ------------------------------------------------

    def item_branch(self, index: int) -> None:
        method = self.rng.choice(_BRANCH_METHODS)
        label = self.fresh("fwd")
        getattr(self.builder, method)(self.pool(), self.pool(), label)
        skip = self.rng.randint(1, 4)
        self.pending.append((index + skip, label))
        self.speculation_sources += 1

    def item_jmpi(self, index: int) -> None:
        label = self.fresh("jj")
        if self.rng.random() < 0.5:
            # Label-valued immediate.
            self.builder.li_label(SCRATCH_A, label)
        else:
            # Label-valued data word (resolved post-build).
            address = self.alloc_trigger()
            self.data_labels.append((address, label))
            self.builder.li(SCRATCH_B, address)
            self.builder.load(SCRATCH_A, SCRATCH_B)
        self.builder.jmpi(SCRATCH_A)
        skip = self.rng.randint(1, 3)
        self.pending.append((index + skip, label))
        self.speculation_sources += 1

    def item_call(self) -> None:
        if not self.functions:
            return self.item_alu()
        self.builder.call(self.rng.choice(self.functions))
        self.speculation_sources += 1

    # ---- speculation-guarded secret blocks ------------------------------

    def item_secret_block(self) -> None:
        """The paper's S-Pattern behind an architecturally-dead guard.

        The guard compares a *cold* trigger word (value 0) against r0
        with BEQ, so the block is always skipped architecturally but
        sits on the not-taken wrong path while the slow trigger load
        resolves — a real dynamic speculation window.  Inside: a
        secret read feeding a probe-array transmit, either unmasked
        (leaky), masked to a constant line (mitigated) or fenced.
        """
        cfg = self.config
        b = self.builder
        skip = self.fresh("guard")
        trigger = self.alloc_trigger()
        b.li(SCRATCH_A, trigger)
        b.load(SCRATCH_B, SCRATCH_A)          # cold -> slow resolve
        b.beq(SCRATCH_B, 0, skip)             # arch: always taken
        self.speculation_sources += 1
        flavour = self.rng.choice(("leaky", "masked", "fenced"))
        r_sec, r_idx, r_probe = SECRET_REGS
        if flavour == "fenced":
            b.fence()                         # kills the window
        b.li(r_sec, cfg.secret_addr)
        b.load(r_sec, r_sec)                  # secret read
        if flavour == "masked":
            # Constant line: the transmitted index ignores the secret.
            b.andi(r_idx, r_sec, 0)
        else:
            b.andi(r_idx, r_sec, cfg.probe_lines - 1)
        b.shli(r_idx, r_idx, cfg.line_bytes.bit_length() - 1)
        b.li(r_probe, cfg.probe_base)
        b.add(r_idx, r_probe, r_idx)
        b.load(r_idx, r_idx)                  # transmit
        b.label(skip)
        if flavour == "leaky":
            self.expected_leaky = True

    # ---- assembly of the whole program ----------------------------------

    def place_due_labels(self, index: int) -> None:
        for due, label in list(self.pending):
            if due <= index:
                self.builder.label(label)
                self.pending.remove((due, label))

    def emit_functions(self) -> None:
        cfg = self.config
        if not cfg.calls:
            return
        for n in range(self.rng.randint(0, cfg.max_functions)):
            self.functions.append(f"fn_{n}")
        # Bodies are emitted after HALT; names exist before the body
        # items run so call sites can reference them.

    def emit_function_bodies(self) -> None:
        cfg = self.config
        junk: Tuple[Callable[[], None], ...] = (
            self.item_alu, self.item_alui, self.item_li,
            self.item_load, self.item_store, self.item_fence)
        for name in self.functions:
            self.builder.label(name)
            for _ in range(self.rng.randint(1, cfg.max_function_items)):
                self.rng.choice(junk)()
            self.builder.ret()
            self.speculation_sources += 1   # the RET itself

    def generate(self) -> GeneratedProgram:
        cfg = self.config
        rng = self.rng
        b = self.builder

        # Public data image.
        for word in range(cfg.data_words):
            b.data_word(cfg.data_base + word * 8,
                        rng.randint(0, (1 << 16) - 1))
        secret_words: Tuple[int, ...] = ()
        if cfg.secret:
            b.data_word(cfg.secret_addr, rng.randrange(1 << 12))
            secret_words = (cfg.secret_addr,)
            for line in range(cfg.probe_lines):
                b.data_word(cfg.probe_base + line * cfg.line_bytes, 0)

        self.emit_functions()

        # Weighted item menu.
        menu: List[Tuple[int, str]] = [
            (5, "alu"), (4, "alui"), (3, "li"), (3, "load"),
            (3, "store"), (2, "load_direct"), (1, "flush"), (1, "fence"),
            (1, "nop"), (3, "branch"),
        ]
        if cfg.jmpi:
            menu.append((1, "jmpi"))
        if cfg.calls:
            menu.append((2, "call"))
        population = [kind for weight, kind in menu for _ in range(weight)]

        secret_blocks = 0
        if cfg.secret and cfg.max_secret_blocks > 0:
            secret_blocks = rng.randint(1, cfg.max_secret_blocks)
        block_at = sorted(rng.sample(range(cfg.length),
                                     min(secret_blocks, cfg.length)))

        # Seed the pool registers with data so junk items do real work.
        for reg in POOL_REGS[:3]:
            b.li(reg, rng.randint(0, 255))

        loop = cfg.loops and rng.random() < 0.6
        if loop:
            b.li(LOOP_REG, rng.randint(1, cfg.max_loop_iterations))
            b.label("loop_top")

        for index in range(cfg.length):
            self.place_due_labels(index)
            if block_at and index == block_at[0]:
                block_at.pop(0)
                self.item_secret_block()
                continue
            kind = rng.choice(population)
            if kind == "branch":
                self.item_branch(index)
            elif kind == "jmpi":
                self.item_jmpi(index)
            elif kind == "call":
                self.item_call()
            else:
                getattr(self, f"item_{kind}")()
        self.place_due_labels(cfg.length + 8)

        if loop:
            b.addi(LOOP_REG, LOOP_REG, -1)
            b.bne(LOOP_REG, 0, "loop_top")
        b.halt()
        self.emit_function_bodies()

        program = b.build()
        if self.data_labels:
            patched = dict(program.initial_memory)
            for address, label in self.data_labels:
                patched[address] = program.labels[label]
            program = dataclasses.replace(program, initial_memory=patched)
        return GeneratedProgram(
            program=program,
            seed=None,
            config=cfg,
            secret_words=secret_words,
            expected_leaky=self.expected_leaky,
            speculation_sources=self.speculation_sources,
        )


def generate_program(
    seed: object,
    config: Optional[GeneratorConfig] = None,
    rng: Optional[random.Random] = None,
) -> GeneratedProgram:
    """Generate one program.  ``seed`` feeds a private
    :class:`random.Random` unless an ``rng`` is injected (campaigns
    derive per-case rngs from one master seed)."""
    config = config if config is not None else GeneratorConfig()
    rng = rng if rng is not None else random.Random(seed)
    generated = _Emitter(rng, config).generate()
    generated.seed = seed
    return generated


def case_seed(master_seed: int, index: int) -> str:
    """The per-case derived seed: a *string* seed is hashed with
    SHA-512 by :class:`random.Random`, so every case stream is
    independent yet bit-reproducible from ``(master_seed, index)``."""
    return f"{master_seed}:{index}"
