"""Replayable fuzz regression cases.

Every disagreement a campaign finds is shrunk and persisted as a
:class:`FuzzCase` — a JSON file carrying the seed, the generator
config, the (minimized) program *as assembler text*, and the exact
repro command.  The regression suite replays every case in
``tests/data/fuzz_regressions/`` each run:

- ``expect="fixed"`` — the historical disagreement must *stay* fixed
  (the check must come back clean now);
- ``expect="reproduces"`` — the case documents a known, accepted
  behaviour and must keep reproducing (used for pinned
  explained-precision gaps).

Program text, not pickles: the round-trip property
(:func:`repro.fuzz.differential.roundtrip_error`) is what makes this
storage format trustworthy.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..isa.assembler import assemble, disassemble
from ..isa.program import Program

#: Default location of pinned regression cases, relative to the repo.
REGRESSION_DIR = Path("tests") / "data" / "fuzz_regressions"

_SCHEMA = 1


@dataclass
class FuzzCase:
    """One persisted, replayable fuzz finding."""

    case_id: str
    #: "diff_mismatch" | "certify_disagreement" | "evolve_survivor"
    kind: str
    seed: str
    source: str                      # assembler text of the program
    base_address: int = 0x1000
    secret_words: Tuple[int, ...] = ()
    modes: Tuple[str, ...] = ()
    config: Dict[str, object] = field(default_factory=dict)
    #: Human-readable description of the original disagreement.
    details: str = ""
    #: Shell command that reproduces the original finding.
    repro: str = ""
    #: "fixed" — check must now pass; "reproduces" — must still fire.
    expect: str = "fixed"

    def program(self) -> Program:
        return assemble(self.source, base_address=self.base_address)

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": _SCHEMA,
            "case_id": self.case_id,
            "kind": self.kind,
            "seed": self.seed,
            "source": self.source,
            "base_address": self.base_address,
            "secret_words": list(self.secret_words),
            "modes": list(self.modes),
            "config": self.config,
            "details": self.details,
            "repro": self.repro,
            "expect": self.expect,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzCase":
        def ints(key: str) -> Tuple[int, ...]:
            raw = data.get(key, [])
            assert isinstance(raw, list)
            return tuple(int(v) for v in raw)

        modes_raw = data.get("modes", [])
        assert isinstance(modes_raw, list)
        config = data.get("config", {})
        assert isinstance(config, dict)
        return cls(
            case_id=str(data["case_id"]),
            kind=str(data["kind"]),
            seed=str(data["seed"]),
            source=str(data["source"]),
            base_address=int(data.get("base_address", 0x1000)),  # type: ignore[arg-type]
            secret_words=ints("secret_words"),
            modes=tuple(str(m) for m in modes_raw),
            config=config,
            details=str(data.get("details", "")),
            repro=str(data.get("repro", "")),
            expect=str(data.get("expect", "fixed")),
        )

    def save(self, directory: Path) -> Path:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.case_id}.json"
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Path) -> "FuzzCase":
        data = json.loads(path.read_text())
        assert isinstance(data, dict)
        return cls.from_dict(data)


def make_case(
    *,
    case_id: str,
    kind: str,
    seed: str,
    program: Program,
    secret_words: Tuple[int, ...] = (),
    modes: Tuple[str, ...] = (),
    config: Optional[Dict[str, object]] = None,
    details: str = "",
    repro: str = "",
    expect: str = "fixed",
) -> FuzzCase:
    """Build a :class:`FuzzCase` from a live :class:`Program`."""
    return FuzzCase(
        case_id=case_id,
        kind=kind,
        seed=seed,
        source=disassemble(program),
        base_address=program.base_address,
        secret_words=secret_words,
        modes=modes,
        config=dict(config or {}),
        details=details,
        repro=repro,
        expect=expect,
    )


def load_cases(directory: Path = REGRESSION_DIR) -> List[FuzzCase]:
    """All pinned cases under ``directory``, sorted by file name."""
    if not directory.is_dir():
        return []
    return [FuzzCase.load(path)
            for path in sorted(directory.glob("*.json"))]


def case_fires(case: FuzzCase) -> bool:
    """Re-run the check a :class:`FuzzCase` documents.

    Returns whether the original disagreement/leak *fires* today.
    The regression suite asserts ``case_fires(c) == (c.expect ==
    "reproduces")`` for every pinned case: a ``"fixed"`` case firing
    again is a regression, a ``"reproduces"`` case going quiet means
    the pinned behaviour silently changed.
    """
    program = case.program()
    if case.kind == "diff_mismatch":
        from .differential import differential_check
        outcome = differential_check(
            program, modes=case.modes or ("origin",))
        return outcome.valid and not outcome.clean
    if case.kind == "certify_disagreement":
        from .agreement import certify_agreement
        agreement = certify_agreement(program, case.secret_words)
        return agreement is not None and not agreement.clean
    if case.kind == "evolve_survivor":
        from .evolve import leak_fitness
        mode = case.modes[0] if case.modes else "origin"
        fitness = leak_fitness(program, case.secret_words, mode,
                               warm_words=case.secret_words)
        return bool(fitness)
    raise ValueError(f"unknown FuzzCase kind {case.kind!r}")
