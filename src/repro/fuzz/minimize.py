"""Delta-debugging minimizer for fuzz disagreements.

Given a program and a *predicate* (``True`` = the disagreement still
reproduces), shrink the program while keeping the predicate true.
Deterministic by construction — no randomness, stable iteration order
— so the same input always shrinks to the same output.

Two phases:

1. **NOP-out (ddmin).**  Instructions are replaced by ``NOP`` in
   chunks of halving granularity.  Addresses, labels and branch
   targets are untouched, so every candidate is trivially well-formed.
2. **Strip.**  The surviving NOPs are deleted and every embedded
   address — branch/jump/call targets, the label table, label-valued
   ``LI`` immediates and label-valued data words — is remapped through
   the compaction map (a target pointing *at* a deleted NOP slides
   forward to the next kept instruction, which is exactly where
   fall-through execution would have arrived).  The stripped program
   is kept only if the predicate still holds on it; then unused data
   words are dropped greedily.

A predicate must treat an *invalid* candidate (e.g. one whose oracle
run no longer halts because the shrink broke the loop counter) as
``False`` — :func:`repro.fuzz.differential.differential_check` already
reports those as invalid rather than mismatching.
"""
from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List

from ..isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from ..isa.program import Program

Predicate = Callable[[Program], bool]

_NOP = Instruction(Opcode.NOP)


@dataclass
class MinimizeResult:
    """Outcome of one minimization."""

    program: Program
    instructions_before: int
    instructions_after: int
    #: Predicate evaluations spent (the shrink budget actually used).
    tests: int
    #: Whether the strip phase could be applied.
    stripped: bool

    @property
    def reduction(self) -> float:
        if self.instructions_before == 0:
            return 0.0
        return 1.0 - self.instructions_after / self.instructions_before


def _with_nops(program: Program, indices: List[int]) -> Program:
    instructions = list(program.instructions)
    for index in indices:
        instructions[index] = _NOP
    return dataclasses.replace(program, instructions=instructions)


def strip_nops(program: Program) -> Program:
    """Delete NOPs, remapping every embedded code address through the
    compaction map (see module docstring)."""
    label_addresses = set(program.labels.values())
    kept: List[Instruction] = []
    kept_old_addresses: List[int] = []
    for address, instruction in program.iter_addressed():
        if instruction.op is Opcode.NOP:
            continue
        kept.append(instruction)
        kept_old_addresses.append(address)

    def remap(address: int) -> int:
        """New address of the first kept instruction at or after
        ``address`` (falling through deleted NOPs)."""
        for position, old in enumerate(kept_old_addresses):
            if old >= address:
                return (program.base_address
                        + position * INSTRUCTION_BYTES)
        return program.base_address + len(kept) * INSTRUCTION_BYTES

    def remap_value(value: int) -> int:
        return remap(value) if value in label_addresses else value

    rewritten: List[Instruction] = []
    for instruction in kept:
        if instruction.is_branch and not instruction.is_indirect:
            instruction = dataclasses.replace(
                instruction, target=remap(instruction.target))
        elif instruction.op is Opcode.LI:
            instruction = dataclasses.replace(
                instruction, imm=remap_value(instruction.imm))
        rewritten.append(instruction)

    entry = program.entry_point
    return Program(
        instructions=rewritten,
        base_address=program.base_address,
        labels={name: remap(address)
                for name, address in program.labels.items()},
        initial_memory={address: remap_value(value)
                        for address, value
                        in program.initial_memory.items()},
        entry_point=remap(entry) if entry is not None else None,
    )


def _drop_data_words(
    program: Program,
    predicate: Predicate,
    budget: List[int],
) -> Program:
    """Greedily delete initial-memory words the predicate ignores."""
    current = program
    for address in sorted(program.initial_memory):
        if budget[0] <= 0:
            break
        memory = dict(current.initial_memory)
        if address not in memory:
            continue
        del memory[address]
        candidate = dataclasses.replace(current, initial_memory=memory)
        budget[0] -= 1
        if predicate(candidate):
            current = candidate
    return current


def minimize_program(
    program: Program,
    predicate: Predicate,
    *,
    max_tests: int = 2000,
) -> MinimizeResult:
    """Shrink ``program`` while ``predicate`` stays true.

    ``predicate(program)`` itself must be true on entry; a
    ``ValueError`` is raised otherwise (a minimizer fed a
    non-reproducing case would silently return garbage).
    """
    if not predicate(program):
        raise ValueError("predicate does not hold on the input program")
    budget = [max_tests]
    before = len(program.instructions)

    # Phase 1: ddmin NOP-out over the non-NOP instruction indices.
    nopped: List[int] = []
    candidates = [index for index, instruction
                  in enumerate(program.instructions)
                  if instruction.op is not Opcode.NOP]
    granularity = max(1, len(candidates) // 2)
    while granularity >= 1 and budget[0] > 0:
        progress = False
        position = 0
        while position < len(candidates) and budget[0] > 0:
            chunk = candidates[position:position + granularity]
            trial = _with_nops(program, nopped + chunk)
            budget[0] -= 1
            if predicate(trial):
                nopped.extend(chunk)
                del candidates[position:position + granularity]
                progress = True
            else:
                position += granularity
        if granularity == 1 and not progress:
            break
        granularity = max(1, granularity // 2) if granularity > 1 else 0

    current = _with_nops(program, nopped)

    # Phase 2: strip the NOPs (compaction) if the case survives it.
    stripped = strip_nops(current)
    budget[0] -= 1
    applied = budget[0] >= 0 and predicate(stripped)
    if applied:
        current = stripped
        current = _drop_data_words(current, predicate, budget)

    return MinimizeResult(
        program=current,
        instructions_before=before,
        instructions_after=sum(
            1 for instruction in current.instructions
            if instruction.op is not Opcode.NOP),
        tests=max_tests - budget[0],
        stripped=applied,
    )
