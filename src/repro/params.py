"""Configuration dataclasses and the paper's simulated-processor presets.

``paper_config`` mirrors Table III of the paper.  ``a57_like``,
``i7_like`` and ``xeon_like`` mirror the three cores used in the
sensitivity study of Table VI (Section VI.D).
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Optional

from .errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (annotations only)
    from .robustness.faults import FaultPlan

#: Default simulation cycle budget, shared by :meth:`Processor.run`,
#: the experiment runner and the CLI so a benchmark behaves the same
#: no matter which entry point launched it.
DEFAULT_MAX_CYCLES = 8_000_000


@dataclass(frozen=True)
class RunOptions:
    """Execution budgets and perturbations for one simulation run.

    The same triplet — cycle budget, wall-clock budget, fault plan —
    used to be threaded as three separate keyword arguments through
    :meth:`repro.pipeline.processor.Processor.run`,
    :func:`repro.experiments.runner.run_benchmark`,
    :func:`repro.experiments.runner.run_modes` and
    :class:`repro.experiments.runner.SweepEngine`.  ``RunOptions``
    bundles them; every one of those entry points accepts
    ``options=RunOptions(...)`` while still honoring the old keywords
    (an explicit old-style keyword overrides the corresponding
    ``RunOptions`` field).
    """

    #: Cycle budget; ``None`` means :data:`DEFAULT_MAX_CYCLES`.
    max_cycles: Optional[int] = None
    #: Wall-clock budget in seconds (polled coarsely); ``None`` = none.
    wall_clock_budget: Optional[float] = None
    #: Fault-injection plan (see :mod:`repro.robustness.faults`).
    fault_plan: Optional["FaultPlan"] = None
    #: Cooperative cancellation hook, polled at the same coarse cadence
    #: as the wall-clock budget.  Returning ``True`` ends the run with
    #: ``termination="cancelled"`` (the ``repro serve`` job manager
    #: aborts in-flight simulations through this).  Excluded from
    #: equality so two option bundles with the same budgets compare
    #: equal; must be ``None`` for options that cross process
    #: boundaries (parallel sweep payloads pickle their options).
    cancel_check: Optional[Callable[[], bool]] = field(
        default=None, compare=False)

    def __post_init__(self) -> None:
        if self.max_cycles is not None and self.max_cycles <= 0:
            raise ConfigError("max_cycles must be positive")
        if self.wall_clock_budget is not None \
                and self.wall_clock_budget <= 0:
            raise ConfigError("wall_clock_budget must be positive")

    @property
    def effective_max_cycles(self) -> int:
        return self.max_cycles if self.max_cycles is not None \
            else DEFAULT_MAX_CYCLES

    def merged(
        self,
        max_cycles: Optional[int] = None,
        wall_clock_budget: Optional[float] = None,
        fault_plan: Optional["FaultPlan"] = None,
        cancel_check: Optional[Callable[[], bool]] = None,
    ) -> "RunOptions":
        """A copy with any explicitly-given legacy keyword overriding
        the corresponding field (the old-keywords-win rule)."""
        if max_cycles is None and wall_clock_budget is None \
                and fault_plan is None and cancel_check is None:
            return self
        return RunOptions(
            max_cycles=max_cycles if max_cycles is not None
            else self.max_cycles,
            wall_clock_budget=wall_clock_budget
            if wall_clock_budget is not None else self.wall_clock_budget,
            fault_plan=fault_plan if fault_plan is not None
            else self.fault_plan,
            cancel_check=cancel_check if cancel_check is not None
            else self.cancel_check,
        )

    @classmethod
    def coerce(
        cls,
        options: Optional["RunOptions"],
        max_cycles: Optional[int] = None,
        wall_clock_budget: Optional[float] = None,
        fault_plan: Optional["FaultPlan"] = None,
        cancel_check: Optional[Callable[[], bool]] = None,
    ) -> "RunOptions":
        """Resolve the ``options``-plus-legacy-keywords calling
        convention into one :class:`RunOptions`."""
        base = options if options is not None else cls()
        return base.merged(max_cycles=max_cycles,
                           wall_clock_budget=wall_clock_budget,
                           fault_plan=fault_plan,
                           cancel_check=cancel_check)


def _power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheParams:
    """Geometry and timing of one set-associative cache level."""

    name: str
    size_bytes: int
    ways: int
    line_bytes: int = 64
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if not _power_of_two(self.line_bytes):
            raise ConfigError(f"{self.name}: line size must be a power of two")
        if self.ways <= 0:
            raise ConfigError(f"{self.name}: ways must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"{self.name}: size must be a multiple of ways * line size"
            )
        if not _power_of_two(self.num_sets):
            raise ConfigError(f"{self.name}: number of sets must be a power of two")
        if self.hit_latency < 1:
            raise ConfigError(f"{self.name}: hit latency must be >= 1")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class TLBParams:
    """Geometry and timing of a (fully associative) TLB."""

    entries: int = 64
    hit_latency: int = 1
    miss_latency: int = 30
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigError("TLB entries must be positive")
        if not _power_of_two(self.page_bytes):
            raise ConfigError("page size must be a power of two")


@dataclass(frozen=True)
class CoreParams:
    """Out-of-order core configuration (Table III of the paper)."""

    name: str = "paper"
    fetch_width: int = 4
    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_entries: int = 192
    iq_entries: int = 64
    ldq_entries: int = 32
    stq_entries: int = 24
    store_buffer_entries: int = 8
    num_arch_regs: int = 32
    # Front-end depth models the fetch-to-dispatch portion of the paper's
    # 15-stage pipeline; it sets the branch misprediction penalty.
    frontend_depth: int = 10
    # Branch predictor.  History depth is kept shallow so the gshare
    # tables train within the (short) synthetic workloads; deep global
    # history needs billions of instructions to stabilize.
    bp_history_bits: int = 6
    btb_entries: int = 512
    # Memory dependence speculation: loads may issue past older stores
    # whose addresses are unknown (required for Spectre V4).
    memory_dependence_speculation: bool = True
    # Store-wait predictor (Alpha 21264 style): loads whose PC caused
    # ordering violations stop speculating past unknown stores.  An
    # ablation feature; off by default to match the paper's substrate.
    store_wait_predictor: bool = False
    # Functional unit latencies.
    int_alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12

    def __post_init__(self) -> None:
        for attr in (
            "fetch_width",
            "dispatch_width",
            "issue_width",
            "commit_width",
            "rob_entries",
            "iq_entries",
            "ldq_entries",
            "stq_entries",
            "store_buffer_entries",
            "frontend_depth",
        ):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")
        if self.num_arch_regs < 8:
            raise ConfigError("need at least 8 architectural registers")

    @property
    def num_phys_regs(self) -> int:
        """Physical register file size: one per ROB slot plus the map."""
        return self.rob_entries + self.num_arch_regs


@dataclass(frozen=True)
class MemoryParams:
    """Cache hierarchy plus main-memory timing (Table III)."""

    l1i: CacheParams = field(
        default_factory=lambda: CacheParams("L1I", 64 * 1024, 4, 64, 2)
    )
    l1d: CacheParams = field(
        default_factory=lambda: CacheParams("L1D", 64 * 1024, 4, 64, 2)
    )
    l2: CacheParams = field(
        default_factory=lambda: CacheParams("L2", 2 * 1024 * 1024, 16, 64, 10)
    )
    l3: CacheParams = field(
        default_factory=lambda: CacheParams("L3", 8 * 1024 * 1024, 32, 64, 60)
    )
    dram_latency: int = 192
    itlb: TLBParams = field(default_factory=TLBParams)
    dtlb: TLBParams = field(default_factory=TLBParams)

    def __post_init__(self) -> None:
        lines = {self.l1i.line_bytes, self.l1d.line_bytes, self.l2.line_bytes,
                 self.l3.line_bytes}
        if len(lines) != 1:
            raise ConfigError("all cache levels must share one line size")
        if self.dram_latency <= self.l3.hit_latency:
            raise ConfigError("DRAM latency must exceed L3 hit latency")

    @property
    def line_bytes(self) -> int:
        return self.l1d.line_bytes


@dataclass(frozen=True)
class MachineParams:
    """A complete simulated machine: core plus memory system."""

    core: CoreParams = field(default_factory=CoreParams)
    memory: MemoryParams = field(default_factory=MemoryParams)

    @property
    def name(self) -> str:
        return self.core.name


def paper_config() -> MachineParams:
    """The paper's main configuration (Table III)."""
    return MachineParams()


def a57_like() -> MachineParams:
    """Mobile-class core for the Table VI sensitivity study."""
    core = CoreParams(
        name="a57-like",
        fetch_width=3,
        dispatch_width=3,
        issue_width=3,
        commit_width=3,
        rob_entries=40,
        iq_entries=32,
        ldq_entries=16,
        stq_entries=12,
        frontend_depth=8,
        bp_history_bits=5,
        btb_entries=256,
    )
    memory = MemoryParams(
        l1i=CacheParams("L1I", 32 * 1024, 2, 64, 2),
        l1d=CacheParams("L1D", 32 * 1024, 2, 64, 2),
        l2=CacheParams("L2", 1024 * 1024, 16, 64, 9),
        l3=CacheParams("L3", 2 * 1024 * 1024, 16, 64, 40),
        dram_latency=160,
        itlb=TLBParams(entries=48),
        dtlb=TLBParams(entries=48),
    )
    return MachineParams(core=core, memory=memory)


def i7_like() -> MachineParams:
    """Desktop-class core for the Table VI sensitivity study."""
    core = CoreParams(
        name="i7-like",
        fetch_width=4,
        dispatch_width=4,
        issue_width=6,
        commit_width=4,
        rob_entries=168,
        iq_entries=54,
        ldq_entries=48,
        stq_entries=32,
        frontend_depth=12,
        bp_history_bits=6,
        btb_entries=1024,
    )
    memory = MemoryParams(
        l1i=CacheParams("L1I", 32 * 1024, 8, 64, 2),
        l1d=CacheParams("L1D", 32 * 1024, 8, 64, 2),
        l2=CacheParams("L2", 256 * 1024, 8, 64, 10),
        l3=CacheParams("L3", 8 * 1024 * 1024, 16, 64, 50),
        dram_latency=192,
    )
    return MachineParams(core=core, memory=memory)


def xeon_like() -> MachineParams:
    """Server-class core for the Table VI sensitivity study."""
    core = CoreParams(
        name="xeon-like",
        fetch_width=5,
        dispatch_width=5,
        issue_width=8,
        commit_width=5,
        rob_entries=224,
        iq_entries=96,
        ldq_entries=72,
        stq_entries=56,
        frontend_depth=14,
        bp_history_bits=7,
        btb_entries=2048,
    )
    memory = MemoryParams(
        l1i=CacheParams("L1I", 32 * 1024, 8, 64, 2),
        l1d=CacheParams("L1D", 32 * 1024, 8, 64, 2),
        l2=CacheParams("L2", 256 * 1024, 8, 64, 12),
        l3=CacheParams("L3", 16 * 1024 * 1024, 16, 64, 60),
        dram_latency=200,
    )
    return MachineParams(core=core, memory=memory)


def tiny_config() -> MachineParams:
    """A deliberately small machine used by unit tests (fast, easy to
    reason about: 2-wide, small queues, tiny caches)."""
    core = CoreParams(
        name="tiny",
        fetch_width=2,
        dispatch_width=2,
        issue_width=2,
        commit_width=2,
        rob_entries=16,
        iq_entries=8,
        ldq_entries=6,
        stq_entries=6,
        store_buffer_entries=4,
        frontend_depth=3,
        bp_history_bits=6,
        btb_entries=32,
    )
    memory = MemoryParams(
        l1i=CacheParams("L1I", 1024, 2, 64, 1),
        l1d=CacheParams("L1D", 1024, 2, 64, 1),
        l2=CacheParams("L2", 4096, 4, 64, 6),
        l3=CacheParams("L3", 16384, 8, 64, 20),
        dram_latency=60,
        itlb=TLBParams(entries=8),
        dtlb=TLBParams(entries=8),
    )
    return MachineParams(core=core, memory=memory)


PRESETS = {
    "paper": paper_config,
    "a57-like": a57_like,
    "i7-like": i7_like,
    "xeon-like": xeon_like,
    "tiny": tiny_config,
}


def preset(name: str) -> MachineParams:
    """Look up a machine preset by name."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise ConfigError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None


def with_core(machine: MachineParams, **overrides) -> MachineParams:
    """Return a copy of ``machine`` with core fields overridden."""
    return replace(machine, core=replace(machine.core, **overrides))
