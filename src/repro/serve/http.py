"""Minimal HTTP/1.1 framing for the serve daemon — stdlib only.

Just enough of the protocol for a JSON job API: request-line +
headers + optional ``Content-Length`` body in; status + JSON body out,
``Connection: close`` (one request per connection keeps the server
loop trivial and is plenty for a localhost analysis service).  Hard
limits on header and body size make hostile or confused clients a
400, not a memory problem.
"""
from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ServeError

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 2 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ServeError):
    """Malformed request framing; maps to a 400 response."""


@dataclass
class Request:
    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(f"request body is not valid JSON: {exc}") \
                from None


async def read_request(
    reader: asyncio.StreamReader,
    timeout: float = 30.0,
) -> Optional[Request]:
    """Parse one request; ``None`` on a cleanly closed idle connection.

    Raises :class:`HttpError` on malformed framing and
    ``asyncio.TimeoutError`` on a stalled peer (both close the
    connection).
    """
    try:
        head = await asyncio.wait_for(
            reader.readuntil(b"\r\n\r\n"), timeout)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError("connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HttpError("request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError("request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(f"malformed request line: {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError("bad Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError("body too large (2MB limit)")
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout)
    elif headers.get("transfer-encoding"):
        raise HttpError("chunked request bodies are not supported")

    return Request(method=method, path=path, headers=headers, body=body)


def json_response(status: int, payload: object) -> bytes:
    """Serialize one ``Connection: close`` JSON response."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body
