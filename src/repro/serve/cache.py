"""Content-addressed result cache with single-flight deduplication.

The cache key (:meth:`repro.serve.protocol.Submission.cache_key`)
already folds in everything that can change an answer, so a hit is
always safe to serve.  Three layers:

- :class:`ResultCache` — a bounded LRU of finished results.  Purely
  in-memory: results are cheap to recompute and the durable record of
  *jobs* lives in the checkpoint, not here.
- Single-flight — concurrent submissions of the same key while the
  first is still computing are coalesced onto one in-flight job
  instead of burning a worker each.  :meth:`ResultCache.claim` returns
  either a finished result, the job id already computing this key, or
  a fresh claim for the caller to fulfil.
- Region tier (:attr:`ResultCache.regions`) — a
  :class:`~repro.analysis.summaries.SummaryCache` of per-program
  CFG/loop summaries keyed on canonical content hashes.  Where the
  result cache needs the *whole submission* to match, the region tier
  hits whenever the submitted code matches — across names, secret
  sets, and budgets — so a near-miss submission still skips the
  summary analysis inside the certifier.

Thread-safety: the server only touches the cache from the event-loop
thread, but a lock is kept anyway so the engine can be reused from
threaded harnesses.
"""
from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.summaries import SummaryCache


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    coalesced: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class Claim:
    """Outcome of :meth:`ResultCache.claim` — exactly one field set.

    - ``result`` — finished answer, serve it directly.
    - ``leader`` — the job id already computing this key; attach.
    - neither — the caller owns the computation and must eventually
      :meth:`ResultCache.fulfil` or :meth:`ResultCache.abandon`.
    """

    result: Optional[Dict[str, object]] = None
    leader: Optional[str] = None

    @property
    def owned(self) -> bool:
        return self.result is None and self.leader is None


class ResultCache:
    """Bounded LRU result cache + single-flight registry."""

    def __init__(self, capacity: int = 1024,
                 region_capacity: int = 4096,
                 summary_cache_path: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._results: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        #: key -> job id of the in-flight computation (the "leader").
        self._inflight: Dict[str, str] = {}
        #: Region-granular summary tier; hand this to the engine so
        #: certification jobs share it.  ``summary_cache_path``
        #: additionally persists it across daemon restarts.
        self.regions = SummaryCache(path=summary_cache_path,
                                    capacity=region_capacity)

    # ---- plain cache ------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        with self._lock:
            result = self._results.get(key)
            if result is None:
                self.stats.misses += 1
                return None
            self._results.move_to_end(key)
            self.stats.hits += 1
            return result

    def put(self, key: str, result: Dict[str, object]) -> None:
        with self._lock:
            self._results[key] = result
            self._results.move_to_end(key)
            while len(self._results) > self.capacity:
                self._results.popitem(last=False)
                self.stats.evictions += 1

    # ---- single-flight ----------------------------------------------------

    def claim(self, key: str, job_id: str) -> Claim:
        """Claim the right to compute ``key`` on behalf of ``job_id``.

        Checks the finished cache first, then the in-flight registry;
        only when both miss does the caller become the leader.
        """
        with self._lock:
            result = self._results.get(key)
            if result is not None:
                self._results.move_to_end(key)
                self.stats.hits += 1
                return Claim(result=result)
            leader = self._inflight.get(key)
            if leader is not None:
                self.stats.coalesced += 1
                return Claim(leader=leader)
            self.stats.misses += 1
            self._inflight[key] = job_id
            return Claim()

    def fulfil(self, key: str, job_id: str,
               result: Dict[str, object]) -> None:
        """The leader finished: publish the result, clear the flight."""
        with self._lock:
            if self._inflight.get(key) == job_id:
                del self._inflight[key]
            self._results[key] = result
            self._results.move_to_end(key)
            while len(self._results) > self.capacity:
                self._results.popitem(last=False)
                self.stats.evictions += 1

    def abandon(self, key: str, job_id: str) -> None:
        """The leader died without a result (cancelled mid-flight);
        release the key so the next submission recomputes."""
        with self._lock:
            if self._inflight.get(key) == job_id:
                del self._inflight[key]

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)
