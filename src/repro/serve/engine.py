"""Tiered analysis engine: answer at the best tier the budget affords.

The ladder (see :class:`repro.serve.protocol.Tier`):

``taint``
    :func:`repro.analysis.taint.analyze_program` — the static
    S-Pattern scan.  Milliseconds; never degrades.
``valueset``
    taint + :func:`repro.analysis.valueset.refine_report` — confirmed
    / refuted partition under value-set bounds.  Still synchronous.
``symx``
    :func:`repro.analysis.symx.certify_program` — the symbolic
    certifier, run under a wall-clock budget and a cooperative cancel
    hook.  When the budget expires (or the job is cancelled) the
    certifier returns ``UNKNOWN`` with a structured warning instead of
    hanging — and the engine *degrades*: it answers from the next tier
    down (valueset) with ``"degraded": true`` and the truncated symx
    verdict attached, so a client always gets an answer and always
    knows its provenance.

``simulate`` jobs run the pipeline with the same budgets.  A
fault-plan-poisoned run that deadlocks is caught
(:class:`~repro.errors.DeadlockError`) and reported as a degraded
result — the worker that ran it stays healthy.

Every result dict carries a ``"timing"`` key with wall-clock facts;
identity comparisons (the kill-resume test) strip it.

The engine is synchronous and thread-safe by construction (no shared
mutable state); the server calls it from executor threads.
"""
from __future__ import annotations

import threading
import time
import traceback
from typing import Callable, Dict, Optional

from ..analysis.summaries import SummaryCache, compute_program_summaries
from ..analysis.symx import certify_program
from ..analysis.taint import DEFAULT_WINDOW, analyze_program
from ..analysis.valueset import refine_report
from ..core.policy import SecurityConfig
from ..errors import DeadlockError, SimulationError
from ..params import MachineParams, RunOptions, preset
from ..pipeline.processor import Processor
from .protocol import JobKind, Submission, Tier

#: Default whole-job wall-clock budget (seconds) when the submission
#: does not set one.  Generous for the sync tiers, the real governor
#: for symx certification jobs.
DEFAULT_WALL_CLOCK = 20.0

#: Default simulation budgets: a service must never let one job spin
#: forever, so these are deliberately modest (clients raise them
#: explicitly when they mean it).
DEFAULT_MAX_CYCLES = 200_000
DEFAULT_WATCHDOG_CYCLES = 50_000


class AnalysisEngine:
    """Executes one :class:`Submission` at a time, degradation-aware."""

    def __init__(
        self,
        machine: Optional[MachineParams] = None,
        default_wall_clock: float = DEFAULT_WALL_CLOCK,
        default_max_cycles: int = DEFAULT_MAX_CYCLES,
        default_watchdog_cycles: int = DEFAULT_WATCHDOG_CYCLES,
        summary_cache: Optional[SummaryCache] = None,
    ) -> None:
        self.machine = machine or preset("tiny")
        self.default_wall_clock = default_wall_clock
        self.default_max_cycles = default_max_cycles
        self.default_watchdog_cycles = default_watchdog_cycles
        #: Region-granular summary tier (shared with the server's
        #: result cache): repeated submissions of the same code skip
        #: the CFG/loop analysis entirely — the summaries are keyed on
        #: canonical content hashes, so even differently-named
        #: submissions of identical programs hit.
        self.summary_cache = summary_cache if summary_cache is not None \
            else SummaryCache()

    # ---- entry point ------------------------------------------------------

    def execute(
        self,
        submission: Submission,
        cancel: Optional[threading.Event] = None,
    ) -> Dict[str, object]:
        """Run one job to a result dict.  Never raises: any failure is
        folded into a ``"status": "error"`` result so one poisoned job
        cannot take a worker (or the server) down with it."""
        started = time.monotonic()
        try:
            if submission.kind is JobKind.SIMULATE:
                result = self._simulate(submission, cancel, started)
            else:
                result = self._analyze(submission, cancel, started)
        except SimulationError as exc:
            result = self._error_result(submission, exc, expected=True)
        except Exception as exc:  # noqa: BLE001 - per-job isolation
            result = self._error_result(submission, exc, expected=False)
        result["timing"] = {
            "wall_s": round(time.monotonic() - started, 6),
        }
        return result

    # ---- helpers ----------------------------------------------------------

    def _deadline(self, submission: Submission,
                  started: float) -> float:
        budget = submission.budgets.wall_clock
        if budget is None:
            budget = self.default_wall_clock
        return started + budget

    @staticmethod
    def _cancel_check(
        cancel: Optional[threading.Event],
    ) -> Optional[Callable[[], bool]]:
        return cancel.is_set if cancel is not None else None

    @staticmethod
    def _cancelled(cancel: Optional[threading.Event]) -> bool:
        return cancel is not None and cancel.is_set()

    def _error_result(self, submission: Submission, exc: Exception,
                      expected: bool) -> Dict[str, object]:
        result: Dict[str, object] = {
            "status": "error",
            "kind": submission.kind.value,
            "tier_requested": submission.tier.value,
            "name": submission.name,
            "error": {
                "type": type(exc).__name__,
                "message": str(exc),
            },
        }
        if not expected:
            # Unexpected failures keep a traceback for the operator
            # (structured, not a crashed worker).
            result["error"]["traceback"] = traceback.format_exc(limit=8)  # type: ignore[index]
        return result

    # ---- analyze ladder ---------------------------------------------------

    def _analyze(
        self,
        submission: Submission,
        cancel: Optional[threading.Event],
        started: float,
    ) -> Dict[str, object]:
        program = submission.program()
        deadline = self._deadline(submission, started)
        tier = submission.tier

        result: Dict[str, object] = {
            "status": "ok",
            "kind": "analyze",
            "name": submission.name,
            "tier_requested": tier.value,
            "degraded": False,
            "warnings": [],
        }

        # Floor tier: always computed (it feeds valueset and is the
        # answer of last resort).
        taint_report = analyze_program(program, name=submission.name)
        result["taint"] = taint_report.to_dict()
        result["tier_answered"] = Tier.TAINT.value

        if tier is Tier.TAINT:
            return result

        summaries = compute_program_summaries(
            program, window=DEFAULT_WINDOW, cache=self.summary_cache)
        refined = refine_report(
            program, taint_report,
            secret_words=submission.secret_words,
            summaries=summaries,
        )
        result["valueset"] = refined.to_dict()
        result["tier_answered"] = Tier.VALUESET.value

        if tier is Tier.VALUESET:
            return result

        # Top tier: symbolic certification under the remaining
        # wall-clock budget and the job's cancel hook.  If the cheap
        # tiers already spent the whole budget, certification is not
        # attempted at all — degrading here is the deterministic twin
        # of timing out two lines below.
        budgets = submission.budgets
        remaining = deadline - time.monotonic()
        if remaining <= 0 or self._cancelled(cancel):
            cause = "cancelled" if self._cancelled(cancel) \
                else "wall_clock"
            result["degraded"] = True
            result["tier_answered"] = Tier.VALUESET.value
            result["symx"] = {
                "verdict": "UNKNOWN",
                "truncated": True,
                "skipped": True,
                "warnings": [{
                    "kind": cause,
                    "detail": "budget exhausted before certification "
                              "could start",
                }],
            }
            result["warnings"] = [  # type: ignore[assignment]
                {
                    "kind": "degraded",
                    "from_tier": Tier.SYMX.value,
                    "to_tier": Tier.VALUESET.value,
                    "cause": [cause],
                }
            ]
            if self._cancelled(cancel):
                result["cancelled"] = True
            return result
        certify_kwargs: Dict[str, object] = {
            "secret_words": submission.secret_words,
            "name": submission.name,
            "wall_clock_budget": remaining,
            "cancel_check": self._cancel_check(cancel),
            "replay": False,
            "summaries": summaries,
        }
        if budgets.max_steps is not None:
            certify_kwargs["max_steps"] = budgets.max_steps
        if budgets.max_paths is not None:
            certify_kwargs["max_paths"] = budgets.max_paths
        if budgets.max_depth is not None:
            certify_kwargs["max_depth"] = budgets.max_depth
        certified = certify_program(program, **certify_kwargs)  # type: ignore[arg-type]

        warning_kinds = {str(w.get("kind")) for w in certified.warnings}
        out_of_time = bool(warning_kinds & {"wall_clock", "cancelled"})

        result["symx"] = {
            "verdict": certified.verdict.value,
            "leaky_pcs": [f"{pc:#x}" for pc in certified.leaky_pcs],
            "paths": certified.paths,
            "steps": certified.steps,
            "truncated": certified.truncated,
            "warnings": [dict(w) for w in certified.warnings],
            "merged_paths": certified.merged_paths,
            "summarized_loops": certified.summarized_loops,
            "accelerated_loops": certified.accelerated_loops,
            "summary_cache_hit": summaries.cache_hit,
        }

        if out_of_time:
            # Budget exhausted (or job cancelled): the symx verdict is
            # UNKNOWN-by-truncation, so the *answer* degrades to the
            # tier below — tagged, with the truncated verdict kept for
            # audit.
            result["degraded"] = True
            result["tier_answered"] = Tier.VALUESET.value
            result["warnings"] = [  # type: ignore[assignment]
                {
                    "kind": "degraded",
                    "from_tier": Tier.SYMX.value,
                    "to_tier": Tier.VALUESET.value,
                    "cause": sorted(
                        warning_kinds & {"wall_clock", "cancelled"}),
                }
            ]
            if self._cancelled(cancel):
                result["cancelled"] = True
        else:
            result["tier_answered"] = Tier.SYMX.value
        return result

    # ---- simulate ---------------------------------------------------------

    def _simulate(
        self,
        submission: Submission,
        cancel: Optional[threading.Event],
        started: float,
    ) -> Dict[str, object]:
        program = submission.program()
        budgets = submission.budgets
        deadline = self._deadline(submission, started)
        watchdog = budgets.watchdog_cycles or self.default_watchdog_cycles
        options = RunOptions(
            max_cycles=budgets.max_cycles or self.default_max_cycles,
            wall_clock_budget=max(0.001, deadline - time.monotonic()),
            fault_plan=submission.fault_plan(),
            cancel_check=self._cancel_check(cancel),
        )
        result: Dict[str, object] = {
            "status": "ok",
            "kind": "simulate",
            "name": submission.name,
            "tier_requested": submission.tier.value,
            "degraded": False,
            "warnings": [],
        }
        processor = Processor(
            program,
            machine=self.machine,
            security=submission.security_config(),
            watchdog_cycles=watchdog,
            options=options,
        )
        try:
            report = processor.run()
        except DeadlockError as exc:
            # The poisoned-job case: the pipeline wedged (e.g. a fault
            # plan squashing every commit).  The watchdog turned the
            # hang into a structured error; report it as a degraded
            # result and keep the worker.
            result["degraded"] = True
            result["warnings"] = [  # type: ignore[assignment]
                {"kind": "deadlock", "detail": str(exc)}
            ]
            result["report"] = {"termination": "deadlock",
                                "halted": False}
            return result
        result["report"] = report.to_dict()
        if report.termination in ("wall_clock", "cycle_budget",
                                  "cancelled"):
            # Ran out of budget before HALT: the partial report is
            # still useful, but it is not the run the client asked
            # for — tag it.
            result["degraded"] = True
            result["warnings"] = [  # type: ignore[assignment]
                {"kind": report.termination,
                 "detail": f"simulation ended by {report.termination} "
                           f"after {report.cycles} cycle(s)"}
            ]
            if report.termination == "cancelled":
                result["cancelled"] = True
        return result


def strip_timing(result: Dict[str, object]) -> Dict[str, object]:
    """Result identity modulo wall-clock facts (kill-resume test)."""
    cleaned = {key: value for key, value in result.items()
               if key != "timing"}
    report = cleaned.get("report")
    if isinstance(report, dict):
        cleaned["report"] = dict(report)
    symx = cleaned.get("symx")
    if isinstance(symx, dict):
        # Path/step counts under a *wall-clock* truncation are timing-
        # dependent; verdict and provenance are not.  The summary-
        # cache hit flag depends on what ran before this job (a
        # resumed run hits where the original missed), so it is
        # timing-like too.
        trimmed = dict(symx)
        if trimmed.get("truncated"):
            trimmed.pop("paths", None)
            trimmed.pop("steps", None)
        trimmed.pop("summary_cache_hit", None)
        cleaned["symx"] = trimmed
    return cleaned
