"""Admission control: keep the daemon healthy under overload.

Two independent gates, applied in order before a submission touches a
worker:

1. **Per-client token bucket** — each client id gets ``rate`` tokens
   per second up to a ``burst`` ceiling.  A client that outruns its
   bucket is shed with a 429 *without* consuming queue capacity, so
   one greedy client cannot starve the rest.
2. **Bounded queue** — the background-job queue has a hard depth
   limit.  When it is full the server sheds *explicitly* (429 +
   ``"reason": "queue_full"``) instead of accepting work it cannot
   finish; an unbounded queue under sustained overload is just a
   slow-motion out-of-memory crash.

Shedding is always explicit and accounted — the load-test harness
asserts the shed rate is reported, not hidden in timeouts.

Time is injected (``clock``) so tests drive the bucket
deterministically.
"""
from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional


@dataclass
class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` cap."""

    rate: float
    burst: float
    clock: Callable[[], float] = time.monotonic
    tokens: float = field(init=False)
    _stamp: float = field(init=False)

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ValueError("token bucket rate and burst must be positive")
        self.tokens = self.burst
        self._stamp = self.clock()

    def take(self, amount: float = 1.0) -> bool:
        """Try to spend ``amount`` tokens; False means rate-limited."""
        now = self.clock()
        self.tokens = min(self.burst,
                          self.tokens + (now - self._stamp) * self.rate)
        self._stamp = now
        if self.tokens < amount:
            return False
        self.tokens -= amount
        return True


@dataclass
class AdmissionStats:
    admitted: int = 0
    rate_limited: int = 0
    queue_full: int = 0

    @property
    def shed(self) -> int:
        return self.rate_limited + self.queue_full

    def to_dict(self) -> Dict[str, int]:
        return {
            "admitted": self.admitted,
            "rate_limited": self.rate_limited,
            "queue_full": self.queue_full,
            "shed": self.shed,
        }


class AdmissionController:
    """Both gates plus bookkeeping; thread-safe."""

    def __init__(
        self,
        rate: float = 50.0,
        burst: float = 100.0,
        max_queue_depth: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.rate = rate
        self.burst = burst
        self.max_queue_depth = max_queue_depth
        self.clock = clock
        self.stats = AdmissionStats()
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}

    def admit(self, client: str, queue_depth: int) -> Optional[str]:
        """Gate one submission.

        Returns ``None`` when admitted, else the shed reason
        (``"rate_limited"`` or ``"queue_full"``) for the 429 body.
        """
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst, self.clock)
                self._buckets[client] = bucket
            if not bucket.take():
                self.stats.rate_limited += 1
                return "rate_limited"
            if queue_depth >= self.max_queue_depth:
                self.stats.queue_full += 1
                return "queue_full"
            self.stats.admitted += 1
            return None
