"""The ``repro serve`` daemon: asyncio front, thread-pool back.

Architecture (one process, no third-party deps):

- An :func:`asyncio.start_server` accept loop parses HTTP/JSON
  requests (:mod:`repro.serve.http`) on the event-loop thread.
- Cheap tiers (taint, valueset) are answered *inline* in the request:
  the engine call is pushed to the worker thread pool and awaited, so
  the loop never blocks but the client gets a single round-trip.
- Expensive work (symx certification, simulation) becomes a
  *background job*: 202 + job id now, poll ``GET /v1/jobs/<id>``
  until ``state == "done"``.  Worker coroutines pull job ids off a
  bounded queue and run the engine in a
  :class:`~concurrent.futures.ThreadPoolExecutor` (the analyses are
  pure CPU-bound Python; threads are enough because each call is a
  single long-running C-level-free function we poll cooperatively).
- Every background job is journalled (:mod:`repro.serve.jobs`); a
  killed server restarted on the same ``--checkpoint`` path recovers
  finished results verbatim and re-queues interrupted jobs.
- Admission control (:mod:`repro.serve.admission`) sheds with
  explicit 429s before overload can build; per-job failure isolation
  lives in the engine (a poisoned job is a degraded *result*, never a
  dead worker).

Graceful shutdown: SIGTERM/SIGINT stop the accept loop, drain queued
and running jobs within ``drain_grace`` seconds, then cancel whatever
remains cooperatively.  :meth:`ReproServer.abort` is the crash lever
for tests — it drops everything on the floor exactly like ``kill -9``
(modulo the OS releasing the file lock for us).
"""
from __future__ import annotations

import asyncio
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..params import MachineParams, preset
from .admission import AdmissionController
from .cache import ResultCache
from .engine import (
    DEFAULT_MAX_CYCLES,
    DEFAULT_WALL_CLOCK,
    DEFAULT_WATCHDOG_CYCLES,
    AnalysisEngine,
)
from .http import HttpError, Request, json_response, read_request
from .jobs import JobStore, NullJobStore
from .protocol import JobRecord, JobState, Submission, SubmissionError


@dataclass
class ServeConfig:
    """Everything the daemon can be tuned with."""

    host: str = "127.0.0.1"
    port: int = 8377
    workers: int = 4
    #: Background-job queue bound (admission sheds beyond it).
    queue_depth: int = 64
    #: Per-client token bucket.
    rate: float = 50.0
    burst: float = 100.0
    cache_capacity: int = 1024
    #: JSONL journal path; ``None`` runs ephemeral (no durability).
    checkpoint: Optional[str] = None
    machine: str = "tiny"
    default_wall_clock: float = DEFAULT_WALL_CLOCK
    default_max_cycles: int = DEFAULT_MAX_CYCLES
    default_watchdog_cycles: int = DEFAULT_WATCHDOG_CYCLES
    #: Seconds a SIGTERM drain waits before cancelling stragglers.
    drain_grace: float = 30.0

    def machine_params(self) -> MachineParams:
        return preset(self.machine)


@dataclass
class ServerStats:
    requests: int = 0
    sync_served: int = 0
    jobs_created: int = 0
    jobs_recovered: int = 0
    coalesced: int = 0
    cancelled: int = 0
    errors: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "sync_served": self.sync_served,
            "jobs_created": self.jobs_created,
            "jobs_recovered": self.jobs_recovered,
            "coalesced": self.coalesced,
            "cancelled": self.cancelled,
            "errors": self.errors,
        }


class ReproServer:
    """One daemon instance.  ``await start()`` then ``await
    serve_forever()`` (or drive :meth:`shutdown` / :meth:`abort`
    directly from tests)."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.cache = ResultCache(self.config.cache_capacity)
        self.engine = AnalysisEngine(
            machine=self.config.machine_params(),
            default_wall_clock=self.config.default_wall_clock,
            default_max_cycles=self.config.default_max_cycles,
            default_watchdog_cycles=self.config.default_watchdog_cycles,
            summary_cache=self.cache.regions,
        )
        self.admission = AdmissionController(
            rate=self.config.rate,
            burst=self.config.burst,
            max_queue_depth=self.config.queue_depth,
        )
        self.jobstore: JobStore = (
            JobStore(self.config.checkpoint)
            if self.config.checkpoint else NullJobStore())
        self.stats = ServerStats()
        self.jobs: Dict[str, JobRecord] = {}
        self.draining = False
        self._aborted = False
        self._seq = 0
        self._queue: "asyncio.Queue[str]" = asyncio.Queue()
        self._cancels: Dict[str, threading.Event] = {}
        self._active = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._port: Optional[int] = None
        self._workers: List["asyncio.Task[None]"] = []
        self._executor: Optional[ThreadPoolExecutor] = None
        self._stopped = asyncio.Event()

    # ---- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` ephemeral binds);
        stays valid after the listener closes."""
        assert self._port is not None, "server not started"
        return self._port

    async def start(self) -> None:
        recovered = self.jobstore.open()
        for job in recovered:
            self.jobs[job.job_id] = job
            self._bump_seq(job.job_id)
            if job.done:
                if job.result is not None \
                        and not job.result.get("cancelled"):
                    self.cache.put(job.submission.cache_key(),
                                   job.result)
            else:
                self._cancels[job.job_id] = threading.Event()
                self._queue.put_nowait(job.job_id)
            self.stats.jobs_recovered += 1
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve",
        )
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker())
            for _ in range(self.config.workers)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self._port = int(
            self._server.sockets[0].getsockname()[1])

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum,
                lambda: asyncio.ensure_future(self.shutdown()))

    async def serve_forever(self) -> None:
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful SIGTERM drain: stop accepting, finish queued and
        running jobs within ``drain_grace``, cancel the rest."""
        if self.draining:
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_grace
        while (self._queue.qsize() or self._active) \
                and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self._queue.qsize() or self._active:
            # Grace expired: cooperative cancel for whatever is left.
            for event in self._cancels.values():
                event.set()
            while self._queue.qsize() or self._active:
                await asyncio.sleep(0.02)
        await self._stop_workers()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        self.jobstore.close()
        self._stopped.set()

    async def abort(self) -> None:
        """Crash simulation (tests): drop everything, persist nothing
        beyond what :meth:`JobStore.record` already fsynced — the
        closest a live object can get to ``kill -9``."""
        self._aborted = True
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for event in self._cancels.values():
            event.set()  # unblock engine threads promptly
        await self._stop_workers()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
        self.jobstore.close()  # the OS would release the flock anyway
        self._stopped.set()

    async def _stop_workers(self) -> None:
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._workers = []

    # ---- job machinery ----------------------------------------------------

    def _bump_seq(self, job_id: str) -> None:
        try:
            number = int(job_id.split("-")[1])
        except (IndexError, ValueError):
            return
        self._seq = max(self._seq, number)

    def _new_job_id(self, key: str) -> str:
        self._seq += 1
        return f"job-{self._seq:06d}-{key[:8]}"

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job_id = await self._queue.get()
            job = self.jobs.get(job_id)
            if job is None or job.done:
                self._queue.task_done()
                continue
            cancel = self._cancels.setdefault(job_id, threading.Event())
            self._active += 1
            job.state = JobState.RUNNING
            self.jobstore.record(job)
            try:
                result = await loop.run_in_executor(
                    self._executor, self.engine.execute,
                    job.submission, cancel)
            except asyncio.CancelledError:
                self._active -= 1
                self._queue.task_done()
                raise
            except Exception as exc:  # noqa: BLE001 - isolation backstop
                result = {"status": "error",
                          "error": {"type": type(exc).__name__,
                                    "message": str(exc)}}
            self._active -= 1
            if self._aborted:
                self._queue.task_done()
                continue
            self._finish_job(job, result)
            self._queue.task_done()

    def _finish_job(self, job: JobRecord,
                    result: Dict[str, object]) -> None:
        job.result = result
        job.state = JobState.DONE
        job.finished_at = time.time()
        self.jobstore.record(job)
        key = job.submission.cache_key()
        if result.get("cancelled") or result.get("status") == "error":
            # Cancelled runs answer *this* job but must not satisfy
            # future full-budget submissions; errors likewise.
            self.cache.abandon(key, job.job_id)
        else:
            self.cache.fulfil(key, job.job_id, result)
        self._cancels.pop(job.job_id, None)

    # ---- HTTP plumbing ----------------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                writer.write(json_response(400, {"error": str(exc)}))
                return
            except asyncio.TimeoutError:
                return
            if request is None:
                return
            status, payload = await self._route(request)
            writer.write(json_response(status, payload))
        except Exception as exc:  # noqa: BLE001 - connection backstop
            self.stats.errors += 1
            try:
                writer.write(json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}))
            except Exception:  # noqa: BLE001
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.TimeoutError):
                pass

    async def _route(
        self, request: Request,
    ) -> Tuple[int, Dict[str, object]]:
        self.stats.requests += 1
        parts = [p for p in request.path.split("?")[0].split("/") if p]
        if parts[:1] != ["v1"]:
            return 404, {"error": f"unknown path {request.path!r}"}
        tail = parts[1:]
        if tail == ["healthz"] and request.method == "GET":
            return 200, {"ok": True, "draining": self.draining}
        if tail == ["stats"] and request.method == "GET":
            return 200, self._stats_payload()
        if tail == ["jobs"]:
            if request.method == "POST":
                return await self._submit(request)
            if request.method == "GET":
                return 200, {"jobs": [
                    {"job_id": j.job_id, "state": j.state.value}
                    for j in self.jobs.values()]}
            return 405, {"error": "use GET or POST"}
        if len(tail) == 2 and tail[0] == "jobs" \
                and request.method == "GET":
            return self._get_job(tail[1])
        if len(tail) == 3 and tail[0] == "jobs" \
                and tail[2] == "cancel" and request.method == "POST":
            return self._cancel_job(tail[1])
        return 404, {"error": f"unknown path {request.path!r}"}

    def _stats_payload(self) -> Dict[str, object]:
        from ..core.defense import defense_names

        by_state: Dict[str, int] = {}
        by_defense: Dict[str, int] = {}
        for job in self.jobs.values():
            by_state[job.state.value] = by_state.get(
                job.state.value, 0) + 1
            mode = job.submission.mode
            by_defense[mode] = by_defense.get(mode, 0) + 1
        return {
            "defenses": {
                "available": list(defense_names()),
                "submitted": by_defense,
            },
            "server": self.stats.to_dict(),
            "cache": self.cache.stats.to_dict(),
            "region_cache": self.cache.regions.stats.to_dict(),
            "admission": self.admission.stats.to_dict(),
            "jobs": by_state,
            "queue_depth": self._queue.qsize(),
            "active": self._active,
            "draining": self.draining,
        }

    # ---- routes -----------------------------------------------------------

    async def _submit(
        self, request: Request,
    ) -> Tuple[int, Dict[str, object]]:
        if self.draining:
            return 503, {"error": "draining", "reason": "draining"}
        try:
            submission = Submission.from_request(request.json())
        except (SubmissionError, HttpError) as exc:
            return 400, {"error": str(exc)}

        queue_depth = self._queue.qsize()
        reason = self.admission.admit(
            submission.client,
            queue_depth if not submission.synchronous else 0)
        if reason is not None:
            return 429, {"error": "request shed", "reason": reason}

        if submission.synchronous:
            return await self._serve_sync(submission)
        return self._enqueue(submission)

    async def _serve_sync(
        self, submission: Submission,
    ) -> Tuple[int, Dict[str, object]]:
        key = submission.cache_key()
        cached = self.cache.get(key)
        if cached is not None:
            self.stats.sync_served += 1
            return 200, {"cached": True, "result": cached}
        loop = asyncio.get_running_loop()
        result = await loop.run_in_executor(
            self._executor, self.engine.execute, submission, None)
        if result.get("status") != "error":
            self.cache.put(key, result)
        self.stats.sync_served += 1
        return 200, {"cached": False, "result": result}

    def _enqueue(
        self, submission: Submission,
    ) -> Tuple[int, Dict[str, object]]:
        key = submission.cache_key()
        job_id = self._new_job_id(key)
        claim = self.cache.claim(key, job_id)
        if claim.result is not None:
            # Duplicate of a finished job: answer instantly with a
            # pre-completed job (uniform client polling either way).
            job = JobRecord(
                job_id=job_id, submission=submission,
                state=JobState.DONE, result=claim.result,
                submitted_at=time.time(), finished_at=time.time())
            self.jobs[job_id] = job
            self.jobstore.record(job)
            return 202, {"job_id": job_id, "state": "done",
                         "cached": True}
        if claim.leader is not None:
            # Same key already computing: attach to that job.
            self._seq -= 1  # id unused
            self.stats.coalesced += 1
            leader = self.jobs[claim.leader]
            return 202, {"job_id": claim.leader,
                         "state": leader.state.value,
                         "coalesced": True}
        job = JobRecord(job_id=job_id, submission=submission,
                        submitted_at=time.time())
        self.jobs[job_id] = job
        self._cancels[job_id] = threading.Event()
        self.jobstore.record(job)
        self._queue.put_nowait(job_id)
        self.stats.jobs_created += 1
        return 202, {"job_id": job_id, "state": "queued",
                     "cached": False}

    def _get_job(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, job.public_view()

    def _cancel_job(self, job_id: str) -> Tuple[int, Dict[str, object]]:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if job.done:
            return 409, {"error": "job already finished",
                         "state": job.state.value}
        event = self._cancels.setdefault(job_id, threading.Event())
        event.set()
        self.stats.cancelled += 1
        if job.state is JobState.QUEUED:
            # Never reached a worker: finish it here, uncached.
            self._finish_job(job, {
                "status": "ok", "cancelled": True,
                "kind": job.submission.kind.value,
                "tier_requested": job.submission.tier.value,
                "degraded": True,
                "warnings": [{"kind": "cancelled",
                              "detail": "cancelled while queued"}],
            })
        return 200, job.public_view()


async def run_server(config: Optional[ServeConfig] = None) -> None:
    """Entry point used by ``repro serve``: run until SIGTERM/SIGINT."""
    server = ReproServer(config)
    await server.start()
    server.install_signal_handlers()
    print(f"repro serve: listening on "
          f"http://{server.config.host}:{server.port} "
          f"(workers={server.config.workers}, "
          f"checkpoint={server.config.checkpoint or 'none'})",
          flush=True)
    await server.serve_forever()
    print("repro serve: drained, bye", flush=True)
