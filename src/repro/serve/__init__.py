"""``repro serve`` — fault-tolerant analysis-as-a-service.

See :mod:`repro.serve.server` for the architecture and
``docs/serving.md`` for the operator guide.
"""
from .admission import AdmissionController, AdmissionStats, TokenBucket
from .cache import CacheStats, Claim, ResultCache
from .client import JobTimeout, Response, ServeClient, ServeClientError
from .engine import AnalysisEngine, strip_timing
from .jobs import JobStore, NullJobStore
from .protocol import (
    Budgets,
    JobKind,
    JobRecord,
    JobState,
    Submission,
    SubmissionError,
    Tier,
)
from .server import ReproServer, ServeConfig, run_server

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "AnalysisEngine",
    "Budgets",
    "CacheStats",
    "Claim",
    "JobKind",
    "JobRecord",
    "JobState",
    "JobStore",
    "JobTimeout",
    "NullJobStore",
    "ReproServer",
    "Response",
    "ResultCache",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "Submission",
    "SubmissionError",
    "Tier",
    "run_server",
    "strip_timing",
]
