"""Wire protocol and job model of the ``repro serve`` daemon.

Submissions arrive as JSON over HTTP and are normalized into a
:class:`Submission` — a frozen, canonical description of exactly one
unit of analysis work.  Canonicalization matters: the content-addressed
result cache keys on :meth:`Submission.cache_key`, which hashes the
*disassembly of the assembled program* (so two textual variants of the
same program share one cache entry) together with every semantic knob
(kind, tier, mode, secrets, budgets, fault plan).  Anything that can
change the answer is in the key; anything that cannot (client id,
submission time) is not.

The degradation ladder is ordered by :class:`Tier`: ``taint`` (cheap,
always affordable) < ``valueset`` (refinement) < ``symx``
(certification).  The engine always answers from the highest tier it
could afford — see :mod:`repro.serve.engine`.
"""
from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional, Tuple, Type, TypeVar

from ..core.policy import ProtectionMode
from ..errors import AssemblyError, ServeError
from ..isa.assembler import assemble, disassemble
from ..isa.program import Program
from ..robustness.faults import FaultPlan


class SubmissionError(ServeError):
    """The request body is malformed; maps to a 400 response."""


class Tier(Enum):
    """Analysis tiers, ordered by cost (the degradation ladder)."""

    TAINT = "taint"
    VALUESET = "valueset"
    SYMX = "symx"

    @property
    def rank(self) -> int:
        return _TIER_RANK[self]

    def below(self) -> Optional["Tier"]:
        """The next cheaper tier (what a timed-out answer degrades
        to), or ``None`` for the floor tier."""
        if self is Tier.TAINT:
            return None
        return _TIER_ORDER[self.rank - 1]


_TIER_ORDER = (Tier.TAINT, Tier.VALUESET, Tier.SYMX)
_TIER_RANK = {tier: index for index, tier in enumerate(_TIER_ORDER)}

#: Tiers answered inline in the HTTP request (cheap enough for
#: interactive latency); the rest run as background jobs.
SYNC_TIERS = (Tier.TAINT, Tier.VALUESET)


class JobKind(Enum):
    """What a job does: run the static stack, or run the simulator."""

    ANALYZE = "analyze"
    SIMULATE = "simulate"


class JobState(Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


@dataclass(frozen=True)
class Budgets:
    """Per-job resource budgets; every field optional (server default
    applies).  Part of the cache key — a tighter budget may honestly
    produce a weaker (degraded) answer, so answers under different
    budgets never alias."""

    #: Whole-job wall-clock budget in seconds.
    wall_clock: Optional[float] = None
    #: symx exploration budgets.
    max_steps: Optional[int] = None
    max_paths: Optional[int] = None
    max_depth: Optional[int] = None
    #: Simulation budgets.
    max_cycles: Optional[int] = None
    watchdog_cycles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.wall_clock is not None and self.wall_clock <= 0:
            raise SubmissionError("budgets.wall_clock must be positive")
        for name in ("max_steps", "max_paths", "max_depth",
                     "max_cycles", "watchdog_cycles"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise SubmissionError(f"budgets.{name} must be positive")

    def to_dict(self) -> Dict[str, object]:
        return {name: value for name in (
            "wall_clock", "max_steps", "max_paths", "max_depth",
            "max_cycles", "watchdog_cycles",
        ) if (value := getattr(self, name)) is not None}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Budgets":
        known = ("wall_clock", "max_steps", "max_paths", "max_depth",
                 "max_cycles", "watchdog_cycles")
        unknown = set(data) - set(known)
        if unknown:
            raise SubmissionError(
                f"unknown budget field(s): {sorted(unknown)}")
        kwargs: Dict[str, object] = {}
        for name in known:
            if name not in data:
                continue
            value = data[name]
            if name == "wall_clock":
                if not isinstance(value, (int, float)) \
                        or isinstance(value, bool):
                    raise SubmissionError(
                        "budgets.wall_clock must be a number")
                kwargs[name] = float(value)
            else:
                if not isinstance(value, int) or isinstance(value, bool):
                    raise SubmissionError(
                        f"budgets.{name} must be an integer")
                kwargs[name] = value
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Submission:
    """One canonicalized unit of work.

    ``source`` is always the *canonical* assembler text — the
    disassembly of the assembled program — regardless of how the
    request spelled the program (inline ``asm``, a ``corpus:...``
    spec, or a SPEC ``benchmark`` name).
    """

    kind: JobKind
    source: str
    name: str = "program"
    tier: Tier = Tier.SYMX
    mode: str = "origin"
    secret_words: Tuple[int, ...] = ()
    budgets: Budgets = field(default_factory=Budgets)
    #: Optional fault-injection plan fields (poisoned/chaos traffic;
    #: simulate jobs only).  Kept as a sorted-key dict fingerprint so
    #: it participates in the cache key.
    fault: Optional[Tuple[Tuple[str, object], ...]] = None
    client: str = "anonymous"

    # ---- derived ---------------------------------------------------------

    def program(self) -> Program:
        return assemble(self.source)

    def fault_plan(self) -> Optional[FaultPlan]:
        if self.fault is None:
            return None
        return FaultPlan(**dict(self.fault))  # type: ignore[arg-type]

    def protection_mode(self) -> ProtectionMode:
        from ..core.defense import base_mode_for
        return base_mode_for(self.mode)

    def security_config(self) -> "SecurityConfig":
        """The full defense configuration (``mode`` accepts any
        registered zoo name, not just the paper's four)."""
        from ..core.policy import SecurityConfig
        return SecurityConfig.for_defense(self.mode)

    def cache_key(self) -> str:
        """Content-addressed identity: canonical program text plus
        every semantic knob, hashed.  Client identity and timing are
        deliberately excluded."""
        payload = {
            "kind": self.kind.value,
            "source": self.source,
            "tier": self.tier.value,
            "mode": self.mode,
            "secret_words": list(self.secret_words),
            "budgets": self.budgets.to_dict(),
            "fault": [list(pair) for pair in self.fault]
            if self.fault is not None else None,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    @property
    def synchronous(self) -> bool:
        """Whether this job is answered inline in the HTTP request
        (cheap tiers) or as a background job (symx, simulate)."""
        return self.kind is JobKind.ANALYZE and self.tier in SYNC_TIERS

    # ---- (de)serialization -----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind.value,
            "asm": self.source,
            "name": self.name,
            "tier": self.tier.value,
            "mode": self.mode,
            "client": self.client,
        }
        if self.secret_words:
            data["secret_words"] = list(self.secret_words)
        if self.budgets.to_dict():
            data["budgets"] = self.budgets.to_dict()
        if self.fault is not None:
            data["fault"] = dict(self.fault)
        return data

    @classmethod
    def from_request(cls, data: object) -> "Submission":
        """Validate and canonicalize one JSON request body.

        The program may arrive as inline assembler text (``asm``), a
        built-in gadget driver (``spec``, e.g. ``corpus:v1``) or a
        SPEC workload (``benchmark`` plus optional ``scale``).
        Raises :class:`SubmissionError` with a client-presentable
        message on any malformed field.
        """
        if not isinstance(data, dict):
            raise SubmissionError("request body must be a JSON object")
        known = {"kind", "asm", "spec", "benchmark", "scale", "name",
                 "tier", "mode", "secret_words", "budgets", "fault",
                 "client"}
        unknown = set(data) - known
        if unknown:
            raise SubmissionError(
                f"unknown field(s): {sorted(unknown)}")

        kind = _parse_enum(JobKind, data.get("kind", "analyze"), "kind")
        tier = _parse_enum(Tier, data.get("tier", "symx"), "tier")
        mode = data.get("mode", "origin")
        if not isinstance(mode, str):
            raise SubmissionError("mode must be a string")
        # Any registered defense (or alias) is a valid mode; the
        # canonical name is what lands in the cache key.
        from ..core.defense import DefenseConfigError, defense_names, \
            normalize_defense_name
        try:
            mode = normalize_defense_name(mode)
        except DefenseConfigError:
            raise SubmissionError(
                f"unknown mode {mode!r}; choose from "
                f"{list(defense_names())}") from None

        program, name, default_secrets = _resolve_program(data)
        secrets = _parse_secret_words(
            data.get("secret_words"), default_secrets)

        budgets_data = data.get("budgets", {})
        if not isinstance(budgets_data, dict):
            raise SubmissionError("budgets must be an object")
        budgets = Budgets.from_dict(budgets_data)

        fault = _parse_fault(data.get("fault"))
        if fault is not None and kind is not JobKind.SIMULATE:
            raise SubmissionError(
                "fault plans only apply to simulate jobs")

        client = data.get("client", "anonymous")
        if not isinstance(client, str) or not client:
            raise SubmissionError("client must be a non-empty string")

        explicit_name = data.get("name")
        if explicit_name is not None:
            if not isinstance(explicit_name, str) or not explicit_name:
                raise SubmissionError("name must be a non-empty string")
            name = explicit_name

        # Canonical form is the *fixpoint* of disassembly: a first
        # pass may keep builder-attached comments, so normalize once
        # more through the assembler (comments do not survive it).
        source = disassemble(program)
        canonical = disassemble(assemble(source))
        return cls(
            kind=kind,
            source=canonical,
            name=name,
            tier=tier,
            mode=mode,
            secret_words=secrets,
            budgets=budgets,
            fault=fault,
            client=client,
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Submission":
        """Inverse of :meth:`to_dict` (checkpoint recovery path —
        trusted input, already canonical)."""
        return cls.from_request(dict(data))


_E = TypeVar("_E", bound=Enum)


def _parse_enum(enum_cls: Type[_E], value: object,
                field_name: str) -> _E:
    if not isinstance(value, str):
        raise SubmissionError(f"{field_name} must be a string")
    try:
        return enum_cls(value)
    except ValueError:
        raise SubmissionError(
            f"unknown {field_name} {value!r}; choose from "
            f"{[member.value for member in enum_cls]}"
        ) from None


def _resolve_program(
    data: Mapping[str, object],
) -> Tuple[Program, str, Tuple[int, ...]]:
    """Resolve exactly one of ``asm`` / ``spec`` / ``benchmark`` into
    ``(program, display_name, default_secret_words)``."""
    given = [key for key in ("asm", "spec", "benchmark") if key in data]
    if len(given) != 1:
        raise SubmissionError(
            "provide exactly one of 'asm', 'spec' or 'benchmark'")
    if "asm" in data:
        asm = data["asm"]
        if not isinstance(asm, str) or not asm.strip():
            raise SubmissionError("asm must be a non-empty string")
        if len(asm) > 1_000_000:
            raise SubmissionError("asm too large (1MB limit)")
        try:
            return assemble(asm), "inline", ()
        except AssemblyError as exc:
            raise SubmissionError(f"assembly failed: {exc}") from None
    if "spec" in data:
        spec = data["spec"]
        if not isinstance(spec, str) or not spec.startswith("corpus:"):
            raise SubmissionError(
                "spec must be a 'corpus:<kind>[:<variant>]' string")
        from ..analysis.corpus import (
            CORPUS_VARIANTS,
            GADGET_KINDS,
            build_corpus_variant,
            corpus_secret_words,
        )
        parts = spec.split(":")
        kind = parts[1] if len(parts) > 1 else ""
        variant = parts[2] if len(parts) > 2 else "unsafe"
        if kind not in GADGET_KINDS or variant not in CORPUS_VARIANTS \
                or len(parts) > 3:
            raise SubmissionError(
                f"bad corpus spec {spec!r}: expected "
                f"corpus:{{{','.join(GADGET_KINDS)}}}"
                f"[:{{{','.join(CORPUS_VARIANTS)}}}]")
        return (build_corpus_variant(kind, variant), spec,
                corpus_secret_words())
    benchmark = data["benchmark"]
    if not isinstance(benchmark, str):
        raise SubmissionError("benchmark must be a string")
    scale = data.get("scale", 1.0)
    if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
            or not 0 < float(scale) <= 1.0:
        raise SubmissionError("scale must be a number in (0, 1]")
    from ..workloads import spec_names, spec_program
    if benchmark not in spec_names():
        raise SubmissionError(
            f"unknown benchmark {benchmark!r}; choose from "
            f"{spec_names()}")
    return (spec_program(benchmark, scale=float(scale)),
            f"{benchmark}@{scale}", ())


def _parse_secret_words(
    value: object, default: Tuple[int, ...],
) -> Tuple[int, ...]:
    if value is None:
        return tuple(sorted(set(default)))
    if not isinstance(value, list) \
            or not all(isinstance(w, int) and not isinstance(w, bool)
                       for w in value):
        raise SubmissionError("secret_words must be a list of integers")
    return tuple(sorted(set(value)))


_FAULT_FIELDS = frozenset(
    f for f in FaultPlan.__dataclass_fields__)


def _parse_fault(
    value: object,
) -> Optional[Tuple[Tuple[str, object], ...]]:
    if value is None:
        return None
    if not isinstance(value, dict):
        raise SubmissionError("fault must be an object of FaultPlan fields")
    unknown = set(value) - _FAULT_FIELDS
    if unknown:
        raise SubmissionError(
            f"unknown fault field(s): {sorted(unknown)}")
    try:
        FaultPlan(**value)
    except TypeError as exc:
        raise SubmissionError(f"bad fault plan: {exc}") from None
    return tuple(sorted(value.items()))


@dataclass
class JobRecord:
    """Lifecycle state of one job (the unit the checkpoint persists)."""

    job_id: str
    submission: Submission
    state: JobState = JobState.QUEUED
    result: Optional[Dict[str, object]] = None
    #: Wall-clock timestamps (informational; excluded from identity).
    submitted_at: float = 0.0
    finished_at: float = 0.0
    #: True when this record was recovered from a checkpoint after a
    #: restart rather than submitted in this server's lifetime.
    recovered: bool = False

    @property
    def done(self) -> bool:
        return self.state is JobState.DONE

    def public_view(self) -> Dict[str, object]:
        """What ``GET /v1/jobs/<id>`` returns."""
        view: Dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state.value,
            "kind": self.submission.kind.value,
            "tier": self.submission.tier.value,
            "name": self.submission.name,
        }
        if self.result is not None:
            view["result"] = self.result
        return view

    def to_record(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state.value,
            "submission": self.submission.to_dict(),
            "submitted_at": self.submitted_at,
        }
        if self.result is not None:
            record["result"] = self.result
        if self.finished_at:
            record["finished_at"] = self.finished_at
        return record

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "JobRecord":
        submission = Submission.from_dict(
            record["submission"])  # type: ignore[arg-type]
        state = JobState(record.get("state", "queued"))
        result = record.get("result")
        return cls(
            job_id=str(record["job_id"]),
            submission=submission,
            state=state,
            result=dict(result) if isinstance(result, dict) else None,
            submitted_at=float(record.get("submitted_at", 0.0)),  # type: ignore[arg-type]
            finished_at=float(record.get("finished_at", 0.0)),  # type: ignore[arg-type]
            recovered=True,
        )
