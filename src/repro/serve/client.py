"""Blocking client for the ``repro serve`` HTTP API.

Built on :mod:`http.client` so tools and tests drive the daemon from
plain threads or subprocesses without touching asyncio.  One
connection per request (the server speaks ``Connection: close``).
"""
from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ServeError


class ServeClientError(ServeError):
    """The server was unreachable or answered with junk."""


class JobTimeout(ServeError):
    """A polled job did not finish within the client-side deadline."""


@dataclass
class Response:
    status: int
    payload: Dict[str, object]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def shed(self) -> bool:
        return self.status == 429


class ServeClient:
    """Thin wrapper over the job API (submit / poll / cancel)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8377,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ---- transport --------------------------------------------------------

    def request(self, method: str, path: str,
                body: Optional[Dict[str, object]] = None) -> Response:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode() if body is not None \
                else None
            headers = {"Content-Type": "application/json"} \
                if payload else {}
            connection.request(method, path, body=payload,
                               headers=headers)
            raw = connection.getresponse()
            data = raw.read()
            try:
                decoded = json.loads(data.decode("utf-8")) if data else {}
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ServeClientError(
                    f"non-JSON response ({raw.status}): {exc}") from None
            if not isinstance(decoded, dict):
                raise ServeClientError(
                    f"unexpected response shape: {type(decoded).__name__}")
            return Response(status=raw.status, payload=decoded)
        except (OSError, http.client.HTTPException) as exc:
            raise ServeClientError(
                f"{method} {path} against "
                f"{self.host}:{self.port} failed: {exc}") from None
        finally:
            connection.close()

    # ---- API --------------------------------------------------------------

    def health(self) -> Response:
        return self.request("GET", "/v1/healthz")

    def stats(self) -> Dict[str, object]:
        return self.request("GET", "/v1/stats").payload

    def submit(self, body: Dict[str, object]) -> Response:
        return self.request("POST", "/v1/jobs", body)

    def job(self, job_id: str) -> Response:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> Response:
        return self.request("POST", f"/v1/jobs/{job_id}/cancel", {})

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> Dict[str, object]:
        """Poll until the job is done; returns its public view."""
        deadline = time.monotonic() + timeout
        while True:
            response = self.job(job_id)
            if response.status == 404:
                raise ServeClientError(f"job {job_id!r} disappeared")
            view = response.payload
            if view.get("state") == "done":
                return view
            if time.monotonic() >= deadline:
                raise JobTimeout(
                    f"job {job_id!r} still {view.get('state')!r} after "
                    f"{timeout:.1f}s")
            time.sleep(poll)

    def submit_and_wait(
        self, body: Dict[str, object], timeout: float = 60.0,
    ) -> Tuple[Response, Optional[Dict[str, object]]]:
        """Submit; if it became a background job, wait it out.

        Returns ``(submit_response, final_result_or_None)`` — the
        result is ``None`` when the submission was shed or rejected.
        """
        response = self.submit(body)
        if not response.ok:
            return response, None
        payload = response.payload
        if "result" in payload:  # synchronous tier, answered inline
            result = payload["result"]
            return response, result if isinstance(result, dict) else None
        job_id = payload.get("job_id")
        if not isinstance(job_id, str):
            raise ServeClientError(
                f"submit answered without job_id: {payload}")
        view = self.wait(job_id, timeout=timeout)
        result = view.get("result")
        return response, result if isinstance(result, dict) else None

    def wait_healthy(self, timeout: float = 10.0) -> None:
        """Block until the daemon answers /healthz (startup helper)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                if self.health().ok:
                    return
            except ServeClientError:
                pass
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"server at {self.host}:{self.port} not healthy "
                    f"after {timeout:.1f}s")
            time.sleep(0.05)
