"""Crash-safe job persistence for ``repro serve``.

Background jobs (their submissions, state transitions and results)
are journalled to a :class:`repro.robustness.checkpoint.CheckpointStore`
— the same fsync-per-append, single-writer-locked, torn-tail-tolerant
JSONL machinery the sweep engine trusts.  Each state transition
appends a fresh record keyed by job id; last-record-wins load
semantics mean recovery simply replays the journal:

- ``done`` jobs come back with their results (and re-seed the result
  cache, so duplicate submissions after a restart still hit).
- ``queued``/``running`` jobs come back *queued* — a job that was
  mid-flight when the process died re-runs from scratch.  Engine
  results are deterministic modulo timing, so the re-run converges on
  the same answer (the kill-resume acceptance test).

Synchronous (taint/valueset) requests are answered inline and never
journalled: there is no job to resume.
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..robustness.checkpoint import CheckpointStore
from .protocol import JobRecord, JobState

_PURPOSE = "repro-serve-jobs"


class JobStore:
    """Durable journal of background jobs on a checkpoint file."""

    def __init__(self, path: str) -> None:
        self.store = CheckpointStore(path)
        self._open = False

    # ---- lifecycle --------------------------------------------------------

    def open(self) -> List[JobRecord]:
        """Acquire the single-writer lock and recover prior state.

        Returns every job from the previous incarnation (done jobs
        with results; interrupted jobs reset to ``queued``).  A fresh
        or foreign file is (re)initialized to an empty journal.
        """
        self.store.acquire_writer()
        recovered: List[JobRecord] = []
        if self.store.exists():
            header, rows = self.store.load()
            if header.get("purpose") == _PURPOSE:
                for key in sorted(rows):
                    record = rows[key]
                    try:
                        job = JobRecord.from_record(record)
                    except Exception:  # noqa: BLE001 - tolerate junk rows
                        continue
                    if job.state is JobState.RUNNING:
                        job.state = JobState.QUEUED
                    recovered.append(job)
            else:
                self.store.reset({"purpose": _PURPOSE})
        else:
            self.store.reset({"purpose": _PURPOSE})
        self._open = True
        return recovered

    def close(self) -> None:
        if self._open:
            self.store.release_writer()
            self._open = False

    # ---- journalling ------------------------------------------------------

    def record(self, job: JobRecord) -> None:
        """Durably append the job's current state (one fsync)."""
        if not self._open:
            return
        self.store.append(job.job_id, job.to_record())

    # ---- introspection (tests) -------------------------------------------

    def snapshot(self) -> Tuple[Dict[str, object], Dict[str, JobRecord]]:
        """Load the journal without taking the writer lock path into
        account — read-only helper for tests and tooling."""
        header, rows = self.store.load()
        jobs: Dict[str, JobRecord] = {}
        for key, record in rows.items():
            try:
                jobs[key] = JobRecord.from_record(record)
            except Exception:  # noqa: BLE001
                continue
        return header, jobs


class NullJobStore(JobStore):
    """In-memory stand-in when the server runs without a checkpoint
    path (ephemeral mode): same interface, no durability."""

    def __init__(self) -> None:  # noqa: D107 - interface stand-in
        self.store: Optional[CheckpointStore] = None  # type: ignore[assignment]
        self._open = False

    def open(self) -> List[JobRecord]:
        self._open = True
        return []

    def close(self) -> None:
        self._open = False

    def record(self, job: JobRecord) -> None:
        return

    def snapshot(self) -> Tuple[Dict[str, object], Dict[str, JobRecord]]:
        return {}, {}
