"""Forward-progress watchdog: livelock/deadlock detection with a
structured diagnostic dump.

The watchdog replaces the processor's old bare "no commit for N
cycles" check.  It keeps a short ring buffer of ROB/IQ/LSQ occupancy
snapshots and, when the commit stream stops for
:attr:`ForwardProgressWatchdog.limit` cycles, raises
:class:`~repro.errors.DeadlockError` carrying a
:class:`DeadlockDiagnostics`: the oldest ROB entry, an inferred stall
reason, its security-matrix row, and the recent occupancy history —
everything a campaign triage needs without re-running under a tracer.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

from ..errors import DeadlockError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline.processor import Processor

#: Cycles without a commit before the watchdog declares deadlock.
DEFAULT_WATCHDOG_CYCLES = 50_000


@dataclass(frozen=True)
class OccupancySnapshot:
    """One periodic sample of the machine's structural occupancy."""

    cycle: int
    committed: int
    rob: int
    iq: int
    ldq: int
    stq: int
    fetch_buffer: int
    events_pending: int

    def render(self) -> str:
        return (f"cycle {self.cycle}: committed={self.committed} "
                f"rob={self.rob} iq={self.iq} ldq={self.ldq} "
                f"stq={self.stq} fetch_buf={self.fetch_buffer} "
                f"events={self.events_pending}")


@dataclass
class DeadlockDiagnostics:
    """Everything the watchdog knows at the moment it fires."""

    cycle: int
    last_commit_cycle: int
    stall_cycles: int
    committed: int
    rob_occupancy: int
    iq_occupancy: int
    ldq_occupancy: int
    stq_occupancy: int
    fetch_buffer: int
    events_pending: int
    unresolved_branches: int
    #: ``repr`` of the oldest ROB entry ("" for an empty ROB).
    head_desc: str = ""
    head_state: str = ""
    head_seq: int = -1
    head_pc: int = -1
    #: Security-dependence row of the head, if it still holds an IQ slot.
    head_matrix_row: int = 0
    #: Heuristic classification of what wedged.
    stall_reason: str = ""
    #: Recent occupancy history, oldest first.
    snapshots: List[OccupancySnapshot] = field(default_factory=list)

    @property
    def is_livelock(self) -> bool:
        """Events were still firing — activity without retirement —
        as opposed to a hard deadlock with a silent event queue."""
        return self.events_pending > 0

    def render(self) -> str:
        lines = [
            f"no commit for {self.stall_cycles} cycles "
            f"(cycle {self.cycle}, last commit "
            f"{self.last_commit_cycle}, {self.committed} committed)",
            f"  occupancy: rob={self.rob_occupancy} "
            f"iq={self.iq_occupancy} ldq={self.ldq_occupancy} "
            f"stq={self.stq_occupancy} fetch_buf={self.fetch_buffer} "
            f"events={self.events_pending} "
            f"unresolved_branches={self.unresolved_branches}",
            f"  oldest: {self.head_desc or '<ROB empty>'} "
            f"state={self.head_state or 'n/a'} "
            f"matrix_row={self.head_matrix_row:#x}",
            f"  reason: {self.stall_reason}",
        ]
        if self.snapshots:
            lines.append("  history:")
            lines.extend(f"    {snap.render()}" for snap in self.snapshots)
        return "\n".join(lines)


def _stall_reason(cpu: "Processor") -> str:
    """Best-effort classification of the oldest instruction's stall."""
    from ..pipeline.dyninst import InstState

    head = cpu.rob.head()
    if head is None:
        return (f"ROB empty: fetch starved at pc={cpu.fetch_pc:#x} "
                f"(stalled until cycle {cpu._fetch_stall_until})")
    if head.state is InstState.COMPLETED:
        if head.instr.is_store and cpu.store_buffer.full:
            return "head store completed but the store buffer is full"
        if cpu.cycle < cpu._commit_stall_until:
            return (f"commit port stalled until cycle "
                    f"{cpu._commit_stall_until}")
        return "head completed but never retired (commit logic wedged)"
    if head.blocked:
        return ("filter-blocked load waiting for its security "
                "dependence row to clear")
    if head.state is InstState.DISPATCHED:
        unready = [psrc for psrc in head.psrcs
                   if not cpu.rename.is_ready(psrc)]
        if unready:
            return (f"head waiting for operands (physical regs "
                    f"{unready} not ready)")
        return "head dispatched and ready but never selected"
    if head.state is InstState.ISSUED:
        if cpu.events.pending == 0:
            return ("head issued but the event queue is empty: its "
                    "completion was dropped (hard deadlock)")
        return ("head issued, completion still pending (fill or "
                "replay never finishing)")
    return f"head in unexpected state {head.state}"


class ForwardProgressWatchdog:
    """Periodic occupancy sampler + no-commit deadlock detector."""

    def __init__(self, limit: int = DEFAULT_WATCHDOG_CYCLES,
                 snapshot_interval: int = 0, history: int = 8) -> None:
        self.limit = max(1, limit)
        self.snapshot_interval = snapshot_interval \
            or max(1, self.limit // 8)
        self.history = history
        self.snapshots: List[OccupancySnapshot] = []

    def snapshot(self, cpu: "Processor") -> OccupancySnapshot:
        snap = OccupancySnapshot(
            cycle=cpu.cycle,
            committed=cpu.report.committed,
            rob=len(cpu.rob),
            iq=cpu.iq.occupancy(),
            ldq=cpu.lsq.load_occupancy(),
            stq=cpu.lsq.store_occupancy(),
            fetch_buffer=len(cpu._fetch_buffer),
            events_pending=cpu.events.pending,
        )
        self.snapshots.append(snap)
        if len(self.snapshots) > self.history:
            del self.snapshots[0]
        return snap

    def diagnose(self, cpu: "Processor") -> DeadlockDiagnostics:
        """Build the full dump (also usable outside the raise path)."""
        head = cpu.rob.head()
        matrix_row = 0
        if head is not None and head.iq_pos is not None:
            matrix_row = cpu.iq.matrix.row(head.iq_pos)
        return DeadlockDiagnostics(
            cycle=cpu.cycle,
            last_commit_cycle=cpu._last_commit_cycle,
            stall_cycles=cpu.cycle - cpu._last_commit_cycle,
            committed=cpu.report.committed,
            rob_occupancy=len(cpu.rob),
            iq_occupancy=cpu.iq.occupancy(),
            ldq_occupancy=cpu.lsq.load_occupancy(),
            stq_occupancy=cpu.lsq.store_occupancy(),
            fetch_buffer=len(cpu._fetch_buffer),
            events_pending=cpu.events.pending,
            unresolved_branches=cpu._unresolved_branches,
            head_desc=repr(head) if head is not None else "",
            head_state=head.state.name if head is not None else "",
            head_seq=head.seq if head is not None else -1,
            head_pc=head.pc if head is not None else -1,
            head_matrix_row=matrix_row,
            stall_reason=_stall_reason(cpu),
            snapshots=list(self.snapshots),
        )

    def observe(self, cpu: "Processor") -> None:
        """Called once per cycle from :meth:`Processor.step`."""
        if cpu.cycle % self.snapshot_interval == 0:
            self.snapshot(cpu)
        if cpu.cycle - cpu._last_commit_cycle > self.limit:
            diagnostics = self.diagnose(cpu)
            cpu.report.termination = "deadlock"
            raise DeadlockError(
                f"no commit for {diagnostics.stall_cycles} cycles at "
                f"cycle {cpu.cycle}; {diagnostics.stall_reason}",
                diagnostics=diagnostics,
            )
