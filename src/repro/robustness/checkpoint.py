"""Crash-safe JSON-lines checkpoint store for experiment sweeps.

Layout: the first line is a header record (``{"kind": "header", ...}``)
carrying the sweep configuration; every subsequent line is one result
record keyed by ``key`` (``"<benchmark>/<mode>"``).  Records are
appended with ``flush`` + ``fsync`` so a killed sweep loses at most the
row being written; a truncated trailing line (the crash signature) is
tolerated and skipped on load.  Re-running a pair appends a fresh
record — the *last* record per key wins — so the file doubles as a
retry history.
"""
from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Optional, Tuple

from ..errors import SimulationError

FORMAT = "repro-sweep-checkpoint"
VERSION = 1


class CheckpointError(SimulationError):
    """The checkpoint file is unreadable or from a different sweep."""


class CheckpointStore:
    """Append-only JSONL store with last-record-wins load semantics."""

    def __init__(self, path: str) -> None:
        self.path = path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # ---- writing ---------------------------------------------------------

    def reset(self, config: Optional[Dict[str, Any]] = None) -> None:
        """Truncate and write a fresh header."""
        header = {"kind": "header", "format": FORMAT, "version": VERSION,
                  "config": config or {}}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, key: str, record: Dict[str, Any]) -> None:
        """Durably append one result record."""
        payload = dict(record)
        payload["kind"] = "row"
        payload["key"] = key
        with open(self.path, "a") as handle:
            handle.write(json.dumps(payload) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ---- reading ---------------------------------------------------------

    def _iter_records(self) -> Iterable[Dict[str, Any]]:
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line from a crash mid-append; the
                    # row it would have recorded simply re-runs.
                    continue
                if isinstance(record, dict):
                    yield record

    def load(self) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
        """Return ``(header_config, rows_by_key)``; last record wins."""
        if not self.exists():
            return {}, {}
        header: Dict[str, Any] = {}
        rows: Dict[str, Dict[str, Any]] = {}
        saw_header = False
        for record in self._iter_records():
            kind = record.get("kind")
            if kind == "header":
                if record.get("format") != FORMAT:
                    raise CheckpointError(
                        f"{self.path}: not a sweep checkpoint "
                        f"(format={record.get('format')!r})"
                    )
                header = record.get("config", {})
                saw_header = True
            elif kind == "row" and "key" in record:
                rows[record["key"]] = record
        if not saw_header and rows:
            raise CheckpointError(f"{self.path}: missing header record")
        return header, rows

    @staticmethod
    def task_key(benchmark: str, mode: str) -> str:
        return f"{benchmark}/{mode}"
