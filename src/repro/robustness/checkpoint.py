"""Crash-safe JSON-lines checkpoint store for experiment sweeps.

Layout: the first line is a header record (``{"kind": "header", ...}``)
carrying the sweep configuration; every subsequent line is one result
record keyed by ``key`` (``"<benchmark>/<mode>"``).  Records are
appended with ``flush`` + ``fsync`` so a killed sweep loses at most the
row being written; a truncated trailing line (the crash signature) is
tolerated and skipped on load.  Re-running a pair appends a fresh
record — the *last* record per key wins — so the file doubles as a
retry history.

Single-writer invariant
-----------------------

A checkpoint file has exactly ONE writer at a time.  Interleaved
appends from two processes (or two engines in one process) could tear
each other's JSON lines and silently corrupt a resume file, so
:meth:`acquire_writer` takes an exclusive OS-level lock (a ``.lock``
sidecar via ``flock``) and a second acquisition of the same path —
from anywhere — raises :class:`CheckpointWriterConflict` immediately
instead of corrupting anything.  The parallel sweep executor respects
this by construction: worker processes never touch the checkpoint;
only the parent :class:`~repro.experiments.runner.SweepEngine`
process, which holds the lock for the duration of the sweep, appends
rows.
"""
from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Optional, Tuple

from ..errors import SimulationError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

FORMAT = "repro-sweep-checkpoint"
VERSION = 1


class CheckpointError(SimulationError):
    """The checkpoint file is unreadable or from a different sweep."""


class CheckpointWriterConflict(CheckpointError):
    """A second writer tried to open the same checkpoint for append."""


class CheckpointStore:
    """Append-only JSONL store with last-record-wins load semantics."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock_handle: Optional[Any] = None

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # ---- single-writer lock ----------------------------------------------

    @property
    def lock_path(self) -> str:
        return self.path + ".lock"

    def acquire_writer(self) -> None:
        """Become the checkpoint's single writer (see the module
        docstring).  Raises :class:`CheckpointWriterConflict` if any
        other store — in this process or another — already holds the
        writer lock for this path.  Idempotent for the holding store.
        """
        if self._lock_handle is not None:
            return
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        handle = open(self.lock_path, "a")
        try:
            fcntl.flock(handle.fileno(),
                        fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise CheckpointWriterConflict(
                f"{self.path}: another sweep already holds the writer "
                f"lock ({self.lock_path}); a checkpoint has exactly one "
                f"writer — wait for the other sweep or point this one "
                f"at a different --checkpoint path"
            ) from None
        self._lock_handle = handle

    def release_writer(self) -> None:
        """Release the writer lock (no-op if not held)."""
        if self._lock_handle is None:
            return
        try:
            fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
        finally:
            self._lock_handle.close()
            self._lock_handle = None

    def __enter__(self) -> "CheckpointStore":
        self.acquire_writer()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release_writer()

    def _assert_writable(self) -> None:
        """Writes must not race another engine: if anyone else holds
        the writer lock, refuse.  (Lazy-acquires the lock so direct
        store users keep working without an explicit
        :meth:`acquire_writer`.)"""
        self.acquire_writer()

    # ---- writing ---------------------------------------------------------

    def reset(self, config: Optional[Dict[str, Any]] = None) -> None:
        """Truncate and write a fresh header."""
        self._assert_writable()
        header = {"kind": "header", "format": FORMAT, "version": VERSION,
                  "config": config or {}}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, key: str, record: Dict[str, Any]) -> None:
        """Durably append one result record."""
        self._assert_writable()
        payload = dict(record)
        payload["kind"] = "row"
        payload["key"] = key
        with open(self.path, "a") as handle:
            handle.write(json.dumps(payload) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    # ---- reading ---------------------------------------------------------

    def _iter_records(self) -> Iterable[Dict[str, Any]]:
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A torn trailing line from a crash mid-append; the
                    # row it would have recorded simply re-runs.
                    continue
                if isinstance(record, dict):
                    yield record

    def load(self) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
        """Return ``(header_config, rows_by_key)``; last record wins."""
        if not self.exists():
            return {}, {}
        header: Dict[str, Any] = {}
        rows: Dict[str, Dict[str, Any]] = {}
        saw_header = False
        for record in self._iter_records():
            kind = record.get("kind")
            if kind == "header":
                if record.get("format") != FORMAT:
                    raise CheckpointError(
                        f"{self.path}: not a sweep checkpoint "
                        f"(format={record.get('format')!r})"
                    )
                header = record.get("config", {})
                saw_header = True
            elif kind == "row" and "key" in record:
                rows[record["key"]] = record
        if not saw_header and rows:
            raise CheckpointError(f"{self.path}: missing header record")
        return header, rows

    @staticmethod
    def task_key(benchmark: str, mode: str) -> str:
        return f"{benchmark}/{mode}"
