"""Crash-safe JSON-lines checkpoint store for experiment sweeps.

Layout: the first line is a header record (``{"kind": "header", ...}``)
carrying the sweep configuration; every subsequent line is one result
record keyed by ``key`` (``"<benchmark>/<mode>"``).  Records are
appended with ``flush`` + ``fsync`` so a killed sweep loses at most the
row being written; a truncated trailing line (the crash signature) is
tolerated and skipped on load.  Re-running a pair appends a fresh
record — the *last* record per key wins — so the file doubles as a
retry history.

Single-writer invariant
-----------------------

A checkpoint file has exactly ONE writer at a time.  Interleaved
appends from two processes (or two engines in one process) could tear
each other's JSON lines and silently corrupt a resume file, so
:meth:`acquire_writer` takes an exclusive OS-level lock (a ``.lock``
sidecar via ``flock``) and a second acquisition of the same path —
from anywhere — raises :class:`CheckpointWriterConflict` immediately
instead of corrupting anything.  The parallel sweep executor respects
this by construction: worker processes never touch the checkpoint;
only the parent :class:`~repro.experiments.runner.SweepEngine`
process, which holds the lock for the duration of the sweep, appends
rows.
"""
from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, Iterable, Optional, Tuple

from ..errors import SimulationError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

FORMAT = "repro-sweep-checkpoint"
VERSION = 1


class CheckpointError(SimulationError):
    """The checkpoint file is unreadable or from a different sweep."""


class CheckpointWriterConflict(CheckpointError):
    """A second writer tried to open the same checkpoint for append."""


class CheckpointStore:
    """Append-only JSONL store with last-record-wins load semantics."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock_handle: Optional[Any] = None

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # ---- single-writer lock ----------------------------------------------

    @property
    def lock_path(self) -> str:
        return self.path + ".lock"

    def acquire_writer(self) -> None:
        """Become the checkpoint's single writer (see the module
        docstring).  Raises :class:`CheckpointWriterConflict` if any
        other store — in this process or another — already holds the
        writer lock for this path.  Idempotent for the holding store.
        """
        if self._lock_handle is not None:
            return
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            return
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        handle = open(self.lock_path, "a")
        try:
            fcntl.flock(handle.fileno(),
                        fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise CheckpointWriterConflict(
                f"{self.path}: another sweep already holds the writer "
                f"lock ({self.lock_path}); a checkpoint has exactly one "
                f"writer — wait for the other sweep or point this one "
                f"at a different --checkpoint path"
            ) from None
        self._lock_handle = handle

    def release_writer(self) -> None:
        """Release the writer lock (no-op if not held)."""
        if self._lock_handle is None:
            return
        try:
            fcntl.flock(self._lock_handle.fileno(), fcntl.LOCK_UN)
        finally:
            self._lock_handle.close()
            self._lock_handle = None

    def __enter__(self) -> "CheckpointStore":
        self.acquire_writer()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release_writer()

    def _assert_writable(self) -> None:
        """Writes must not race another engine: if anyone else holds
        the writer lock, refuse.  (Lazy-acquires the lock so direct
        store users keep working without an explicit
        :meth:`acquire_writer`.)"""
        self.acquire_writer()

    # ---- writing ---------------------------------------------------------

    def reset(self, config: Optional[Dict[str, Any]] = None) -> None:
        """Truncate and write a fresh header."""
        self._assert_writable()
        header = {"kind": "header", "format": FORMAT, "version": VERSION,
                  "config": config or {}}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, key: str, record: Dict[str, Any]) -> None:
        """Durably append one result record.

        A torn trailing line left by a crash mid-append is truncated
        away first — appending after an unterminated fragment would
        glue the new record onto it and corrupt *both* lines.
        """
        self._assert_writable()
        self._repair_torn_tail()
        payload = dict(record)
        payload["kind"] = "row"
        payload["key"] = key
        with open(self.path, "a") as handle:
            handle.write(json.dumps(payload) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _repair_torn_tail(self) -> None:
        """Truncate an unterminated final line (the crash-mid-write
        signature: ``fsync`` per append means at most the very last
        line can be partial).  The row it would have recorded simply
        re-runs; loads already tolerate the fragment, but appends must
        not extend it."""
        if not os.path.exists(self.path):
            return
        with open(self.path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            # Scan back to the start of the unterminated fragment.
            start = size - 1
            chunk = 4096
            while start > 0:
                step = min(chunk, start)
                handle.seek(start - step)
                data = handle.read(step)
                cut = data.rfind(b"\n")
                if cut >= 0:
                    start = start - step + cut + 1
                    break
                start -= step
            handle.seek(start)
            fragment = handle.read(size - start)
            try:
                json.loads(fragment.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError):
                pass
            else:
                # Complete record, only its newline was lost: keep it.
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
                return
            warnings.warn(
                f"{self.path}: truncating torn trailing line "
                f"({size - start} byte(s) from a crash mid-append); "
                f"the interrupted row will re-run",
                RuntimeWarning, stacklevel=3,
            )
            handle.truncate(start)
            handle.flush()
            os.fsync(handle.fileno())

    # ---- reading ---------------------------------------------------------

    def _iter_records(self) -> Iterable[Dict[str, Any]]:
        with open(self.path, "rb") as handle:
            raw_lines = handle.readlines()
        for index, raw in enumerate(raw_lines):
            last = index == len(raw_lines) - 1
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if last and not raw.endswith(b"\n"):
                    # The crash signature: a torn trailing line from a
                    # kill mid-append.  Tolerate and warn; the row it
                    # would have recorded simply re-runs, and the next
                    # append truncates the fragment away.
                    warnings.warn(
                        f"{self.path}: ignoring torn trailing line "
                        f"(crash mid-append); the interrupted row "
                        f"will re-run",
                        RuntimeWarning, stacklevel=4,
                    )
                else:
                    warnings.warn(
                        f"{self.path}: skipping unreadable checkpoint "
                        f"line {index + 1}",
                        RuntimeWarning, stacklevel=4,
                    )
                continue
            if isinstance(record, dict):
                yield record

    def load(self) -> Tuple[Dict[str, Any], Dict[str, Dict[str, Any]]]:
        """Return ``(header_config, rows_by_key)``; last record wins."""
        if not self.exists():
            return {}, {}
        header: Dict[str, Any] = {}
        rows: Dict[str, Dict[str, Any]] = {}
        saw_header = False
        for record in self._iter_records():
            kind = record.get("kind")
            if kind == "header":
                if record.get("format") != FORMAT:
                    raise CheckpointError(
                        f"{self.path}: not a sweep checkpoint "
                        f"(format={record.get('format')!r})"
                    )
                header = record.get("config", {})
                saw_header = True
            elif kind == "row" and "key" in record:
                rows[record["key"]] = record
        if not saw_header and rows:
            raise CheckpointError(f"{self.path}: missing header record")
        return header, rows

    @staticmethod
    def task_key(benchmark: str, mode: str) -> str:
        return f"{benchmark}/{mode}"
