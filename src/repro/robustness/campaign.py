"""Fault-injection campaigns: N seeds x corpus, oracle-refereed.

A campaign runs each case program under a seeded
:class:`~repro.robustness.faults.FaultPlan` with the structural
invariant lint enabled, then compares the retired architectural state
against the in-order functional oracle.  Any divergence — register or
memory mismatch, retirement-count drift, an invariant violation, a
deadlock, a failure to halt — is recorded with the case name and seed
so the exact run replays deterministically.

``tools/fault_campaign.py`` is the command-line driver; the campaign
tests in the tier-1 suite run a reduced version of the same sweep.
"""
from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..core.policy import SecurityConfig
from ..errors import SimulationError
from ..isa.instructions import Opcode
from ..isa.oracle import run_oracle
from ..isa.program import Program
from ..params import MachineParams, tiny_config
from .faults import FaultPlan

#: SPEC profiles the default campaign exercises (cheap but distinct:
#: compute-bound, pointer-chasing and branchy codes).
DEFAULT_SPEC_PROFILES = ("hmmer", "mcf", "astar")


@dataclass(frozen=True)
class CampaignCase:
    """One program the campaign perturbs."""

    name: str
    program: Program
    max_cycles: int = 2_000_000
    max_instructions: int = 2_000_000


@dataclass
class CampaignCaseResult:
    """Outcome of one (case, seed) run."""

    name: str
    seed: int
    ok: bool
    cycles: int = 0
    committed: int = 0
    duration_s: float = 0.0
    #: Per-kind injected event counts.
    injected: Dict[str, int] = field(default_factory=dict)
    #: Human-readable divergence descriptions (empty when ``ok``).
    mismatches: List[str] = field(default_factory=list)

    def render(self) -> str:
        status = "ok" if self.ok else "DIVERGED"
        injected = sum(self.injected.values())
        line = (f"{self.name:<24} seed={self.seed:<6} {status:<8} "
                f"cycles={self.cycles:<9} injected={injected}")
        if self.mismatches:
            line += "\n" + "\n".join(f"    {m}" for m in self.mismatches)
        return line


@dataclass
class CampaignResult:
    """All (case, seed) outcomes of one campaign."""

    results: List[CampaignCaseResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CampaignCaseResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def total_injected(self) -> int:
        return sum(sum(r.injected.values()) for r in self.results)

    def render(self) -> str:
        lines = [r.render() for r in self.results]
        lines.append(
            f"{len(self.results)} runs, {self.total_injected} injected "
            f"events, {len(self.failures)} divergences"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "runs": len(self.results),
            "injected_events": self.total_injected,
            "divergences": len(self.failures),
            "results": [
                {
                    "name": r.name, "seed": r.seed, "ok": r.ok,
                    "cycles": r.cycles, "committed": r.committed,
                    "injected": r.injected, "mismatches": r.mismatches,
                }
                for r in self.results
            ],
        }


def _rdcycle_dests(program: Program) -> Set[int]:
    """Registers whose final value is timing-dependent by design
    (RDCYCLE destinations) — excluded from oracle comparison, exactly
    as the equivalence suite does."""
    dests: Set[int] = set()
    for instruction in program.instructions:
        if instruction.op is Opcode.RDCYCLE \
                and instruction.dest is not None:
            dests.add(instruction.dest)
    return dests


def run_fault_case(
    case: CampaignCase,
    plan: FaultPlan,
    machine: Optional[MachineParams] = None,
    security: Optional[SecurityConfig] = None,
    check_invariants: bool = True,
) -> CampaignCaseResult:
    """Run one case under ``plan`` and referee it against the oracle."""
    # Imported here: the processor itself depends on robustness.faults.
    from ..pipeline.processor import Processor

    machine = machine if machine is not None else tiny_config()
    security = security if security is not None \
        else SecurityConfig.cache_hit_tpbuf()
    oracle = run_oracle(case.program,
                        max_instructions=case.max_instructions)
    mismatches: List[str] = []
    if not oracle.halted:
        mismatches.append("case bug: oracle did not halt")

    started = time.monotonic()
    cpu = Processor(case.program, machine=machine, security=security,
                    fault_plan=plan, check_invariants=check_invariants)
    report = None
    try:
        report = cpu.run(max_cycles=case.max_cycles)
    except SimulationError as exc:
        detail = f"{type(exc).__name__}: {exc}"
        diagnostics = getattr(exc, "diagnostics", None)
        if diagnostics is not None:
            detail += "\n" + diagnostics.render()
        mismatches.append(detail)
    duration = time.monotonic() - started

    if report is not None and not mismatches:
        if not report.halted:
            mismatches.append(
                f"did not halt (termination={report.termination})")
        else:
            skip = _rdcycle_dests(case.program)
            for reg in range(machine.core.num_arch_regs):
                if reg in skip:
                    continue
                got, want = cpu.arch_reg(reg), oracle.reg(reg)
                if got != want:
                    mismatches.append(
                        f"r{reg}: core={got:#x} oracle={want:#x}")
            addresses = set(oracle.memory) \
                | set(case.program.initial_memory)
            for vaddr in sorted(addresses):
                got, want = cpu.read_vword(vaddr), oracle.mem(vaddr)
                if got != want:
                    mismatches.append(
                        f"mem[{vaddr:#x}]: core={got:#x} "
                        f"oracle={want:#x}")
            if report.committed != oracle.retired:
                mismatches.append(
                    f"retirement drift: core committed "
                    f"{report.committed}, oracle retired "
                    f"{oracle.retired}")

    injected = cpu.faults.summary() if cpu.faults is not None else {}
    return CampaignCaseResult(
        name=case.name,
        seed=plan.seed,
        ok=not mismatches,
        cycles=cpu.cycle,
        committed=report.committed if report is not None else 0,
        duration_s=duration,
        injected=injected,
        mismatches=mismatches,
    )


# ---------------------------------------------------------------------------
# Case corpora
# ---------------------------------------------------------------------------

def gadget_cases(fenced_too: bool = True) -> List[CampaignCase]:
    """The Spectre gadget drivers (the security-critical corner)."""
    from ..analysis.corpus import GADGET_KINDS, build_gadget_program

    cases = []
    for kind in GADGET_KINDS:
        cases.append(CampaignCase(f"gadget:{kind}",
                                  build_gadget_program(kind)))
        if fenced_too:
            cases.append(CampaignCase(
                f"gadget:{kind}:fenced",
                build_gadget_program(kind, fenced=True)))
    return cases


def spec_cases(
    profiles: Optional[Iterable[str]] = None,
    scale: float = 0.1,
) -> List[CampaignCase]:
    """Reduced-scale SPEC profiles (the throughput corner)."""
    from ..workloads import spec_program

    return [
        CampaignCase(f"spec:{name}", spec_program(name, scale=scale))
        for name in (profiles or DEFAULT_SPEC_PROFILES)
    ]


def run_campaign(
    cases: Sequence[CampaignCase],
    seeds: Sequence[int],
    plan: Optional[FaultPlan] = None,
    machine: Optional[MachineParams] = None,
    security: Optional[SecurityConfig] = None,
    check_invariants: bool = True,
    progress=None,
) -> CampaignResult:
    """Run every case under every seed.

    ``plan`` supplies the rates (default :meth:`FaultPlan.moderate`);
    each (case, seed) pair gets a decorrelated seed derived from the
    campaign seed and the case name, so campaigns are reproducible yet
    no two runs share an RNG stream.
    """
    base = plan if plan is not None else FaultPlan.moderate()
    result = CampaignResult()
    for seed in seeds:
        for case in cases:
            derived = base.with_seed(seed).derive(case.name)
            outcome = run_fault_case(
                case, derived, machine=machine, security=security,
                check_invariants=check_invariants,
            )
            # Report under the campaign seed, which is what replays it.
            outcome.seed = seed
            result.results.append(outcome)
            if progress is not None:
                progress(outcome)
    return result
