"""Robustness subsystem: fault injection, forward-progress watchdog
and the fault-campaign driver.

The paper's security argument rests on the pipeline behaving correctly
under *adverse* speculation — squash storms, delayed fills, mispredicted
memory dependences — not just on the happy path the performance sweeps
exercise.  This package supplies the machinery to create those corner
cases on demand and to prove the machine survives them:

- :mod:`faults` — a seeded, deterministic :class:`FaultInjector` that
  the :class:`~repro.pipeline.processor.Processor` consults at its
  speculation decision points (``Processor(fault_plan=...)``);
- :mod:`watchdog` — the livelock/deadlock detector behind
  :class:`~repro.errors.DeadlockError`, with occupancy snapshots and a
  structured diagnostic dump;
- :mod:`checkpoint` — the JSON-lines checkpoint store the crash-safe
  sweep engine (:mod:`repro.experiments.runner`) persists to;
- :mod:`campaign` — runs programs under injection with the functional
  oracle and the structural invariant lint as referees, the engine
  behind ``tools/fault_campaign.py``.
"""
from .campaign import (
    CampaignCase,
    CampaignCaseResult,
    CampaignResult,
    gadget_cases,
    run_campaign,
    run_fault_case,
    spec_cases,
)
from .checkpoint import CheckpointStore
from .faults import FAULT_KINDS, FaultEvent, FaultInjector, FaultPlan
from .watchdog import (
    DEFAULT_WATCHDOG_CYCLES,
    DeadlockDiagnostics,
    ForwardProgressWatchdog,
    OccupancySnapshot,
)

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "DEFAULT_WATCHDOG_CYCLES",
    "DeadlockDiagnostics",
    "ForwardProgressWatchdog",
    "OccupancySnapshot",
    "CheckpointStore",
    "CampaignCase",
    "CampaignCaseResult",
    "CampaignResult",
    "gadget_cases",
    "spec_cases",
    "run_campaign",
    "run_fault_case",
]
