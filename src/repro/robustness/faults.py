"""Seeded, deterministic microarchitectural fault injection.

A :class:`FaultPlan` describes *what* to perturb (per-kind rates,
delay magnitudes, window lengths) and a :class:`FaultInjector` decides,
from a private seeded RNG, *when* each perturbation fires.  The
processor consults the injector at its speculation decision points;
every injected event is logged as a :class:`FaultEvent` so a campaign
can correlate a divergence with the exact perturbation sequence that
provoked it.

Fault model — every fault is *architecturally neutral* by
construction, so the functional oracle remains the ground truth:

``branch_mispredict``
    A correctly predicted branch is treated as mispredicted at
    resolution: everything younger squashes and fetch redirects to the
    (correct) target.  Exercises squash recovery on paths that never
    squash naturally.
``fill_delay``
    Extra cycles on a load's cache/forward completion — a late fill.
    Purely temporal.
``spurious_squash``
    A squash of every instruction younger than a randomly chosen ROB
    resident, redirecting fetch to that instruction's next PC (its
    resolved target, its predicted target, or PC+4).  Models external
    flush events (interrupt replays, machine clears).
``memdep_wait``
    A load is forced to replay instead of accessing the cache — a
    mispredicted memory dependence.  Capped per load
    (:attr:`FaultPlan.memdep_wait_cap`) to preserve forward progress.
``filter_disable``
    A window of cycles during which the Cache-hit/TPBuf hazard filters
    are bypassed, so suspect misses proceed: the unprotected-machine
    interleaving inside a protected run.
``iq_wakeup_drop``
    An issue-eligible instruction is skipped by select this cycle — a
    dropped wakeup that the next select cycle recovers.  Capped per
    instruction.
"""
from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple
from zlib import crc32

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline.dyninst import DynInst

#: Every injectable fault kind, in log order.
FAULT_KINDS: Tuple[str, ...] = (
    "branch_mispredict",
    "fill_delay",
    "spurious_squash",
    "memdep_wait",
    "filter_disable",
    "iq_wakeup_drop",
)


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, how often, and from which seed.

    Rates are per consultation: per correctly-predicted branch
    resolution (``branch_mispredict``), per load completion
    (``fill_delay``), per cycle (``spurious_squash`` and
    ``filter_disable`` window starts), per load cache stage
    (``memdep_wait``) and per eligible-instruction select
    (``iq_wakeup_drop``).
    """

    seed: int = 0
    branch_mispredict_rate: float = 0.0
    fill_delay_rate: float = 0.0
    fill_delay_max: int = 64
    spurious_squash_rate: float = 0.0
    memdep_wait_rate: float = 0.0
    memdep_wait_cap: int = 4
    filter_disable_rate: float = 0.0
    filter_disable_window: int = 32
    iq_wakeup_drop_rate: float = 0.0
    iq_wakeup_drop_cap: int = 8
    #: Injection only starts once the pipeline has warmed this long.
    start_cycle: int = 0
    #: Hard cap on logged events (None = unlimited).
    max_events: Optional[int] = None

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)

    def derive(self, key: str) -> "FaultPlan":
        """A plan with a seed decorrelated by ``key`` (deterministic)."""
        return replace(self, seed=(self.seed * 0x9E3779B1 + crc32(
            key.encode())) & 0x7FFFFFFF)

    @classmethod
    def moderate(cls, seed: int = 0) -> "FaultPlan":
        """The default campaign mix: every kind armed at a rate that
        perturbs without drowning the run in squashes."""
        return cls(
            seed=seed,
            branch_mispredict_rate=0.02,
            fill_delay_rate=0.05,
            fill_delay_max=96,
            spurious_squash_rate=0.0005,
            memdep_wait_rate=0.05,
            filter_disable_rate=0.0005,
            filter_disable_window=48,
            iq_wakeup_drop_rate=0.05,
        )

    @classmethod
    def aggressive(cls, seed: int = 0) -> "FaultPlan":
        """A squash-storm mix for short programs (campaign stress)."""
        return cls(
            seed=seed,
            branch_mispredict_rate=0.25,
            fill_delay_rate=0.3,
            fill_delay_max=200,
            spurious_squash_rate=0.01,
            memdep_wait_rate=0.3,
            filter_disable_rate=0.005,
            filter_disable_window=64,
            iq_wakeup_drop_rate=0.25,
        )

    @property
    def armed(self) -> bool:
        return any((
            self.branch_mispredict_rate, self.fill_delay_rate,
            self.spurious_squash_rate, self.memdep_wait_rate,
            self.filter_disable_rate, self.iq_wakeup_drop_rate,
        ))


@dataclass(frozen=True)
class FaultEvent:
    """One injected perturbation, as logged."""

    cycle: int
    kind: str
    seq: int = -1
    pc: int = -1
    detail: str = ""

    def render(self) -> str:
        where = f" seq={self.seq} pc={self.pc:#x}" if self.seq >= 0 else ""
        extra = f" ({self.detail})" if self.detail else ""
        return f"cycle {self.cycle}: {self.kind}{where}{extra}"


class FaultInjector:
    """Stateful decision-maker the processor consults each cycle.

    All randomness comes from one private ``random.Random(plan.seed)``,
    so a (program, machine, security, plan) tuple replays bit-for-bit —
    the property the campaign's divergence triage depends on.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.events: List[FaultEvent] = []
        self.counts: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._filter_disabled_until = -1
        self._memdep_forced: Dict[int, int] = {}
        self._wakeup_dropped: Dict[int, int] = {}

    # ---- internals -------------------------------------------------------

    def _armed(self, cycle: int) -> bool:
        if cycle < self.plan.start_cycle:
            return False
        if self.plan.max_events is not None \
                and len(self.events) >= self.plan.max_events:
            return False
        return True

    def _record(self, cycle: int, kind: str, seq: int = -1, pc: int = -1,
                detail: str = "") -> None:
        self.events.append(FaultEvent(cycle, kind, seq, pc, detail))
        self.counts[kind] += 1

    # ---- processor hooks -------------------------------------------------

    def force_branch_mispredict(self, cycle: int, inst: "DynInst") -> bool:
        """Whether a *correctly* predicted branch should squash anyway."""
        if not self._armed(cycle) \
                or self._rng.random() >= self.plan.branch_mispredict_rate:
            return False
        self._record(cycle, "branch_mispredict", inst.seq, inst.pc)
        return True

    def extra_fill_delay(self, cycle: int, inst: "DynInst") -> int:
        """Extra cycles to add to a load completion (0 = none)."""
        if not self._armed(cycle) \
                or self._rng.random() >= self.plan.fill_delay_rate:
            return 0
        delay = self._rng.randint(1, max(1, self.plan.fill_delay_max))
        self._record(cycle, "fill_delay", inst.seq, inst.pc,
                     f"+{delay} cycles")
        return delay

    def want_spurious_squash(self, cycle: int) -> bool:
        """Whether to flush this cycle (victim chosen by the caller)."""
        return self._armed(cycle) \
            and self._rng.random() < self.plan.spurious_squash_rate

    def choose_squash_point(
        self, cycle: int, candidates: Sequence["DynInst"],
    ) -> Optional["DynInst"]:
        """Pick the youngest-kept instruction for a spurious squash and
        log the event.  ``candidates`` must exclude entries whose next
        PC is unknowable (the caller filters HALTs)."""
        if not candidates:
            return None
        keep = self._rng.choice(list(candidates))
        self._record(cycle, "spurious_squash", keep.seq, keep.pc,
                     f"keep<= seq {keep.seq}")
        return keep

    def force_memdep_wait(self, cycle: int, inst: "DynInst") -> bool:
        """Whether a load must replay instead of accessing the cache.

        Bounded per load so injection can never livelock a run.
        """
        if not self._armed(cycle) \
                or self._memdep_forced.get(inst.seq, 0) \
                >= self.plan.memdep_wait_cap \
                or self._rng.random() >= self.plan.memdep_wait_rate:
            return False
        self._memdep_forced[inst.seq] = \
            self._memdep_forced.get(inst.seq, 0) + 1
        self._record(cycle, "memdep_wait", inst.seq, inst.pc,
                     f"replay {self._memdep_forced[inst.seq]}"
                     f"/{self.plan.memdep_wait_cap}")
        return True

    def filter_disabled(self, cycle: int) -> bool:
        """Whether the hazard filters are bypassed this cycle."""
        if cycle < self._filter_disabled_until:
            return True
        if not self._armed(cycle) \
                or self._rng.random() >= self.plan.filter_disable_rate:
            return False
        self._filter_disabled_until = cycle + max(
            1, self.plan.filter_disable_window)
        self._record(cycle, "filter_disable",
                     detail=f"window {self.plan.filter_disable_window} "
                            f"cycles")
        return True

    def drop_wakeup(self, cycle: int, inst: "DynInst") -> bool:
        """Whether select skips this eligible instruction this cycle."""
        if not self._armed(cycle) \
                or self._wakeup_dropped.get(inst.seq, 0) \
                >= self.plan.iq_wakeup_drop_cap \
                or self._rng.random() >= self.plan.iq_wakeup_drop_rate:
            return False
        self._wakeup_dropped[inst.seq] = \
            self._wakeup_dropped.get(inst.seq, 0) + 1
        self._record(cycle, "iq_wakeup_drop", inst.seq, inst.pc)
        return True

    # ---- reporting -------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return len(self.events)

    def summary(self) -> Dict[str, int]:
        """Per-kind event counts (only kinds that fired)."""
        return {kind: count for kind, count in self.counts.items()
                if count}

    def render_log(self, last: int = 20) -> str:
        lines = [f"{self.total_injected} injected events "
                 f"(seed {self.plan.seed})"]
        for kind, count in sorted(self.summary().items()):
            lines.append(f"  {kind}: {count}")
        for event in self.events[-last:]:
            lines.append(f"  {event.render()}")
        return "\n".join(lines)
