"""Serialize machine configurations to/from JSON.

Lets users define custom cores for the sensitivity experiments without
touching Python::

    {
      "core": {"name": "my-core", "rob_entries": 96, "issue_width": 4},
      "memory": {
        "l1d": {"size_kb": 32, "ways": 8, "hit_latency": 3},
        "dram_latency": 250
      }
    }

Unspecified fields inherit from :func:`repro.params.paper_config`.
"""
from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from .errors import ConfigError
from .params import CacheParams, CoreParams, MachineParams, TLBParams

_CACHE_LEVELS = ("l1i", "l1d", "l2", "l3")
_TLB_LEVELS = ("itlb", "dtlb")


def _build_cache(name: str, base: CacheParams,
                 spec: Dict[str, Any]) -> CacheParams:
    known = {"size_kb", "size_bytes", "ways", "line_bytes", "hit_latency"}
    unknown = set(spec) - known
    if unknown:
        raise ConfigError(f"{name}: unknown cache fields {sorted(unknown)}")
    size = spec.get("size_bytes", base.size_bytes)
    if "size_kb" in spec:
        size = int(spec["size_kb"]) * 1024
    return CacheParams(
        name=base.name,
        size_bytes=size,
        ways=spec.get("ways", base.ways),
        line_bytes=spec.get("line_bytes", base.line_bytes),
        hit_latency=spec.get("hit_latency", base.hit_latency),
    )


def _build_tlb(name: str, base: TLBParams,
               spec: Dict[str, Any]) -> TLBParams:
    known = {"entries", "hit_latency", "miss_latency", "page_bytes"}
    unknown = set(spec) - known
    if unknown:
        raise ConfigError(f"{name}: unknown TLB fields {sorted(unknown)}")
    return dataclasses.replace(base, **spec)


def machine_from_dict(spec: Dict[str, Any],
                      base: MachineParams = None) -> MachineParams:
    """Build a machine from a (partial) plain-dict description."""
    base = base if base is not None else MachineParams()
    unknown = set(spec) - {"core", "memory"}
    if unknown:
        raise ConfigError(f"unknown top-level fields {sorted(unknown)}")

    core_spec = dict(spec.get("core", {}))
    core_fields = {f.name for f in dataclasses.fields(CoreParams)}
    unknown = set(core_spec) - core_fields
    if unknown:
        raise ConfigError(f"unknown core fields {sorted(unknown)}")
    core = dataclasses.replace(base.core, **core_spec)

    memory_spec = dict(spec.get("memory", {}))
    unknown = set(memory_spec) - set(_CACHE_LEVELS) - set(_TLB_LEVELS) \
        - {"dram_latency"}
    if unknown:
        raise ConfigError(f"unknown memory fields {sorted(unknown)}")
    memory_kwargs: Dict[str, Any] = {}
    for level in _CACHE_LEVELS:
        if level in memory_spec:
            memory_kwargs[level] = _build_cache(
                level, getattr(base.memory, level), memory_spec[level]
            )
    for level in _TLB_LEVELS:
        if level in memory_spec:
            memory_kwargs[level] = _build_tlb(
                level, getattr(base.memory, level), memory_spec[level]
            )
    if "dram_latency" in memory_spec:
        memory_kwargs["dram_latency"] = memory_spec["dram_latency"]
    memory = dataclasses.replace(base.memory, **memory_kwargs)
    return MachineParams(core=core, memory=memory)


def machine_to_dict(machine: MachineParams) -> Dict[str, Any]:
    """Full plain-dict description of a machine (round-trippable)."""
    def cache(params: CacheParams) -> Dict[str, Any]:
        return {
            "size_bytes": params.size_bytes,
            "ways": params.ways,
            "line_bytes": params.line_bytes,
            "hit_latency": params.hit_latency,
        }

    def tlb(params: TLBParams) -> Dict[str, Any]:
        return dataclasses.asdict(params)

    return {
        "core": dataclasses.asdict(machine.core),
        "memory": {
            **{level: cache(getattr(machine.memory, level))
               for level in _CACHE_LEVELS},
            **{level: tlb(getattr(machine.memory, level))
               for level in _TLB_LEVELS},
            "dram_latency": machine.memory.dram_latency,
        },
    }


def security_from_dict(spec: Dict[str, Any]) -> "SecurityConfig":
    """Build a :class:`repro.core.policy.SecurityConfig` from JSON.

    The defense is named by ``defense`` (any registered zoo name or
    alias; the legacy key ``mode`` is accepted as a deprecated
    spelling) and the remaining keys are the mechanism knobs::

        {"defense": "cache_hit_tpbuf", "icache_filter": true}
    """
    from .core.policy import SecurityConfig
    from .memory.replacement import SpeculativeLRUPolicy

    known = {"defense", "mode", "lru_policy", "clear_on_resolve",
             "branch_only_matrix", "icache_filter"}
    unknown = set(spec) - known
    if unknown:
        raise ConfigError(
            f"security: unknown fields {sorted(unknown)}")
    if "defense" in spec and "mode" in spec \
            and spec["defense"] != spec["mode"]:
        raise ConfigError(
            "security: give either 'defense' or the deprecated "
            "'mode', not conflicting values of both")
    name = spec.get("defense", spec.get("mode", "origin"))
    overrides: Dict[str, Any] = {
        key: spec[key]
        for key in ("clear_on_resolve", "branch_only_matrix",
                    "icache_filter")
        if key in spec
    }
    if "lru_policy" in spec:
        overrides["lru_policy"] = SpeculativeLRUPolicy(spec["lru_policy"])
    return SecurityConfig.for_defense(name, **overrides)


def security_to_dict(security: "SecurityConfig") -> Dict[str, Any]:
    """Inverse of :func:`security_from_dict` (canonical names only)."""
    return {
        "defense": security.defense_name,
        "lru_policy": security.lru_policy.value,
        "clear_on_resolve": security.clear_on_resolve,
        "branch_only_matrix": security.branch_only_matrix,
        "icache_filter": security.icache_filter,
    }


def load_machine(path: str,
                 base: MachineParams = None) -> MachineParams:
    """Load a machine description from a JSON file."""
    with open(path) as handle:
        try:
            spec = json.load(handle)
        except json.JSONDecodeError as error:
            raise ConfigError(f"{path}: invalid JSON ({error})") from None
    return machine_from_dict(spec, base=base)


def save_machine(machine: MachineParams, path: str) -> None:
    """Write a machine description to a JSON file."""
    with open(path, "w") as handle:
        json.dump(machine_to_dict(machine), handle, indent=2)
        handle.write("\n")
