"""A tiny text assembler for the simulator's ISA.

The format mirrors the PoC listings in the paper closely enough to
transcribe them.  Supported syntax::

    ; comment            # comment
    label:
        li    r1, 0x40
        addi  r1, r1, -8
        load  r2, r1, 16     ; r2 = mem[r1 + 16]
        store r2, r1, 0      ; mem[r1 + 0] = r2
        beq   r1, r0, done
        jmp   loop
        clflush r3, 0
        fence
        rdcycle r9
        halt
    .data 0x2000
        .word 1, 2, 0xff

Registers are ``r0``..``r31`` (``r0`` is hardwired to zero).  Immediates
accept decimal and ``0x`` hex with optional sign.
"""
from __future__ import annotations

import re
from typing import List

from ..errors import AssemblyError
from .builder import ProgramBuilder
from .instructions import WORD_BYTES, Instruction, Opcode
from .program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_REG_RE = re.compile(r"^r([0-9]|[12][0-9]|3[01])$")

_ALU3 = {"add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr"}
_ALUI = {"addi", "andi", "xori", "shli", "shri"}
_BRANCH = {"beq", "bne", "blt", "bge"}


def _parse_reg(token: str, line_no: int) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblyError(f"line {line_no}: expected register, got {token!r}")
    return int(match.group(1))


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(
            f"line {line_no}: expected integer, got {token!r}"
        ) from None


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(source: str, base_address: int = 0x1000) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    builder = ProgramBuilder(base_address=base_address)
    data_cursor = None

    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].split("#")[0].strip()
        if not line:
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            builder.label(label_match.group(1))
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []

        if mnemonic == ".data":
            if len(operands) != 1:
                raise AssemblyError(f"line {line_no}: .data needs an address")
            data_cursor = _parse_int(operands[0], line_no)
            continue
        if mnemonic == ".word":
            if data_cursor is None:
                raise AssemblyError(f"line {line_no}: .word before .data")
            for token in operands:
                builder.data_word(data_cursor, _parse_int(token, line_no))
                data_cursor += WORD_BYTES
            continue

        if mnemonic in _ALU3:
            if len(operands) != 3:
                raise AssemblyError(f"line {line_no}: {mnemonic} needs 3 operands")
            rd, rs1, rs2 = (_parse_reg(t, line_no) for t in operands)
            method = {"and": "and_", "or": "or_"}.get(mnemonic, mnemonic)
            getattr(builder, method)(rd, rs1, rs2)
        elif mnemonic in _ALUI:
            if len(operands) != 3:
                raise AssemblyError(f"line {line_no}: {mnemonic} needs 3 operands")
            rd = _parse_reg(operands[0], line_no)
            rs1 = _parse_reg(operands[1], line_no)
            imm = _parse_int(operands[2], line_no)
            getattr(builder, mnemonic)(rd, rs1, imm)
        elif mnemonic == "li":
            rd = _parse_reg(operands[0], line_no)
            builder.li(rd, _parse_int(operands[1], line_no))
        elif mnemonic == "mov":
            rd = _parse_reg(operands[0], line_no)
            builder.mov(rd, _parse_reg(operands[1], line_no))
        elif mnemonic == "load":
            if len(operands) not in (2, 3):
                raise AssemblyError(f"line {line_no}: load rd, rs1[, imm]")
            rd = _parse_reg(operands[0], line_no)
            rs1 = _parse_reg(operands[1], line_no)
            imm = _parse_int(operands[2], line_no) if len(operands) == 3 else 0
            builder.load(rd, rs1, imm)
        elif mnemonic == "store":
            if len(operands) not in (2, 3):
                raise AssemblyError(f"line {line_no}: store rs2, rs1[, imm]")
            rs2 = _parse_reg(operands[0], line_no)
            rs1 = _parse_reg(operands[1], line_no)
            imm = _parse_int(operands[2], line_no) if len(operands) == 3 else 0
            builder.store(rs2, rs1, imm)
        elif mnemonic == "clflush":
            rs1 = _parse_reg(operands[0], line_no)
            imm = _parse_int(operands[1], line_no) if len(operands) > 1 else 0
            builder.clflush(rs1, imm)
        elif mnemonic in _BRANCH:
            if len(operands) != 3:
                raise AssemblyError(f"line {line_no}: {mnemonic} rs1, rs2, target")
            rs1 = _parse_reg(operands[0], line_no)
            rs2 = _parse_reg(operands[1], line_no)
            target = operands[2]
            getattr(builder, mnemonic)(
                rs1, rs2,
                _parse_int(target, line_no) if target[0].isdigit() else target,
            )
        elif mnemonic == "jmp":
            target = operands[0]
            builder.jmp(
                _parse_int(target, line_no) if target[0].isdigit() else target
            )
        elif mnemonic == "jmpi":
            builder.jmpi(_parse_reg(operands[0], line_no))
        elif mnemonic == "call":
            if len(operands) not in (1, 2):
                raise AssemblyError(f"line {line_no}: call target[, rd]")
            target = operands[0]
            rd = (_parse_reg(operands[1], line_no)
                  if len(operands) == 2 else 31)
            builder.call(
                _parse_int(target, line_no) if target[0].isdigit()
                else target,
                rd=rd,
            )
        elif mnemonic == "ret":
            if operands:
                builder.ret(_parse_reg(operands[0], line_no))
            else:
                builder.ret()
        elif mnemonic == "fence":
            builder.fence()
        elif mnemonic == "rdcycle":
            builder.rdcycle(_parse_reg(operands[0], line_no))
        elif mnemonic == "nop":
            builder.nop()
        elif mnemonic == "halt":
            builder.halt()
        else:
            raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")

    return builder.build()


# ---------------------------------------------------------------------------
# Disassembly (the inverse of :func:`assemble`)
# ---------------------------------------------------------------------------

_MNEMONIC = {
    Opcode.ADD: "add", Opcode.SUB: "sub", Opcode.MUL: "mul",
    Opcode.DIV: "div", Opcode.AND: "and", Opcode.OR: "or",
    Opcode.XOR: "xor", Opcode.SHL: "shl", Opcode.SHR: "shr",
    Opcode.ADDI: "addi", Opcode.ANDI: "andi", Opcode.XORI: "xori",
    Opcode.SHLI: "shli", Opcode.SHRI: "shri",
    Opcode.BEQ: "beq", Opcode.BNE: "bne",
    Opcode.BLT: "blt", Opcode.BGE: "bge",
}


def _format_target(address: int, names_at: dict) -> str:
    """A branch/jump/call operand: the label at ``address`` when one
    exists, otherwise the bare decimal address (the parser reads any
    digit-leading operand as an integer)."""
    names = names_at.get(address)
    if names:
        return names[0]
    return str(address)


def disassemble(program: Program) -> str:
    """Render ``program`` as :func:`assemble`-compatible source.

    The output round-trips: ``assemble(disassemble(p), p.base_address)``
    rebuilds the same instruction encodings, labels and data image for
    any builder-produced program.  Two canonicalizations apply —
    ``note`` strings are emitted as comments (and therefore dropped on
    reassembly) and operand fields unused by an opcode are not encoded
    — so comparisons should use the encoding fields each opcode
    defines.  Only the entry point cannot be expressed in the text
    format; a program whose entry differs from its base address is
    rejected.
    """
    if program.entry_point != program.base_address:
        raise AssemblyError(
            "cannot disassemble a program whose entry point "
            f"({program.entry_point:#x}) is not its base address"
        )
    names_at: dict = {}
    for name, address in sorted(program.labels.items()):
        if not _LABEL_RE.match(name + ":"):
            raise AssemblyError(f"label {name!r} is not representable")
        names_at.setdefault(address, []).append(name)

    lines: List[str] = []
    for address, instr in program.iter_addressed():
        for name in names_at.get(address, ()):
            lines.append(f"{name}:")
        lines.append("    " + _format_instruction(instr, names_at))
    for name in names_at.get(program.end_address, ()):
        lines.append(f"{name}:")

    # Data image: one ``.data`` section per run of consecutive words.
    run_start = None
    run_values: List[int] = []

    def flush_run() -> None:
        if run_start is None:
            return
        lines.append(f".data {run_start:#x}")
        for offset in range(0, len(run_values), 8):
            chunk = run_values[offset:offset + 8]
            lines.append("    .word " + ", ".join(f"{v:#x}" for v in chunk))

    for address in sorted(program.initial_memory):
        value = program.initial_memory[address]
        if (run_start is not None
                and address == run_start + len(run_values) * WORD_BYTES):
            run_values.append(value)
            continue
        flush_run()
        run_start = address
        run_values = [value]
    flush_run()
    return "\n".join(lines) + "\n"


def _format_instruction(instr: Instruction, names_at: dict) -> str:
    op = instr.op
    comment = f"    ; {instr.note}" if instr.note else ""
    if op in _ALU3_OPS:
        text = (f"{_MNEMONIC[op]} r{instr.rd}, "
                f"r{instr.rs1}, r{instr.rs2}")
    elif op in _ALUI_OPS:
        text = (f"{_MNEMONIC[op]} r{instr.rd}, "
                f"r{instr.rs1}, {instr.imm}")
    elif op is Opcode.LI:
        text = f"li r{instr.rd}, {instr.imm}"
    elif op is Opcode.MOV:
        text = f"mov r{instr.rd}, r{instr.rs1}"
    elif op is Opcode.LOAD:
        text = f"load r{instr.rd}, r{instr.rs1}, {instr.imm}"
    elif op is Opcode.STORE:
        text = f"store r{instr.rs2}, r{instr.rs1}, {instr.imm}"
    elif op is Opcode.CLFLUSH:
        text = f"clflush r{instr.rs1}, {instr.imm}"
    elif op in _BRANCH_OPS:
        text = (f"{_MNEMONIC[op]} r{instr.rs1}, r{instr.rs2}, "
                f"{_format_target(instr.target, names_at)}")
    elif op is Opcode.JMP:
        text = f"jmp {_format_target(instr.target, names_at)}"
    elif op is Opcode.JMPI:
        text = f"jmpi r{instr.rs1}"
    elif op is Opcode.CALL:
        text = f"call {_format_target(instr.target, names_at)}"
        if instr.rd != 31:
            text += f", r{instr.rd}"
    elif op is Opcode.RET:
        text = "ret" if instr.rs1 == 31 else f"ret r{instr.rs1}"
    elif op is Opcode.FENCE:
        text = "fence"
    elif op is Opcode.RDCYCLE:
        text = f"rdcycle r{instr.rd}"
    elif op is Opcode.NOP:
        text = "nop"
    elif op is Opcode.HALT:
        text = "halt"
    else:  # pragma: no cover - the ISA above is exhaustive
        raise AssemblyError(f"cannot disassemble opcode {op}")
    return text + comment


_ALU3_OPS = {Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
             Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR}
_ALUI_OPS = {Opcode.ADDI, Opcode.ANDI, Opcode.XORI, Opcode.SHLI,
             Opcode.SHRI}
_BRANCH_OPS = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}
