"""A tiny text assembler for the simulator's ISA.

The format mirrors the PoC listings in the paper closely enough to
transcribe them.  Supported syntax::

    ; comment            # comment
    label:
        li    r1, 0x40
        addi  r1, r1, -8
        load  r2, r1, 16     ; r2 = mem[r1 + 16]
        store r2, r1, 0      ; mem[r1 + 0] = r2
        beq   r1, r0, done
        jmp   loop
        clflush r3, 0
        fence
        rdcycle r9
        halt
    .data 0x2000
        .word 1, 2, 0xff

Registers are ``r0``..``r31`` (``r0`` is hardwired to zero).  Immediates
accept decimal and ``0x`` hex with optional sign.
"""
from __future__ import annotations

import re
from typing import List

from ..errors import AssemblyError
from .builder import ProgramBuilder
from .instructions import WORD_BYTES
from .program import Program

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_REG_RE = re.compile(r"^r([0-9]|[12][0-9]|3[01])$")

_ALU3 = {"add", "sub", "mul", "div", "and", "or", "xor", "shl", "shr"}
_ALUI = {"addi", "andi", "xori", "shli", "shri"}
_BRANCH = {"beq", "bne", "blt", "bge"}


def _parse_reg(token: str, line_no: int) -> int:
    match = _REG_RE.match(token)
    if not match:
        raise AssemblyError(f"line {line_no}: expected register, got {token!r}")
    return int(match.group(1))


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(
            f"line {line_no}: expected integer, got {token!r}"
        ) from None


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(source: str, base_address: int = 0x1000) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    builder = ProgramBuilder(base_address=base_address)
    data_cursor = None

    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split(";")[0].split("#")[0].strip()
        if not line:
            continue

        label_match = _LABEL_RE.match(line)
        if label_match:
            builder.label(label_match.group(1))
            continue

        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = _split_operands(parts[1]) if len(parts) > 1 else []

        if mnemonic == ".data":
            if len(operands) != 1:
                raise AssemblyError(f"line {line_no}: .data needs an address")
            data_cursor = _parse_int(operands[0], line_no)
            continue
        if mnemonic == ".word":
            if data_cursor is None:
                raise AssemblyError(f"line {line_no}: .word before .data")
            for token in operands:
                builder.data_word(data_cursor, _parse_int(token, line_no))
                data_cursor += WORD_BYTES
            continue

        if mnemonic in _ALU3:
            if len(operands) != 3:
                raise AssemblyError(f"line {line_no}: {mnemonic} needs 3 operands")
            rd, rs1, rs2 = (_parse_reg(t, line_no) for t in operands)
            method = {"and": "and_", "or": "or_"}.get(mnemonic, mnemonic)
            getattr(builder, method)(rd, rs1, rs2)
        elif mnemonic in _ALUI:
            if len(operands) != 3:
                raise AssemblyError(f"line {line_no}: {mnemonic} needs 3 operands")
            rd = _parse_reg(operands[0], line_no)
            rs1 = _parse_reg(operands[1], line_no)
            imm = _parse_int(operands[2], line_no)
            getattr(builder, mnemonic)(rd, rs1, imm)
        elif mnemonic == "li":
            rd = _parse_reg(operands[0], line_no)
            builder.li(rd, _parse_int(operands[1], line_no))
        elif mnemonic == "mov":
            rd = _parse_reg(operands[0], line_no)
            builder.mov(rd, _parse_reg(operands[1], line_no))
        elif mnemonic == "load":
            if len(operands) not in (2, 3):
                raise AssemblyError(f"line {line_no}: load rd, rs1[, imm]")
            rd = _parse_reg(operands[0], line_no)
            rs1 = _parse_reg(operands[1], line_no)
            imm = _parse_int(operands[2], line_no) if len(operands) == 3 else 0
            builder.load(rd, rs1, imm)
        elif mnemonic == "store":
            if len(operands) not in (2, 3):
                raise AssemblyError(f"line {line_no}: store rs2, rs1[, imm]")
            rs2 = _parse_reg(operands[0], line_no)
            rs1 = _parse_reg(operands[1], line_no)
            imm = _parse_int(operands[2], line_no) if len(operands) == 3 else 0
            builder.store(rs2, rs1, imm)
        elif mnemonic == "clflush":
            rs1 = _parse_reg(operands[0], line_no)
            imm = _parse_int(operands[1], line_no) if len(operands) > 1 else 0
            builder.clflush(rs1, imm)
        elif mnemonic in _BRANCH:
            if len(operands) != 3:
                raise AssemblyError(f"line {line_no}: {mnemonic} rs1, rs2, target")
            rs1 = _parse_reg(operands[0], line_no)
            rs2 = _parse_reg(operands[1], line_no)
            target = operands[2]
            getattr(builder, mnemonic)(
                rs1, rs2,
                _parse_int(target, line_no) if target[0].isdigit() else target,
            )
        elif mnemonic == "jmp":
            target = operands[0]
            builder.jmp(
                _parse_int(target, line_no) if target[0].isdigit() else target
            )
        elif mnemonic == "jmpi":
            builder.jmpi(_parse_reg(operands[0], line_no))
        elif mnemonic == "call":
            target = operands[0]
            builder.call(
                _parse_int(target, line_no) if target[0].isdigit()
                else target
            )
        elif mnemonic == "ret":
            if operands:
                builder.ret(_parse_reg(operands[0], line_no))
            else:
                builder.ret()
        elif mnemonic == "fence":
            builder.fence()
        elif mnemonic == "rdcycle":
            builder.rdcycle(_parse_reg(operands[0], line_no))
        elif mnemonic == "nop":
            builder.nop()
        elif mnemonic == "halt":
            builder.halt()
        else:
            raise AssemblyError(f"line {line_no}: unknown mnemonic {mnemonic!r}")

    return builder.build()
