"""A small RISC-style ISA for the simulator.

The ISA provides exactly the primitives Spectre gadgets and the
Conditional Speculation defense care about: ALU ops, loads/stores,
conditional and indirect branches, cache-line flush, a serializing
fence, and a serializing cycle-counter read (``RDCYCLE``) used by the
in-simulator side-channel receivers.
"""
from .instructions import (
    INSTRUCTION_BYTES,
    Instruction,
    Opcode,
    OpClass,
    WORD_BYTES,
)
from .program import InstructionMemory, Program
from .builder import ProgramBuilder
from .assembler import assemble
from .oracle import OracleResult, run_oracle

__all__ = [
    "INSTRUCTION_BYTES",
    "WORD_BYTES",
    "Instruction",
    "Opcode",
    "OpClass",
    "Program",
    "InstructionMemory",
    "ProgramBuilder",
    "assemble",
    "OracleResult",
    "run_oracle",
]
