"""In-order functional reference executor ("oracle").

The oracle executes a program sequentially with no timing model and
returns the final architectural state.  It is the ground truth the
out-of-order core is validated against: for any program, any protection
mode, the core must retire to exactly the oracle's state.

``RDCYCLE`` is the one timing-visible instruction; the oracle defines it
as the number of retired instructions so far, which intentionally
differs from the core's cycle counter.  Equivalence tests therefore
exclude ``RDCYCLE`` (or mask its destination).
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ExecutionError
from .instructions import (
    INSTRUCTION_BYTES,
    WORD_BYTES,
    Opcode,
    branch_taken,
    evaluate_alu,
    mask64,
)
from .program import InstructionMemory, Program

_WORD_ALIGN = ~(WORD_BYTES - 1)


@dataclass
class OracleResult:
    """Final architectural state after an oracle run."""

    registers: List[int]
    memory: Dict[int, int]
    retired: int
    halted: bool
    pc: int
    # Committed loads/stores in order: (pc, address, value).
    load_trace: List[Tuple[int, int, int]] = field(default_factory=list)
    store_trace: List[Tuple[int, int, int]] = field(default_factory=list)

    def reg(self, index: int) -> int:
        return self.registers[index]

    def mem(self, address: int) -> int:
        return self.memory.get(address & _WORD_ALIGN, 0)


def run_oracle(
    program: Program,
    max_instructions: int = 1_000_000,
    num_arch_regs: int = 32,
    initial_registers: Optional[Dict[int, int]] = None,
    trace: bool = False,
) -> OracleResult:
    """Execute ``program`` to completion (HALT) or ``max_instructions``."""
    imem = InstructionMemory(program)
    memory: Dict[int, int] = dict(program.initial_memory)
    registers = [0] * num_arch_regs
    for index, value in (initial_registers or {}).items():
        registers[index] = mask64(value)
    registers[0] = 0

    pc = program.entry_point
    retired = 0
    halted = False
    load_trace: List[Tuple[int, int, int]] = []
    store_trace: List[Tuple[int, int, int]] = []

    def write_reg(index: int, value: int) -> None:
        if index != 0:
            registers[index] = mask64(value)

    while retired < max_instructions:
        instruction = imem.fetch(pc)
        if not imem.is_mapped(pc):
            raise ExecutionError(
                f"oracle: control flowed to unmapped address {pc:#x}"
            )
        next_pc = pc + INSTRUCTION_BYTES
        op = instruction.op

        if op is Opcode.HALT:
            halted = True
            retired += 1
            break
        elif op is Opcode.NOP or op is Opcode.FENCE or op is Opcode.CLFLUSH:
            pass  # no architectural effect
        elif op is Opcode.LI:
            write_reg(instruction.rd, instruction.imm)
        elif op is Opcode.RDCYCLE:
            write_reg(instruction.rd, retired)
        elif op is Opcode.LOAD:
            address = mask64(registers[instruction.rs1] + instruction.imm)
            value = memory.get(address & _WORD_ALIGN, 0)
            write_reg(instruction.rd, value)
            if trace:
                load_trace.append((pc, address, value))
        elif op is Opcode.STORE:
            address = mask64(registers[instruction.rs1] + instruction.imm)
            value = registers[instruction.rs2]
            memory[address & _WORD_ALIGN] = value
            if trace:
                store_trace.append((pc, address, value))
        elif op is Opcode.JMP:
            next_pc = instruction.target
        elif op is Opcode.CALL:
            write_reg(instruction.rd, pc + INSTRUCTION_BYTES)
            next_pc = instruction.target
        elif op in (Opcode.JMPI, Opcode.RET):
            next_pc = mask64(registers[instruction.rs1])
        elif instruction.is_conditional_branch:
            if branch_taken(op, registers[instruction.rs1],
                            registers[instruction.rs2]):
                next_pc = instruction.target
        elif op is Opcode.MOV:
            write_reg(instruction.rd, registers[instruction.rs1])
        elif op in (Opcode.ADDI, Opcode.ANDI, Opcode.XORI,
                    Opcode.SHLI, Opcode.SHRI):
            write_reg(
                instruction.rd,
                evaluate_alu(op, registers[instruction.rs1],
                             mask64(instruction.imm)),
            )
        else:  # register-register ALU
            write_reg(
                instruction.rd,
                evaluate_alu(op, registers[instruction.rs1],
                             registers[instruction.rs2]),
            )

        retired += 1
        pc = next_pc

    return OracleResult(
        registers=registers,
        memory=memory,
        retired=retired,
        halted=halted,
        pc=pc,
        load_trace=load_trace,
        store_trace=store_trace,
    )
