"""Program container and instruction memory.

A :class:`Program` is a list of instructions laid out at a base address
plus an initial data image (word address -> 64-bit value).  The
:class:`InstructionMemory` view is what the fetch stage reads; fetches
from unmapped addresses decode as ``NOP`` so that wrong-path fetch can
run ahead harmlessly until the mispredicted branch squashes it, the way
real front ends fetch garbage past a misprediction.
"""
from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import SimulationError
from .instructions import INSTRUCTION_BYTES, WORD_BYTES, Instruction, Opcode

_NOP = Instruction(Opcode.NOP)


@dataclass
class Program:
    """A fully resolved program image."""

    instructions: List[Instruction]
    base_address: int = 0x1000
    labels: Dict[str, int] = field(default_factory=dict)
    initial_memory: Dict[int, int] = field(default_factory=dict)
    entry_point: Optional[int] = None

    def __post_init__(self) -> None:
        if self.base_address % INSTRUCTION_BYTES != 0:
            raise SimulationError("program base address must be aligned")
        if self.entry_point is None:
            self.entry_point = self.base_address
        for address in self.initial_memory:
            if address % WORD_BYTES != 0:
                raise SimulationError(
                    f"initial memory address {address:#x} is not word aligned"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, index: int) -> int:
        """Instruction address of the ``index``-th instruction."""
        return self.base_address + index * INSTRUCTION_BYTES

    @property
    def end_address(self) -> int:
        return self.address_of(len(self.instructions))

    def label(self, name: str) -> int:
        """Address of a label defined by the builder/assembler."""
        try:
            return self.labels[name]
        except KeyError:
            raise SimulationError(f"unknown label {name!r}") from None

    def instruction_at(self, address: int) -> Optional[Instruction]:
        """The instruction at ``address`` or ``None`` if unmapped."""
        offset = address - self.base_address
        if offset < 0 or offset % INSTRUCTION_BYTES != 0:
            return None
        index = offset // INSTRUCTION_BYTES
        if index >= len(self.instructions):
            return None
        return self.instructions[index]

    def iter_addressed(self) -> Iterator[Tuple[int, Instruction]]:
        for index, instruction in enumerate(self.instructions):
            yield self.address_of(index), instruction

    def listing(self) -> str:
        """Human-readable disassembly with label annotations."""
        by_address: Dict[int, List[str]] = {}
        for name, address in self.labels.items():
            by_address.setdefault(address, []).append(name)
        lines = []
        for address, instruction in self.iter_addressed():
            for name in by_address.get(address, ()):
                lines.append(f"{name}:")
            lines.append(f"  {address:#06x}  {instruction}")
        return "\n".join(lines)


@dataclass
class FenceRewrite:
    """Result of :func:`insert_fences`.

    Carries the rewritten program plus the address bookkeeping needed
    to relate analyses of the two images: ``to_new`` maps every
    original instruction address to its post-rewrite address,
    ``fence_for`` maps a fenced original address to its protecting
    fence, and ``fence_addresses`` lists the inserted fences in the
    new image.
    """

    program: Program
    #: Original instruction address -> address in the new image.
    to_new: Dict[int, int]
    #: Addresses (new image) of the FENCE instructions inserted.
    fence_addresses: Tuple[int, ...]
    #: Fenced original address -> address of its protecting fence.
    fence_for: Dict[int, int] = field(default_factory=dict)
    #: ``end_address`` of the original program.
    old_end: int = 0
    #: ``end_address`` of the rewritten program.
    new_end: int = 0

    @property
    def inserted(self) -> int:
        return len(self.fence_addresses)

    def remap_address(self, address: int) -> int:
        """Where a control transfer to (or value naming) ``address``
        should land in the rewritten image.  Fenced addresses map to
        their protecting fence so *every* path into a fenced
        instruction — fall-through or jump — serializes first; the
        fence is architecturally a NOP, so semantics are preserved."""
        if address in self.fence_for:
            return self.fence_for[address]
        if address == self.old_end:
            return self.new_end
        return self.to_new.get(address, address)


def insert_fences(program: Program, pcs: Iterable[int]) -> FenceRewrite:
    """Insert a ``FENCE`` immediately before each instruction address
    in ``pcs`` and fix up everything the shifted layout breaks.

    Rewriting moves instructions, so three classes of embedded
    addresses are remapped through :meth:`FenceRewrite.remap_address`:

    - direct branch / jump / call targets;
    - ``LI`` immediates **when the immediate is a known code label**
      (``li_label`` results such as stored function pointers).  Plain
      constants that merely collide numerically with a code address
      (e.g. a page size of 4096 equal to the base address) are left
      untouched — the label table is the ground truth for what is an
      address;
    - initial-memory words holding label addresses (indirect-branch
      targets materialized in data), under the same label rule;
    - the entry point and the label table itself.

    A target that is itself fenced remaps to the protecting fence, so
    the fence guards jump edges as well as fall-through.
    """
    fence_before = set(pcs)
    for pc in fence_before:
        if program.instruction_at(pc) is None:
            raise SimulationError(
                f"cannot fence unmapped address {pc:#x}"
            )
    label_addresses = set(program.labels.values())

    new_instructions: List[Instruction] = []
    to_new: Dict[int, int] = {}
    fence_for: Dict[int, int] = {}
    fence_addresses: List[int] = []
    for address, instruction in program.iter_addressed():
        if address in fence_before:
            fence_address = (program.base_address
                             + len(new_instructions) * INSTRUCTION_BYTES)
            fence_addresses.append(fence_address)
            fence_for[address] = fence_address
            new_instructions.append(
                Instruction(Opcode.FENCE, note="synthesized")
            )
        to_new[address] = (program.base_address
                           + len(new_instructions) * INSTRUCTION_BYTES)
        new_instructions.append(instruction)

    rewrite = FenceRewrite(
        program=program,  # placeholder until the new image is built
        to_new=to_new,
        fence_addresses=tuple(fence_addresses),
        fence_for=fence_for,
        old_end=program.end_address,
        new_end=(program.base_address
                 + len(new_instructions) * INSTRUCTION_BYTES),
    )

    def remap_value(value: int) -> int:
        """Remap only values the label table declares to be code."""
        if value in label_addresses:
            return rewrite.remap_address(value)
        return value

    rewritten: List[Instruction] = []
    for instruction in new_instructions:
        if instruction.is_branch and not instruction.is_indirect:
            instruction = replace(
                instruction, target=rewrite.remap_address(instruction.target)
            )
        elif instruction.op is Opcode.LI:
            instruction = replace(instruction,
                                  imm=remap_value(instruction.imm))
        rewritten.append(instruction)

    entry_point = program.entry_point
    rewrite.program = Program(
        instructions=rewritten,
        base_address=program.base_address,
        labels={name: rewrite.remap_address(address)
                for name, address in program.labels.items()},
        initial_memory={address: remap_value(value)
                        for address, value in program.initial_memory.items()},
        entry_point=(rewrite.remap_address(entry_point)
                     if entry_point is not None else None),
    )
    return rewrite


class InstructionMemory:
    """Fetch-side view of a program (or several disjoint programs)."""

    def __init__(self, *programs: Program) -> None:
        self._map: Dict[int, Instruction] = {}
        self._programs: List[Program] = []
        for program in programs:
            self.add(program)

    def add(self, program: Program) -> None:
        for address, instruction in program.iter_addressed():
            if address in self._map:
                raise SimulationError(
                    f"instruction address overlap at {address:#x}"
                )
            self._map[address] = instruction
        self._programs.append(program)

    def fetch(self, address: int) -> Instruction:
        """Instruction at ``address``; unmapped addresses decode as NOP."""
        return self._map.get(address, _NOP)

    def is_mapped(self, address: int) -> bool:
        return address in self._map

    @property
    def programs(self) -> List[Program]:
        return list(self._programs)

    def initial_memory(self) -> Dict[int, int]:
        """Union of all programs' initial data images."""
        image: Dict[int, int] = {}
        for program in self._programs:
            image.update(program.initial_memory)
        return image
