"""Program container and instruction memory.

A :class:`Program` is a list of instructions laid out at a base address
plus an initial data image (word address -> 64-bit value).  The
:class:`InstructionMemory` view is what the fetch stage reads; fetches
from unmapped addresses decode as ``NOP`` so that wrong-path fetch can
run ahead harmlessly until the mispredicted branch squashes it, the way
real front ends fetch garbage past a misprediction.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import SimulationError
from .instructions import INSTRUCTION_BYTES, WORD_BYTES, Instruction, Opcode

_NOP = Instruction(Opcode.NOP)


@dataclass
class Program:
    """A fully resolved program image."""

    instructions: List[Instruction]
    base_address: int = 0x1000
    labels: Dict[str, int] = field(default_factory=dict)
    initial_memory: Dict[int, int] = field(default_factory=dict)
    entry_point: Optional[int] = None

    def __post_init__(self) -> None:
        if self.base_address % INSTRUCTION_BYTES != 0:
            raise SimulationError("program base address must be aligned")
        if self.entry_point is None:
            self.entry_point = self.base_address
        for address in self.initial_memory:
            if address % WORD_BYTES != 0:
                raise SimulationError(
                    f"initial memory address {address:#x} is not word aligned"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def address_of(self, index: int) -> int:
        """Instruction address of the ``index``-th instruction."""
        return self.base_address + index * INSTRUCTION_BYTES

    @property
    def end_address(self) -> int:
        return self.address_of(len(self.instructions))

    def label(self, name: str) -> int:
        """Address of a label defined by the builder/assembler."""
        try:
            return self.labels[name]
        except KeyError:
            raise SimulationError(f"unknown label {name!r}") from None

    def instruction_at(self, address: int) -> Optional[Instruction]:
        """The instruction at ``address`` or ``None`` if unmapped."""
        offset = address - self.base_address
        if offset < 0 or offset % INSTRUCTION_BYTES != 0:
            return None
        index = offset // INSTRUCTION_BYTES
        if index >= len(self.instructions):
            return None
        return self.instructions[index]

    def iter_addressed(self) -> Iterator[Tuple[int, Instruction]]:
        for index, instruction in enumerate(self.instructions):
            yield self.address_of(index), instruction

    def listing(self) -> str:
        """Human-readable disassembly with label annotations."""
        by_address: Dict[int, List[str]] = {}
        for name, address in self.labels.items():
            by_address.setdefault(address, []).append(name)
        lines = []
        for address, instruction in self.iter_addressed():
            for name in by_address.get(address, ()):
                lines.append(f"{name}:")
            lines.append(f"  {address:#06x}  {instruction}")
        return "\n".join(lines)


class InstructionMemory:
    """Fetch-side view of a program (or several disjoint programs)."""

    def __init__(self, *programs: Program) -> None:
        self._map: Dict[int, Instruction] = {}
        self._programs: List[Program] = []
        for program in programs:
            self.add(program)

    def add(self, program: Program) -> None:
        for address, instruction in program.iter_addressed():
            if address in self._map:
                raise SimulationError(
                    f"instruction address overlap at {address:#x}"
                )
            self._map[address] = instruction
        self._programs.append(program)

    def fetch(self, address: int) -> Instruction:
        """Instruction at ``address``; unmapped addresses decode as NOP."""
        return self._map.get(address, _NOP)

    def is_mapped(self, address: int) -> bool:
        return address in self._map

    @property
    def programs(self) -> List[Program]:
        return list(self._programs)

    def initial_memory(self) -> Dict[int, int]:
        """Union of all programs' initial data images."""
        image: Dict[int, int] = {}
        for program in self._programs:
            image.update(program.initial_memory)
        return image
