"""Fluent program builder.

All gadgets, workload generators and tests construct programs through
this builder; branch targets may be label names which are resolved at
:meth:`ProgramBuilder.build` time.

Example::

    b = ProgramBuilder()
    b.li(1, 10)
    b.label("loop")
    b.addi(1, 1, -1)
    b.bne(1, 0, "loop")
    b.halt()
    program = b.build()
"""
from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from ..errors import AssemblyError
from .instructions import INSTRUCTION_BYTES, WORD_BYTES, Instruction, Opcode
from .program import Program

Target = Union[int, str]


class ProgramBuilder:
    """Builds a :class:`Program` one instruction at a time."""

    def __init__(self, base_address: int = 0x1000) -> None:
        self._base = base_address
        self._instructions: List[Tuple[Instruction, Optional[str]]] = []
        self._labels: Dict[str, int] = {}
        self._memory: Dict[int, int] = {}

    @classmethod
    def from_program(cls, program: Program) -> "ProgramBuilder":
        """A builder pre-populated with an existing program's
        instructions, labels and data image, positioned to append at
        the old end address.  Labels keep their original addresses;
        callers extending the program define new ones."""
        builder = cls(base_address=program.base_address)
        by_address: Dict[int, List[str]] = {}
        for name, address in program.labels.items():
            by_address.setdefault(address, []).append(name)
        for address, instruction in program.iter_addressed():
            for name in by_address.get(address, ()):
                builder.label(name)
            builder.raw(instruction)
        for name in by_address.get(program.end_address, ()):
            builder.label(name)
        for address, value in program.initial_memory.items():
            builder.data_word(address, value)
        return builder

    # ---- layout ---------------------------------------------------------

    @property
    def next_address(self) -> int:
        """Address the next emitted instruction will occupy."""
        return self._base + len(self._instructions) * INSTRUCTION_BYTES

    def align(self, boundary: int) -> "ProgramBuilder":
        """Pad with NOPs to the next ``boundary``-byte boundary (e.g. a
        cache line, so a timed code block fetches as one line)."""
        if boundary % INSTRUCTION_BYTES != 0:
            raise AssemblyError("alignment must be a multiple of 4")
        while self.next_address % boundary != 0:
            self.nop()
        return self

    def label(self, name: str) -> "ProgramBuilder":
        """Define ``name`` at the current address."""
        if name in self._labels:
            raise AssemblyError(f"label {name!r} defined twice")
        self._labels[name] = self.next_address
        return self

    def data_word(self, address: int, value: int) -> "ProgramBuilder":
        """Place a 64-bit word in the initial data image."""
        if address % WORD_BYTES != 0:
            raise AssemblyError(f"data address {address:#x} not word aligned")
        self._memory[address] = value & ((1 << 64) - 1)
        return self

    def data_words(self, address: int, values) -> "ProgramBuilder":
        """Place consecutive words starting at ``address``."""
        for offset, value in enumerate(values):
            self.data_word(address + offset * WORD_BYTES, value)
        return self

    def _emit(self, instruction: Instruction,
              pending_target: Optional[str] = None) -> "ProgramBuilder":
        self._instructions.append((instruction, pending_target))
        return self

    # ---- ALU -------------------------------------------------------------

    def add(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.ADD, rd=rd, rs1=rs1, rs2=rs2))

    def sub(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.SUB, rd=rd, rs1=rs1, rs2=rs2))

    def mul(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.MUL, rd=rd, rs1=rs1, rs2=rs2))

    def div(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.DIV, rd=rd, rs1=rs1, rs2=rs2))

    def and_(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.AND, rd=rd, rs1=rs1, rs2=rs2))

    def or_(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.OR, rd=rd, rs1=rs1, rs2=rs2))

    def xor(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.XOR, rd=rd, rs1=rs1, rs2=rs2))

    def shl(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.SHL, rd=rd, rs1=rs1, rs2=rs2))

    def shr(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.SHR, rd=rd, rs1=rs1, rs2=rs2))

    def addi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.ADDI, rd=rd, rs1=rs1, imm=imm))

    def andi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.ANDI, rd=rd, rs1=rs1, imm=imm))

    def xori(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.XORI, rd=rd, rs1=rs1, imm=imm))

    def shli(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.SHLI, rd=rd, rs1=rs1, imm=imm))

    def shri(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.SHRI, rd=rd, rs1=rs1, imm=imm))

    def li(self, rd: int, imm: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.LI, rd=rd, imm=imm))

    def li_label(self, rd: int, label: str) -> "ProgramBuilder":
        """Load the (resolved-at-build-time) address of a label."""
        return self._emit(Instruction(Opcode.LI, rd=rd),
                          pending_target=f"imm:{label}")

    def mov(self, rd: int, rs1: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.MOV, rd=rd, rs1=rs1))

    # ---- memory -----------------------------------------------------------

    def load(self, rd: int, rs1: int, imm: int = 0,
             note: str = "") -> "ProgramBuilder":
        return self._emit(
            Instruction(Opcode.LOAD, rd=rd, rs1=rs1, imm=imm, note=note)
        )

    def store(self, rs2: int, rs1: int, imm: int = 0,
              note: str = "") -> "ProgramBuilder":
        return self._emit(
            Instruction(Opcode.STORE, rs1=rs1, rs2=rs2, imm=imm, note=note)
        )

    def clflush(self, rs1: int, imm: int = 0) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.CLFLUSH, rs1=rs1, imm=imm))

    # ---- control ------------------------------------------------------------

    def _branch(self, op: Opcode, rs1: int, rs2: int,
                target: Target) -> "ProgramBuilder":
        if isinstance(target, str):
            return self._emit(
                Instruction(op, rs1=rs1, rs2=rs2), pending_target=target
            )
        return self._emit(Instruction(op, rs1=rs1, rs2=rs2, target=target))

    def beq(self, rs1: int, rs2: int, target: Target) -> "ProgramBuilder":
        return self._branch(Opcode.BEQ, rs1, rs2, target)

    def bne(self, rs1: int, rs2: int, target: Target) -> "ProgramBuilder":
        return self._branch(Opcode.BNE, rs1, rs2, target)

    def blt(self, rs1: int, rs2: int, target: Target) -> "ProgramBuilder":
        return self._branch(Opcode.BLT, rs1, rs2, target)

    def bge(self, rs1: int, rs2: int, target: Target) -> "ProgramBuilder":
        return self._branch(Opcode.BGE, rs1, rs2, target)

    def jmp(self, target: Target) -> "ProgramBuilder":
        if isinstance(target, str):
            return self._emit(Instruction(Opcode.JMP), pending_target=target)
        return self._emit(Instruction(Opcode.JMP, target=target))

    def jmpi(self, rs1: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.JMPI, rs1=rs1))

    def call(self, target: Target, rd: int = 31) -> "ProgramBuilder":
        """Call: jump to ``target`` and write the return address (the
        next instruction) into ``rd`` (the link register, default r31).
        Fetch pushes the return address onto the RAS."""
        if isinstance(target, str):
            return self._emit(Instruction(Opcode.CALL, rd=rd),
                              pending_target=target)
        return self._emit(Instruction(Opcode.CALL, rd=rd, target=target))

    def ret(self, rs1: int = 31) -> "ProgramBuilder":
        """Return: indirect jump through ``rs1`` (default r31),
        predicted by the return-address stack rather than the BTB."""
        return self._emit(Instruction(Opcode.RET, rs1=rs1))

    # ---- misc ---------------------------------------------------------------

    def fence(self) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.FENCE))

    def rdcycle(self, rd: int) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.RDCYCLE, rd=rd))

    def nop(self, count: int = 1) -> "ProgramBuilder":
        for _ in range(count):
            self._emit(Instruction(Opcode.NOP))
        return self

    def halt(self) -> "ProgramBuilder":
        return self._emit(Instruction(Opcode.HALT))

    def raw(self, instruction: Instruction) -> "ProgramBuilder":
        """Emit a pre-built instruction verbatim."""
        return self._emit(instruction)

    # ---- finalize -------------------------------------------------------------

    def build(self, entry_point: Optional[int] = None) -> Program:
        """Resolve labels and produce an immutable :class:`Program`."""
        resolved: List[Instruction] = []
        for instruction, pending in self._instructions:
            if pending is not None:
                as_immediate = pending.startswith("imm:")
                name = pending[4:] if as_immediate else pending
                if name not in self._labels:
                    raise AssemblyError(f"undefined label {name!r}")
                address = self._labels[name]
                instruction = Instruction(
                    instruction.op,
                    rd=instruction.rd,
                    rs1=instruction.rs1,
                    rs2=instruction.rs2,
                    imm=address if as_immediate else instruction.imm,
                    target=instruction.target if as_immediate else address,
                    note=instruction.note,
                )
            resolved.append(instruction)
        return Program(
            instructions=resolved,
            base_address=self._base,
            labels=dict(self._labels),
            initial_memory=dict(self._memory),
            entry_point=entry_point,
        )
