"""Instruction set definition.

Every instruction occupies :data:`INSTRUCTION_BYTES` in the instruction
address space and operates on 64-bit registers.  Memory is word
addressed at :data:`WORD_BYTES` granularity (loads and stores align
their effective address down to a word boundary).
"""
from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Tuple

INSTRUCTION_BYTES = 4
WORD_BYTES = 8
WORD_MASK = (1 << 64) - 1


class OpClass(Enum):
    """Coarse classification used by the issue queue and the security
    dependence matrix (the paper distinguishes MEMORY and BRANCH)."""

    ALU = auto()
    LOAD = auto()
    STORE = auto()
    BRANCH = auto()
    FLUSH = auto()
    FENCE = auto()
    CSR = auto()   # RDCYCLE
    NOP = auto()
    HALT = auto()


class Opcode(Enum):
    """All opcodes understood by the core and the oracle."""

    # Register-register ALU.
    ADD = auto()
    SUB = auto()
    MUL = auto()
    DIV = auto()
    AND = auto()
    OR = auto()
    XOR = auto()
    SHL = auto()
    SHR = auto()
    # Register-immediate ALU.
    ADDI = auto()
    ANDI = auto()
    XORI = auto()
    SHLI = auto()
    SHRI = auto()
    LI = auto()
    MOV = auto()
    # Memory.
    LOAD = auto()
    STORE = auto()
    CLFLUSH = auto()
    # Control.
    BEQ = auto()
    BNE = auto()
    BLT = auto()
    BGE = auto()
    JMP = auto()
    JMPI = auto()
    CALL = auto()
    RET = auto()
    # Serializing / misc.
    FENCE = auto()
    RDCYCLE = auto()
    NOP = auto()
    HALT = auto()


_REG_REG_ALU = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR,
}
_REG_IMM_ALU = {
    Opcode.ADDI, Opcode.ANDI, Opcode.XORI, Opcode.SHLI, Opcode.SHRI,
    Opcode.MOV,
}
_COND_BRANCHES = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE}

_OPCLASS = {
    Opcode.LOAD: OpClass.LOAD,
    Opcode.STORE: OpClass.STORE,
    Opcode.CLFLUSH: OpClass.FLUSH,
    Opcode.FENCE: OpClass.FENCE,
    Opcode.RDCYCLE: OpClass.CSR,
    Opcode.NOP: OpClass.NOP,
    Opcode.HALT: OpClass.HALT,
    Opcode.JMP: OpClass.BRANCH,
    Opcode.JMPI: OpClass.BRANCH,
    Opcode.CALL: OpClass.BRANCH,
    Opcode.RET: OpClass.BRANCH,
}
for _op in _COND_BRANCHES:
    _OPCLASS[_op] = OpClass.BRANCH
for _op in _REG_REG_ALU | _REG_IMM_ALU | {Opcode.LI}:
    _OPCLASS[_op] = OpClass.ALU

# Per-opcode classification, precomputed once.  Every flag below is a
# pure function of the opcode, so instructions can cache them as plain
# attributes at construction time instead of re-deriving them through
# properties on the simulator hot path (is_serializing/is_store alone
# are consulted millions of times per run).
_HAS_DEST = {
    op: (op in _REG_REG_ALU or op in _REG_IMM_ALU
         or op in (Opcode.LI, Opcode.LOAD, Opcode.RDCYCLE, Opcode.CALL))
    for op in Opcode
}
# Source-register pattern: 0 = none, 1 = (rs1,), 2 = (rs1, rs2).
_SRC_PATTERN = {op: 0 for op in Opcode}
for _op in (_REG_IMM_ALU | {Opcode.LOAD, Opcode.CLFLUSH,
                            Opcode.JMPI, Opcode.RET}):
    _SRC_PATTERN[_op] = 1
for _op in (_REG_REG_ALU | _COND_BRANCHES | {Opcode.STORE}):
    _SRC_PATTERN[_op] = 2


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    Fields are interpreted per opcode:

    - ALU reg-reg: ``rd = rs1 OP rs2``
    - ALU reg-imm: ``rd = rs1 OP imm`` (``MOV`` copies ``rs1``)
    - ``LI``: ``rd = imm``
    - ``LOAD``: ``rd = mem[R[rs1] + imm]``
    - ``STORE``: ``mem[R[rs1] + imm] = R[rs2]``
    - ``CLFLUSH``: flush the line containing ``R[rs1] + imm``
    - conditional branches: compare ``rs1`` and ``rs2``, jump to ``target``
    - ``JMP``: jump to ``target``; ``JMPI``: jump to ``R[rs1]``
    - ``RDCYCLE``: ``rd = current cycle`` (serializing)
    """

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: int = 0
    # Optional label carried for diagnostics / disassembly.
    note: str = ""

    # ---- classification / register usage -------------------------------
    #
    # All of these are pure functions of ``op`` (plus rd/rs1/rs2 for
    # dest/sources), cached as plain instance attributes by
    # ``__post_init__`` because the simulator hot path reads them
    # millions of times per run:
    #
    # - ``opclass`` — coarse class (the paper distinguishes MEMORY and
    #   BRANCH)
    # - ``is_load`` / ``is_store`` / ``is_flush``
    # - ``is_memory`` — memory instruction in the sense of the security
    #   dependence matrix formula (loads, stores and line flushes)
    # - ``is_branch`` / ``is_conditional_branch`` / ``is_indirect`` /
    #   ``is_call`` / ``is_return``
    # - ``is_serializing`` — issues only from the head of the ROB
    #   (FENCE, RDCYCLE)
    # - ``dest`` — destination architectural register or None (R0
    #   writes are discarded by the core, but still rename for
    #   simplicity)
    # - ``sources`` — architectural source registers, in operand order
    #
    # They are intentionally NOT dataclass fields: equality, hashing,
    # repr and pickling still consider only the encoding fields above.

    def __post_init__(self) -> None:
        op = self.op
        put = object.__setattr__
        put(self, "opclass", _OPCLASS[op])
        put(self, "is_load", op is Opcode.LOAD)
        put(self, "is_store", op is Opcode.STORE)
        put(self, "is_flush", op is Opcode.CLFLUSH)
        put(self, "is_memory",
            op is Opcode.LOAD or op is Opcode.STORE
            or op is Opcode.CLFLUSH)
        put(self, "is_branch", _OPCLASS[op] is OpClass.BRANCH)
        put(self, "is_conditional_branch", op in _COND_BRANCHES)
        put(self, "is_indirect", op is Opcode.JMPI or op is Opcode.RET)
        put(self, "is_call", op is Opcode.CALL)
        put(self, "is_return", op is Opcode.RET)
        put(self, "is_serializing",
            op is Opcode.FENCE or op is Opcode.RDCYCLE)
        put(self, "dest", self.rd if _HAS_DEST[op] else None)
        pattern = _SRC_PATTERN[op]
        if pattern == 2:
            sources: Tuple[int, ...] = (self.rs1, self.rs2)
        elif pattern == 1:
            sources = (self.rs1,)
        else:
            sources = ()
        put(self, "sources", sources)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.name.lower()]
        if self.dest is not None:
            parts.append(f"r{self.rd},")
        if self.sources:
            parts.append(", ".join(f"r{r}" for r in self.sources))
        if self.op in _REG_IMM_ALU or self.op in (
            Opcode.LI, Opcode.LOAD, Opcode.STORE, Opcode.CLFLUSH
        ):
            parts.append(f"#{self.imm}")
        if self.is_branch and not self.is_indirect:
            parts.append(f"@{self.target:#x}")
        if self.note:
            parts.append(f"; {self.note}")
        return " ".join(parts)


def mask64(value: int) -> int:
    """Truncate to 64 bits (unsigned)."""
    return value & WORD_MASK


def to_signed(value: int) -> int:
    """Interpret a 64-bit pattern as a signed integer."""
    value = mask64(value)
    if value >= 1 << 63:
        return value - (1 << 64)
    return value


def evaluate_alu(op: Opcode, a: int, b: int) -> int:
    """Compute a reg-reg or reg-imm ALU result (inputs already 64-bit)."""
    if op in (Opcode.ADD, Opcode.ADDI):
        return mask64(a + b)
    if op is Opcode.SUB:
        return mask64(a - b)
    if op is Opcode.MUL:
        return mask64(a * b)
    if op is Opcode.DIV:
        if b == 0:
            return WORD_MASK
        return mask64(a // b)
    if op in (Opcode.AND, Opcode.ANDI):
        return mask64(a & b)
    if op is Opcode.OR:
        return mask64(a | b)
    if op in (Opcode.XOR, Opcode.XORI):
        return mask64(a ^ b)
    if op in (Opcode.SHL, Opcode.SHLI):
        return mask64(a << (b & 63))
    if op in (Opcode.SHR, Opcode.SHRI):
        return mask64(a) >> (b & 63)
    if op is Opcode.MOV:
        return mask64(a)
    raise ValueError(f"not an ALU opcode: {op}")


def branch_taken(op: Opcode, a: int, b: int) -> bool:
    """Evaluate a conditional branch (BLT/BGE compare signed)."""
    if op is Opcode.BEQ:
        return mask64(a) == mask64(b)
    if op is Opcode.BNE:
        return mask64(a) != mask64(b)
    if op is Opcode.BLT:
        return to_signed(a) < to_signed(b)
    if op is Opcode.BGE:
        return to_signed(a) >= to_signed(b)
    raise ValueError(f"not a conditional branch: {op}")
