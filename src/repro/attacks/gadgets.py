"""Victim gadget emitters shared by the Spectre PoCs.

Register conventions across the attack programs:

- r9-r15  : gadget scratch
- r16     : victim input ``x``
- r12/r14 : victim "call arguments" (pointer / probe base) for V2
- r19     : gadget return address (V2)
- r24-r27 : receiver scratch (see sidechannel.py)
- r28-r31 : loop control
"""
from __future__ import annotations

from ..isa.builder import ProgramBuilder
from .layout import AttackLayout

R_X = 16
R_ARG_PTR = 12
R_ARG_PROBE = 14
R_RET = 19


def emit_scaled_offset(builder: ProgramBuilder, dst: int, src: int,
                       scratch: int, stride: int) -> None:
    """``dst = src * stride`` using shifts and adds (stride is a sum of
    powers of two, e.g. the classic 4096+64 probe stride)."""
    first = True
    remaining = stride
    shift = 0
    while remaining:
        if remaining & 1:
            if first:
                builder.shli(dst, src, shift)
                first = False
            else:
                builder.shli(scratch, src, shift)
                builder.add(dst, dst, scratch)
        remaining >>= 1
        shift += 1
    if first:
        builder.li(dst, 0)


def emit_transmit(builder: ProgramBuilder, layout: AttackLayout,
                  value_reg: int) -> None:
    """The transmitting access: ``probe[value * stride]``."""
    emit_scaled_offset(builder, 14, value_reg, 11, layout.probe_stride)
    builder.li(15, layout.probe_base)
    builder.add(15, 15, 14)
    builder.load(9, 15, note="transmit")


#: Index mask used by the ``masked`` gadget variants: keeps a
#: speculative index inside MASKED_WORDS words of its array no matter
#: what speculation supplies, the software mitigation the value-set
#: refinement must recognize as provably in-bounds.
MASKED_WORDS = 8
INDEX_MASK = MASKED_WORDS - 1
OFFSET_MASK = (MASKED_WORDS - 1) * 8


def emit_bounds_check_gadget(builder: ProgramBuilder, layout: AttackLayout,
                             tag: str, fenced: bool = False,
                             masked: bool = False) -> None:
    """The Spectre V1 victim (Listing 2 of the paper)::

        if (x < array1_size)              // bounds check, slow operand
            y = probe[array1[x] * stride] // speculated past the check

    With ``fenced`` a serializing FENCE follows the bounds check — the
    software mitigation the static analyzer must recognize as safe.
    With ``masked`` the index is AND-masked before use (speculative
    load provably confined to array1's first :data:`MASKED_WORDS`
    words) — the taint pass still flags the S-Pattern, but the
    value-set refinement proves it harmless.
    """
    skip = f"v1_skip_{tag}"
    builder.li(9, layout.size_addr)
    builder.load(10, 9, note="array1_size (delinquent)")
    builder.bge(R_X, 10, skip)
    if fenced:
        builder.fence()
    if masked:
        builder.andi(11, R_X, INDEX_MASK)
        builder.shli(11, 11, 3)
    else:
        builder.shli(11, R_X, 3)
    builder.li(12, layout.array1_base)
    builder.add(12, 12, 11)
    builder.load(13, 12,
                 note=("array1[x & mask] (provably in-bounds)" if masked
                       else "array1[x] (unsafe when oob)"))
    emit_transmit(builder, layout, 13)
    builder.label(skip)


def emit_indirect_gadget_body(builder: ProgramBuilder, layout: AttackLayout,
                              tag: str, fenced: bool = False,
                              masked: bool = False) -> None:
    """The Spectre V2 gadget: dereference the pointer argument and
    transmit, then return through r19.  The victim never reaches this
    code architecturally; the attacker steers speculation here by
    poisoning the BTB.  With ``fenced`` the body opens with a FENCE, so
    speculation steered into it stalls before the secret read.  With
    ``masked`` the body only dereferences an AND-masked offset into
    array1, so even a poisoned BTB cannot make it read a secret."""
    builder.label(f"v2_gadget_{tag}")
    if fenced:
        builder.fence()
    if masked:
        builder.andi(13, R_ARG_PTR, OFFSET_MASK)
        builder.li(11, layout.array1_base)
        builder.add(13, 11, 13)
        builder.load(13, 13, note="masked in-bounds read")
    else:
        builder.load(13, R_ARG_PTR, note="attacker-pointed secret read")
    emit_scaled_offset(builder, 15, 13, 11, layout.probe_stride)
    builder.add(15, R_ARG_PROBE, 15)
    builder.load(9, 15, note="transmit")
    builder.jmpi(R_RET)


def emit_store_bypass_gadget(builder: ProgramBuilder, layout: AttackLayout,
                             tag: str, ptr_addr: int,
                             fenced: bool = False,
                             masked: bool = False) -> None:
    """The Spectre V4 victim (Listing 1 of the paper)::

        *p = 0;            // sanitizing store, address p is delinquent
        y = probe[ mem[X] * stride ]   // load bypasses the store

    ``ptr_addr`` holds the (flushed) pointer ``p`` which equals the
    secret's address X, so the speculative load reads the stale secret
    before the sanitizing store lands.  With ``fenced`` a FENCE follows
    the sanitizing store, forbidding the bypass.  With ``masked`` the
    store goes to a *constant* slot provably disjoint from the benign
    constant-address load that follows — the taint pass still flags
    the store-bypass S-Pattern, but a no-alias proof refutes it.
    """
    if masked:
        builder.li(9, layout.results_base)
        builder.store(0, 9, note="sanitizing store, constant address")
        if fenced:
            builder.fence()
        builder.li(12, layout.array1_base)
        builder.load(13, 12, note="benign reload (cannot alias the store)")
        emit_transmit(builder, layout, 13)
        return
    builder.li(9, ptr_addr)
    builder.load(10, 9, note="pointer p (delinquent)")
    builder.store(0, 10, note="sanitizing store, unknown address")
    if fenced:
        builder.fence()
    builder.li(12, layout.secret_addr)
    builder.load(13, 12, note="bypassing load (reads stale secret)")
    emit_transmit(builder, layout, 13)
