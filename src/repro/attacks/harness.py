"""Attack runner: simulate an attack under a protection mode and judge
whether the secret leaked."""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.policy import SecurityConfig
from ..params import MachineParams, paper_config
from ..pipeline.processor import Processor
from ..pipeline.report import SimReport
from .common import AttackProgram


@dataclass
class AttackResult:
    """Outcome of one attack simulation."""

    name: str
    mode: str  # defense name (legacy field name kept for compatibility)
    secret: int
    recovered: Optional[int]
    leaked: bool
    gap: float
    timings: List[int]
    report: SimReport

    @property
    def success(self) -> bool:
        """The attack worked: the channel showed a clear signal *and*
        it identified the right value."""
        return self.leaked and self.recovered == self.secret

    def render(self) -> str:
        verdict = "LEAKED" if self.success else (
            "noisy-signal" if self.leaked else "no-leak"
        )
        return (
            f"{self.name} under {self.mode}: {verdict} "
            f"(secret={self.secret} recovered={self.recovered} "
            f"gap={self.gap:.1f} cycles)"
        )


def run_attack(
    attack: AttackProgram,
    machine: Optional[MachineParams] = None,
    security: Optional[SecurityConfig] = None,
    max_cycles: int = 3_000_000,
) -> AttackResult:
    """Run ``attack`` once and decode the side channel.

    Note: attacks carry a stateful page table - build a fresh
    :class:`AttackProgram` for every run.
    """
    machine = machine if machine is not None else paper_config()
    security = security if security is not None else SecurityConfig.origin()
    cpu = Processor(
        attack.program,
        machine=machine,
        security=security,
        page_table=attack.page_table,
    )
    report = cpu.run(max_cycles=max_cycles)
    timings = [
        cpu.read_vword(attack.layout.result_addr(value))
        for value in range(attack.layout.n_values)
    ]
    verdict = attack.channel.decode(timings, exclude=attack.exclude)
    return AttackResult(
        name=attack.name,
        mode=security.defense_name,
        secret=attack.layout.secret_value,
        recovered=verdict.recovered,
        leaked=verdict.leaked,
        gap=verdict.gap,
        timings=timings,
        report=report,
    )
