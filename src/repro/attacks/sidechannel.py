"""Cache side-channel receivers.

Each :class:`Channel` contributes three pieces to an attack program:

- ``emit_reset`` - code run *before* the victim trigger on every
  iteration: put the channel into its known state (flush / evict /
  prime) and open the speculation window (make the victim's bounds
  variable a delinquent access).
- ``emit_measure`` - code run once after the main loop: time the
  channel state and store one timing word per candidate value.
- ``decode`` - interpret the timing words into a recovered value and
  a leak verdict.

All timing in the simulated programs uses the serializing ``RDCYCLE``
instruction, exactly like ``rdtscp``-based real receivers.
"""
from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..isa.builder import ProgramBuilder
from ..memory.tlb import PageTable
from ..params import MachineParams
from .evictset import EvictionAllocator
from .layout import AttackLayout

# Scratch registers reserved for receivers (victim gadgets use r9-r19,
# loop control uses r28-r31).
_R_ADDR = 24
_R_T0 = 25
_R_VAL = 26
_R_T1 = 27


@dataclass(frozen=True)
class ChannelVerdict:
    """Decoded result of one side-channel measurement."""

    recovered: Optional[int]
    leaked: bool
    gap: float
    timings: List[int]


_ILINE = 64


def _timed_load(builder: ProgramBuilder, vaddr: int,
                result_addr: int) -> None:
    """rdcycle / load / rdcycle / store-delta.

    The block is line-aligned so its cold instruction-fetch miss is
    paid *before* the first rdcycle and never lands inside the timed
    window (real receivers keep the timed code resident the same way).
    """
    builder.align(_ILINE)
    builder.li(_R_ADDR, vaddr)
    builder.rdcycle(_R_T0)
    builder.load(_R_VAL, _R_ADDR)
    builder.rdcycle(_R_T1)
    builder.sub(_R_T1, _R_T1, _R_T0)
    builder.li(_R_ADDR, result_addr)
    builder.store(_R_T1, _R_ADDR)


def _timed_load_group(builder: ProgramBuilder, vaddrs: List[int],
                      result_addr: int) -> None:
    """Time a group of loads with a single rdcycle pair (the group must
    fit one instruction line - 4 loads plus bookkeeping does)."""
    builder.align(_ILINE)
    builder.rdcycle(_R_T0)
    for vaddr in vaddrs:
        builder.li(_R_ADDR, vaddr)
        builder.load(_R_VAL, _R_ADDR)
    builder.rdcycle(_R_T1)
    builder.sub(_R_T1, _R_T1, _R_T0)
    builder.li(_R_ADDR, result_addr)
    builder.store(_R_T1, _R_ADDR)


class Channel:
    """Base class: a cache side-channel receiver."""

    #: Whether the channel relies on pages shared with the victim.
    requires_shared_probe = True
    #: True when a *larger* timing marks the leaked candidate.
    slow_is_hit = False
    #: Minimum (signal - median) gap, in cycles, to call a leak.
    gap_threshold = 20.0

    name = "abstract"

    def prepare(self, layout: AttackLayout, page_table: PageTable,
                machine: MachineParams) -> None:
        """Pre-compute whatever the emitters need (eviction sets)."""

    def emit_reset(self, builder: ProgramBuilder,
                   layout: AttackLayout) -> None:
        raise NotImplementedError

    def emit_measure(self, builder: ProgramBuilder,
                     layout: AttackLayout) -> None:
        raise NotImplementedError

    # ---- decoding -----------------------------------------------------------

    def decode(self, timings: List[int],
               exclude: frozenset = frozenset()) -> ChannelVerdict:
        """Pick the candidate whose timing stands out on the hit side
        of the distribution and judge whether it stands out enough.

        ``exclude`` names candidates known to be polluted by the attack
        mechanics (e.g. the re-executed sanitized value in Spectre V4)
        which are ignored when searching for the signal.
        """
        if not timings:
            return ChannelVerdict(None, False, 0.0, [])
        candidates = [v for v in range(len(timings)) if v not in exclude]
        if not candidates:
            return ChannelVerdict(None, False, 0.0, list(timings))
        median = statistics.median(timings[v] for v in candidates)
        if self.slow_is_hit:
            best = max(candidates, key=lambda v: timings[v])
            gap = timings[best] - median
        else:
            best = min(candidates, key=lambda v: timings[v])
            gap = median - timings[best]
        leaked = gap >= self.gap_threshold
        return ChannelVerdict(best if leaked else None, leaked, gap,
                              list(timings))


class FlushReloadChannel(Channel):
    """Flush+Reload over shared probe pages (the classic receiver)."""

    name = "flush+reload"
    requires_shared_probe = True
    slow_is_hit = False
    gap_threshold = 30.0

    def emit_reset(self, builder: ProgramBuilder,
                   layout: AttackLayout) -> None:
        for value in range(layout.n_values):
            builder.li(_R_ADDR, layout.attacker_probe_line(value))
            builder.clflush(_R_ADDR)
        builder.li(_R_ADDR, layout.size_addr)
        builder.clflush(_R_ADDR)
        builder.fence()  # order the flushes before the victim runs

    def emit_measure(self, builder: ProgramBuilder,
                     layout: AttackLayout) -> None:
        for value in range(layout.n_values):
            _timed_load(builder, layout.attacker_probe_line(value),
                        layout.result_addr(value))


class FlushFlushChannel(Channel):
    """Flush+Flush: time CLFLUSH itself (present lines flush slower)."""

    name = "flush+flush"
    requires_shared_probe = True
    slow_is_hit = True
    gap_threshold = 10.0

    def emit_reset(self, builder: ProgramBuilder,
                   layout: AttackLayout) -> None:
        for value in range(layout.n_values):
            builder.li(_R_ADDR, layout.attacker_probe_line(value))
            builder.clflush(_R_ADDR)
        builder.li(_R_ADDR, layout.size_addr)
        builder.clflush(_R_ADDR)
        builder.fence()  # order the flushes before the victim runs

    def emit_measure(self, builder: ProgramBuilder,
                     layout: AttackLayout) -> None:
        for value in range(layout.n_values):
            builder.align(64)
            builder.li(_R_ADDR, layout.attacker_probe_line(value))
            builder.rdcycle(_R_T0)
            builder.clflush(_R_ADDR)
            builder.rdcycle(_R_T1)
            builder.sub(_R_T1, _R_T1, _R_T0)
            builder.li(_R_ADDR, layout.result_addr(value))
            builder.store(_R_T1, _R_ADDR)


class EvictReloadChannel(Channel):
    """Evict+Reload: like Flush+Reload but evicts via L3 eviction sets
    (inclusive back-invalidation empties L1/L2 too)."""

    name = "evict+reload"
    requires_shared_probe = True
    slow_is_hit = False
    gap_threshold = 30.0

    def __init__(self) -> None:
        self._evict_sets: Dict[int, List[int]] = {}
        self._size_evict: List[int] = []

    def prepare(self, layout: AttackLayout, page_table: PageTable,
                machine: MachineParams) -> None:
        allocator = EvictionAllocator(page_table, layout.evict_region_base)
        l3 = machine.memory.l3
        for value in range(layout.n_values):
            self._evict_sets[value] = allocator.eviction_set_for(
                layout.probe_line(value), l3
            )
        self._size_evict = allocator.eviction_set_for(layout.size_addr, l3)

    def emit_reset(self, builder: ProgramBuilder,
                   layout: AttackLayout) -> None:
        for value in range(layout.n_values):
            for vaddr in self._evict_sets[value]:
                builder.li(_R_ADDR, vaddr)
                builder.load(_R_VAL, _R_ADDR)
        for vaddr in self._size_evict:
            builder.li(_R_ADDR, vaddr)
            builder.load(_R_VAL, _R_ADDR)
        builder.fence()  # order the evictions before the victim runs

    def emit_measure(self, builder: ProgramBuilder,
                     layout: AttackLayout) -> None:
        for value in range(layout.n_values):
            _timed_load(builder, layout.attacker_probe_line(value),
                        layout.result_addr(value))


class PrimeProbeChannel(Channel):
    """Prime+Probe on the L1D: prime each monitored set with attacker
    lines, trigger, then time the re-loads of the primed lines (an
    evicted line re-loads slower).  Works with or without shared
    transmit pages; pair it with a same-page layout for the
    "no shared data" scenario of Table IV."""

    name = "prime+probe"
    requires_shared_probe = False
    slow_is_hit = True
    gap_threshold = 5.0

    def __init__(self) -> None:
        self._prime_sets: Dict[int, List[int]] = {}
        self._size_evict: List[int] = []

    def prepare(self, layout: AttackLayout, page_table: PageTable,
                machine: MachineParams) -> None:
        allocator = EvictionAllocator(page_table, layout.evict_region_base)
        l1d = machine.memory.l1d
        for value in range(layout.n_values):
            self._prime_sets[value] = allocator.eviction_set_for(
                layout.probe_line(value), l1d, extra_ways=0
            )
        self._size_evict = allocator.eviction_set_for(
            layout.size_addr, machine.memory.l3
        )

    def emit_reset(self, builder: ProgramBuilder,
                   layout: AttackLayout) -> None:
        # Evict the bounds variable (window) ...
        for vaddr in self._size_evict:
            builder.li(_R_ADDR, vaddr)
            builder.load(_R_VAL, _R_ADDR)
        # ... then prime every monitored L1 set.
        for value in range(layout.n_values):
            for vaddr in self._prime_sets[value]:
                builder.li(_R_ADDR, vaddr)
                builder.load(_R_VAL, _R_ADDR)
        builder.fence()  # order the priming before the victim runs

    def emit_measure(self, builder: ProgramBuilder,
                     layout: AttackLayout) -> None:
        for value in range(layout.n_values):
            _timed_load_group(builder, self._prime_sets[value],
                              layout.result_addr(value))


class EvictTimeChannel(Channel):
    """Evict+Time without shared pages: evict every candidate line,
    trigger, then time a victim utility that architecturally touches
    its own transmit lines - a speculatively refilled line makes that
    (timed) victim access fast."""

    name = "evict+time"
    requires_shared_probe = False
    slow_is_hit = False
    gap_threshold = 30.0

    def __init__(self) -> None:
        self._evict_sets: Dict[int, List[int]] = {}
        self._size_evict: List[int] = []

    def prepare(self, layout: AttackLayout, page_table: PageTable,
                machine: MachineParams) -> None:
        allocator = EvictionAllocator(page_table, layout.evict_region_base)
        l3 = machine.memory.l3
        for value in range(layout.n_values):
            self._evict_sets[value] = allocator.eviction_set_for(
                layout.probe_line(value), l3
            )
        self._size_evict = allocator.eviction_set_for(layout.size_addr, l3)

    def emit_reset(self, builder: ProgramBuilder,
                   layout: AttackLayout) -> None:
        for value in range(layout.n_values):
            for vaddr in self._evict_sets[value]:
                builder.li(_R_ADDR, vaddr)
                builder.load(_R_VAL, _R_ADDR)
        for vaddr in self._size_evict:
            builder.li(_R_ADDR, vaddr)
            builder.load(_R_VAL, _R_ADDR)
        builder.fence()  # order the evictions before the victim runs

    def emit_measure(self, builder: ProgramBuilder,
                     layout: AttackLayout) -> None:
        # The timed accesses use the *victim's* own addresses: the
        # attacker merely times the victim utility call.
        for value in range(layout.n_values):
            _timed_load(builder, layout.probe_line(value),
                        layout.result_addr(value))


ALL_CHANNELS = (
    FlushReloadChannel,
    FlushFlushChannel,
    EvictReloadChannel,
    PrimeProbeChannel,
    EvictTimeChannel,
)
