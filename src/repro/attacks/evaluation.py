"""Statistical attack evaluation: leak accuracy across secrets.

A single PoC run shows one secret leaking; a credible security claim
needs the sweep: on the unprotected core the channel must recover
*every* secret value (accuracy ~1.0), and under a defense it must
recover *none* (accuracy ~0.0, and ideally no spurious "leak" verdicts
either).  This module runs that sweep and summarizes it.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from ..core.policy import SecurityConfig
from ..params import MachineParams, paper_config
from .common import AttackProgram
from .harness import AttackResult, run_attack
from .layout import AttackLayout

#: Builder signature: layout -> AttackProgram.
AttackFactory = Callable[[AttackLayout], AttackProgram]


@dataclass
class SweepResult:
    """Outcome of one attack swept over many secret values."""

    name: str
    mode: str
    results: List[AttackResult] = field(default_factory=list)

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def correct(self) -> int:
        return sum(1 for r in self.results if r.success)

    @property
    def accuracy(self) -> float:
        """Fraction of trials where the exact secret was recovered."""
        if not self.results:
            return 0.0
        return self.correct / self.trials

    @property
    def false_leaks(self) -> int:
        """Trials where the channel claimed a leak but named the wrong
        value (noise misread as signal)."""
        return sum(
            1 for r in self.results if r.leaked and r.recovered != r.secret
        )

    def render(self) -> str:
        return (
            f"{self.name} under {self.mode}: "
            f"{self.correct}/{self.trials} secrets recovered "
            f"(accuracy {self.accuracy:.0%}, "
            f"false leaks {self.false_leaks})"
        )


def sweep_attack(
    factory: AttackFactory,
    security: SecurityConfig,
    secrets: Optional[Iterable[int]] = None,
    machine: Optional[MachineParams] = None,
    n_values: int = 16,
    same_page: bool = False,
) -> SweepResult:
    """Run ``factory`` once per secret value and tally recoveries.

    ``factory`` receives a fresh :class:`AttackLayout` per trial (page
    tables are stateful).  ``secrets`` defaults to every candidate
    except 0 (candidate 0 doubles as the training/benign value).
    """
    machine = machine if machine is not None else paper_config()
    if secrets is None:
        secrets = range(1, n_values)
    sweep: Optional[SweepResult] = None
    for secret in secrets:
        if same_page:
            layout = AttackLayout.same_page(
                n_values=n_values, secret_value=secret)
        else:
            layout = AttackLayout(n_values=n_values, secret_value=secret)
        attack = factory(layout)
        result = run_attack(attack, machine=machine, security=security)
        if sweep is None:
            sweep = SweepResult(name=attack.name, mode=result.mode)
        sweep.results.append(result)
    assert sweep is not None, "sweep needs at least one secret"
    return sweep
