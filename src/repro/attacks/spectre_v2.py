"""Spectre V2 (branch target injection) proof of concept.

The victim ends with an indirect jump through a function pointer.  The
attacker first executes its *own* indirect jump - placed at an address
whose tag-less BTB slot aliases the victim's jump - with the gadget's
address as the target, poisoning the shared BTB entry.  The victim's
function pointer is then flushed, so its indirect jump waits ~DRAM
latency while the front end speculates into the gadget, which
dereferences the attacker-chosen pointer argument and transmits.
"""
from __future__ import annotations

from typing import Optional

from ..isa.instructions import INSTRUCTION_BYTES
from ..params import MachineParams
from .common import (
    AttackProgram,
    default_channel,
    default_machine,
    emit_prewarm,
    make_builder,
)
from .gadgets import R_ARG_PROBE, R_ARG_PTR, R_RET, emit_indirect_gadget_body
from .layout import AttackLayout
from .sidechannel import Channel

_R_TMP = 24


def build_spectre_v2(
    channel: Optional[Channel] = None,
    layout: Optional[AttackLayout] = None,
    machine: Optional[MachineParams] = None,
) -> AttackProgram:
    """Assemble a Spectre V2 attack with the given receiver/layout."""
    channel = default_channel(channel)
    layout = layout if layout is not None else AttackLayout()
    machine = default_machine(machine)
    btb_entries = machine.core.btb_entries
    page_table = layout.build_page_table(
        shared_probe=channel.requires_shared_probe
    )
    channel.prepare(layout, page_table, machine)

    builder = make_builder(layout)
    emit_prewarm(builder, layout)

    # Install the benign target into the victim's function pointer.
    builder.li_label(_R_TMP, "v2_benign")
    builder.li(_R_TMP + 1, layout.fnptr_addr)
    builder.store(_R_TMP, _R_TMP + 1)
    builder.li_label(20, "v2_gadget_main")

    # ---- BTB poisoning: attacker's aliasing indirect jump -----------------
    builder.li(R_ARG_PTR, layout.array1_base)   # benign pointer
    builder.li(R_ARG_PROBE, layout.probe_base)
    builder.li(30, layout.n_train)
    builder.label("v2_train_loop")
    builder.li_label(R_RET, "v2_train_ret")
    trainer_jmpi_pc = builder.next_address
    builder.jmpi(20)                            # architecturally runs gadget
    builder.label("v2_train_ret")
    builder.addi(30, 30, -1)
    builder.bne(30, 0, "v2_train_loop")

    # ---- channel reset + flush the function pointer ------------------------
    channel.emit_reset(builder, layout)
    builder.li(_R_TMP, layout.fnptr_addr)
    builder.clflush(_R_TMP)
    builder.fence()

    # ---- victim: indirect call with attacker-influenced arguments ----------
    builder.li(R_ARG_PTR, layout.secret_addr)   # "call argument"
    builder.li(R_ARG_PROBE, layout.probe_base)
    builder.li_label(R_RET, "v2_benign")
    # Pad so the victim's jump aliases the trainer's BTB slot.  The
    # padding sits *before* the delinquent load so the fetch front end
    # has already crossed it (and warmed its I-cache lines) by the
    # time the speculation window opens.
    alias_bytes = btb_entries * INSTRUCTION_BYTES
    jmpi_offset = 2 * INSTRUCTION_BYTES         # li + load precede jmpi
    while (builder.next_address + jmpi_offset
           - trainer_jmpi_pc) % alias_bytes != 0:
        builder.nop()
    builder.li(9, layout.fnptr_addr)
    builder.load(10, 9, note="function pointer (delinquent)")
    builder.jmpi(10)                            # speculates into the gadget
    builder.label("v2_benign")

    # ---- measurement, then the gadget body (never reached
    # architecturally by the victim; placed after HALT) ----------------------
    channel.emit_measure(builder, layout)
    builder.halt()
    emit_indirect_gadget_body(builder, layout, "main")
    return AttackProgram(
        name=f"spectre-v2/{channel.name}",
        program=builder.build(),
        page_table=page_table,
        layout=layout,
        channel=channel,
    )
