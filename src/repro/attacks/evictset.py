"""Eviction-set construction.

Caches are physically indexed, so an eviction set is built from the
attacker's own pages whose *physical* addresses fall into the target
set.  The threat model grants the attacker knowledge of the address
layout; here that means the page table is consulted while generating
the attack program (the simulated code itself only ever uses plain
virtual addresses).
"""
from __future__ import annotations

from typing import List

from ..errors import SimulationError
from ..memory.tlb import PageTable
from ..params import CacheParams

LINE = 64


def cache_set_of(paddr: int, cache: CacheParams) -> int:
    """Set index of a physical address in ``cache``."""
    return (paddr >> (cache.line_bytes.bit_length() - 1)) \
        & (cache.num_sets - 1)


class EvictionAllocator:
    """Allocates attacker pages and carves out eviction addresses.

    Pages are mapped eagerly from ``region_base`` upward; for each
    requested target set, the allocator finds (mapping more pages as
    needed) virtual lines whose physical translation lands in that set.
    """

    def __init__(self, page_table: PageTable, region_base: int) -> None:
        self.page_table = page_table
        self.region_base = region_base
        self._page_bytes = page_table.page_bytes
        self._next_page_index = 0

    def _map_next_page(self) -> int:
        """Map one more attacker page; returns its virtual base."""
        vaddr = self.region_base + self._next_page_index * self._page_bytes
        self._next_page_index += 1
        vpn = vaddr // self._page_bytes
        if self.page_table.lookup(vpn) is None:
            self.page_table.map_page(vpn)
        return vaddr

    def addresses_for_set(self, target_set: int, cache: CacheParams,
                          count: int, max_pages: int = 4096) -> List[int]:
        """Virtual addresses of ``count`` distinct attacker lines whose
        physical addresses map to ``target_set`` of ``cache``."""
        lines_per_page = self._page_bytes // cache.line_bytes
        offset_mask = lines_per_page - 1
        want_offset_bits = target_set & offset_mask
        found: List[int] = []
        pages_tried = 0
        page_index = 0
        while len(found) < count:
            if page_index >= self._next_page_index:
                if pages_tried >= max_pages:
                    raise SimulationError(
                        f"could not build eviction set for set {target_set}"
                    )
                self._map_next_page()
                pages_tried += 1
            page_vaddr = (self.region_base
                          + page_index * self._page_bytes)
            page_index += 1
            candidate = page_vaddr \
                + want_offset_bits * cache.line_bytes
            paddr = self.page_table.physical_address(candidate)
            if cache_set_of(paddr, cache) == target_set:
                found.append(candidate)
        return found

    def eviction_set_for(self, target_vaddr: int, cache: CacheParams,
                         extra_ways: int = 1) -> List[int]:
        """Eviction set covering the cache set of ``target_vaddr``:
        ``ways + extra_ways`` attacker lines in the same set."""
        target_paddr = self.page_table.physical_address(target_vaddr)
        target_set = cache_set_of(target_paddr, cache)
        return self.addresses_for_set(
            target_set, cache, cache.ways + extra_ways
        )
