"""Spectre proof-of-concept attacks and cache side-channel receivers.

Each attack is a complete simulated program (trainer + victim gadget +
side-channel receiver) plus a pre-constructed page table, following the
paper's threat model: the attacker runs on the same machine, knows the
victim's layout, and - in the *shared* scenarios - shares read-only
pages with the victim.

The harness runs an attack under a chosen protection mode and reports
whether the secret was recovered through the side channel.
"""
from .layout import AttackLayout
from .sidechannel import (
    Channel,
    EvictReloadChannel,
    EvictTimeChannel,
    FlushFlushChannel,
    FlushReloadChannel,
    PrimeProbeChannel,
)
from .harness import AttackResult, run_attack
from .evaluation import SweepResult, sweep_attack
from .spectre_v1 import build_spectre_v1
from .spectre_v2 import build_spectre_v2
from .spectre_v4 import build_spectre_v4
from .spectre_prime import build_spectre_prime
from .spectre_rsb import build_spectre_rsb

__all__ = [
    "AttackLayout",
    "Channel",
    "FlushReloadChannel",
    "FlushFlushChannel",
    "EvictReloadChannel",
    "PrimeProbeChannel",
    "EvictTimeChannel",
    "AttackResult",
    "run_attack",
    "SweepResult",
    "sweep_attack",
    "build_spectre_v1",
    "build_spectre_v2",
    "build_spectre_v4",
    "build_spectre_prime",
    "build_spectre_rsb",
]
