"""SpectrePrime: the bounds-check-bypass gadget observed through a
Prime+Probe receiver over shared transmit pages (Table IV's
"Prime+Probe, share data" row).

The original SpectrePrime uses coherence-invalidation timing on a
multi-core; on our single-core substrate the equivalent observable is
the L1 set-occupancy change caused by the speculative transmit fill,
which the Prime+Probe receiver measures.
"""
from __future__ import annotations

from typing import Optional

from ..params import MachineParams
from .common import (
    AttackProgram,
    default_machine,
    emit_prewarm,
    emit_training_loop,
    finish,
    make_builder,
)
from .gadgets import emit_bounds_check_gadget
from .layout import AttackLayout
from .sidechannel import PrimeProbeChannel


def build_spectre_prime(
    layout: Optional[AttackLayout] = None,
    machine: Optional[MachineParams] = None,
) -> AttackProgram:
    """Assemble a SpectrePrime attack (V1 gadget + Prime+Probe)."""
    channel = PrimeProbeChannel()
    layout = layout if layout is not None else AttackLayout()
    machine = default_machine(machine)
    page_table = layout.build_page_table(shared_probe=True)
    channel.prepare(layout, page_table, machine)

    builder = make_builder(layout)
    emit_prewarm(builder, layout)
    emit_training_loop(builder, layout, channel, emit_bounds_check_gadget)
    return finish(
        "spectre-prime/prime+probe", builder, layout, channel, page_table
    )
