"""Spectre V4 (speculative store bypass) proof of concept.

The victim sanitizes a secret location through a pointer whose value is
a delinquent load (flushed), so the sanitizing store's address stays
unknown for ~DRAM latency.  The following load to the same location
issues speculatively past the store (memory-dependence speculation),
reads the *stale secret*, and transmits it.  When the store's address
resolves, the ordering violation squashes and re-executes the load -
this time forwarding the sanitized value (candidate 0), which is why
candidate 0 is excluded from decoding.
"""
from __future__ import annotations

from typing import Optional

from ..params import MachineParams
from .common import (
    AttackProgram,
    default_channel,
    default_machine,
    emit_prewarm,
    finish,
    make_builder,
)
from .gadgets import emit_store_bypass_gadget
from .layout import AttackLayout
from .sidechannel import Channel

_R_TMP = 24


def build_spectre_v4(
    channel: Optional[Channel] = None,
    layout: Optional[AttackLayout] = None,
    machine: Optional[MachineParams] = None,
) -> AttackProgram:
    """Assemble a Spectre V4 attack with the given receiver/layout."""
    channel = default_channel(channel)
    layout = layout if layout is not None else AttackLayout()
    machine = default_machine(machine)
    page_table = layout.build_page_table(
        shared_probe=channel.requires_shared_probe
    )
    channel.prepare(layout, page_table, machine)

    builder = make_builder(layout)
    # The pointer variable p = &secret (the victim's sanitization
    # target).  Reuses the fnptr slot of the layout.
    builder.data_word(layout.fnptr_addr, layout.secret_addr)

    emit_prewarm(builder, layout)
    # Reset the channel, then flush the pointer so the store address
    # resolves late.
    channel.emit_reset(builder, layout)
    builder.li(_R_TMP, layout.fnptr_addr)
    builder.clflush(_R_TMP)
    builder.fence()
    emit_store_bypass_gadget(builder, layout, "main", layout.fnptr_addr)
    return finish(
        f"spectre-v4/{channel.name}", builder, layout, channel, page_table,
        exclude=frozenset({0}),
    )
