"""Shared plumbing for the attack builders."""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Optional

from ..isa.builder import ProgramBuilder
from ..isa.program import Program
from ..memory.tlb import PageTable
from ..params import MachineParams, paper_config
from .gadgets import R_X
from .layout import AttackLayout
from .sidechannel import Channel, FlushReloadChannel


@dataclass
class AttackProgram:
    """A ready-to-run attack: program, page table and decode recipe.

    Page tables are stateful (wrong-path accesses may map pages on
    demand), so an :class:`AttackProgram` is intended for a single
    simulation; rebuild it for each run.
    """

    name: str
    program: Program
    page_table: PageTable
    layout: AttackLayout
    channel: Channel
    #: Candidates to ignore in decode (polluted by attack mechanics).
    exclude: FrozenSet[int] = frozenset()


def make_builder(layout: AttackLayout) -> ProgramBuilder:
    """Builder pre-populated with the layout's initial data image."""
    builder = ProgramBuilder(base_address=layout.code_base)
    for address, value in sorted(layout.initial_data().items()):
        builder.data_word(address, value)
    return builder


def emit_prewarm(builder: ProgramBuilder, layout: AttackLayout) -> None:
    """Warm the secret and array1 lines (the victim recently used its
    own data - the standard Spectre assumption that keeps the
    secret-access latency inside the speculation window)."""
    builder.li(9, layout.secret_addr)
    builder.load(10, 9, note="prewarm secret")
    builder.li(9, layout.array1_base)
    builder.load(10, 9, note="prewarm array1")


def emit_training_loop(
    builder: ProgramBuilder,
    layout: AttackLayout,
    channel: Channel,
    gadget: Callable[[ProgramBuilder, AttackLayout, str], None],
) -> None:
    """The standard trigger loop: ``n_train`` in-bounds iterations to
    train the bounds branch, then one out-of-bounds trigger.  Every
    iteration first resets the side channel and re-opens the
    speculation window, so the final iteration observes only the
    malicious speculative access."""
    builder.li(30, layout.n_iterations)   # down counter
    builder.li(29, 0)                     # iteration index
    builder.label("attack_main_loop")
    # x = inputs[iteration]
    builder.shli(28, 29, 3)
    builder.li(27, layout.inputs_base)
    builder.add(28, 28, 27)
    builder.load(R_X, 28, note="victim input x")
    channel.emit_reset(builder, layout)
    gadget(builder, layout, "main")
    builder.addi(29, 29, 1)
    builder.addi(30, 30, -1)
    builder.bne(30, 0, "attack_main_loop")


def finish(
    name: str,
    builder: ProgramBuilder,
    layout: AttackLayout,
    channel: Channel,
    page_table: PageTable,
    exclude: FrozenSet[int] = frozenset(),
) -> AttackProgram:
    """Emit the measurement phase and package the attack."""
    channel.emit_measure(builder, layout)
    builder.halt()
    return AttackProgram(
        name=name,
        program=builder.build(),
        page_table=page_table,
        layout=layout,
        channel=channel,
        exclude=exclude,
    )


def default_channel(channel: Optional[Channel]) -> Channel:
    return channel if channel is not None else FlushReloadChannel()


def default_machine(machine: Optional[MachineParams]) -> MachineParams:
    return machine if machine is not None else paper_config()
