"""Spectre-RSB / ret2spec (extension beyond the paper's four variants).

The return-address stack is speculative and unrepaired: a function that
*changes* its return target (here: reloads it through a delinquent
pointer) still returns-predicts to the original call site.  The
attacker plants the leak gadget directly after the call site, so it
executes speculatively for a DRAM latency before the RET resolves to
the benign exit.

The paper's related work cites this variant ("Spectre Returns") as an
LFENCE-bypassing attack; under Conditional Speculation the RET is a
branch like any other, so the gadget's loads are security-dependent
and all three mechanisms block the leak - which this module's bench
and tests demonstrate.
"""
from __future__ import annotations

from typing import Optional

from ..params import MachineParams
from .common import (
    AttackProgram,
    default_channel,
    default_machine,
    emit_prewarm,
    make_builder,
)
from .gadgets import emit_transmit
from .layout import AttackLayout
from .sidechannel import Channel

_R_TMP = 24


def build_spectre_rsb(
    channel: Optional[Channel] = None,
    layout: Optional[AttackLayout] = None,
    machine: Optional[MachineParams] = None,
) -> AttackProgram:
    """Assemble a Spectre-RSB attack with the given receiver/layout."""
    channel = default_channel(channel)
    layout = layout if layout is not None else AttackLayout()
    machine = default_machine(machine)
    page_table = layout.build_page_table(
        shared_probe=channel.requires_shared_probe
    )
    channel.prepare(layout, page_table, machine)

    builder = make_builder(layout)
    emit_prewarm(builder, layout)

    # The victim's *actual* return target lives in memory (think: a
    # return address spilled to the stack) and points at the benign
    # exit.  Reuses the layout's pointer slot.
    builder.li_label(_R_TMP, "rsb_benign_exit")
    builder.li(_R_TMP + 1, layout.fnptr_addr)
    builder.store(_R_TMP, _R_TMP + 1)

    # Victim register state the gadget will consume speculatively.
    builder.li(12, layout.secret_addr)

    # Open the channel and make the return target delinquent.
    channel.emit_reset(builder, layout)
    builder.li(_R_TMP, layout.fnptr_addr)
    builder.clflush(_R_TMP)
    builder.fence()

    # The call; the RAS records the next address - the gadget.
    builder.call("rsb_victim_fn")
    # ---- return-site gadget (speculative-only execution) ----------------
    builder.load(13, 12, note="secret read via stale return prediction")
    emit_transmit(builder, layout, 13)
    builder.jmp("rsb_benign_exit")

    # ---- the victim function ---------------------------------------------
    builder.label("rsb_victim_fn")
    builder.li(9, layout.fnptr_addr)
    builder.load(31, 9, note="reload return target (delinquent)")
    builder.ret()

    # ---- benign exit: measurement ------------------------------------------
    builder.label("rsb_benign_exit")
    channel.emit_measure(builder, layout)
    builder.halt()
    return AttackProgram(
        name=f"spectre-rsb/{channel.name}",
        program=builder.build(),
        page_table=page_table,
        layout=layout,
        channel=channel,
    )
