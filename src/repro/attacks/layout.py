"""Shared memory layout for the attack programs.

All attacks use the same address-space conventions so the gadget and
channel emitters compose.  The layout distinguishes the *cross-page*
transmit array (one page per candidate value, the classic Spectre
probe array and the pattern TPBuf's S-Pattern targets) from the
*same-page* transmit array (one cache line per candidate inside the
secret's own page - the layout that evades the S-Pattern and defeats
TPBuf in the two non-shared scenarios of Table IV).
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import SimulationError
from ..memory.tlb import PageTable

PAGE = 4096
LINE = 64


@dataclass
class AttackLayout:
    """Address-space plan for one attack program."""

    #: Number of candidate secret values (alphabet size).
    n_values: int = 16
    #: The secret byte the attack tries to recover.
    secret_value: int = 7
    #: Training iterations before the malicious trigger.
    n_train: int = 6

    code_base: int = 0x1000
    #: Victim bounds variable (its own page; flushed/evicted to open
    #: the speculation window).
    size_addr: int = 0x8000
    #: Victim array whose out-of-bounds read reaches the secret.
    array1_base: int = 0x6000
    #: The secret word.  Placed in the last line of its page so the
    #: same-page transmit lines (offsets 0..n*64) never alias it.
    secret_addr: int = 0x10FC0
    #: Cross-page transmit array (victim mapping).
    probe_base: int = 0x100000
    #: Attacker's alias of the transmit array (shared scenarios).
    attacker_probe_base: int = 0x400000
    #: Attacker-private region used to build eviction sets.
    evict_region_base: int = 0x800000
    #: Timing results, one word per candidate.
    results_base: int = 0x80000
    #: Per-iteration victim inputs (x values).
    inputs_base: int = 0x82000
    #: Victim indirect-jump function pointer (Spectre V2).
    fnptr_addr: int = 0x84000

    #: Transmit stride.  The cross-page default is PAGE + LINE (the
    #: classic probe-array stride): each candidate gets its own page
    #: *and* a distinct line offset, so page-granular receivers
    #: (Flush+Reload) and set-granular receivers (Prime+Probe) both
    #: distinguish candidates.  The same-page layout uses LINE.
    probe_stride: int = PAGE + LINE

    def __post_init__(self) -> None:
        if not 2 <= self.n_values <= 256:
            raise SimulationError("n_values must be in [2, 256]")
        if not 0 <= self.secret_value < self.n_values:
            raise SimulationError("secret must be a valid candidate")

    # ---- derived addresses -------------------------------------------------

    @property
    def same_page_transmit(self) -> bool:
        return self.probe_stride == LINE

    @property
    def oob_index(self) -> int:
        """x such that ``array1_base + 8 * x == secret_addr``."""
        delta = self.secret_addr - self.array1_base
        if delta % 8 != 0:
            raise SimulationError("secret not word-aligned w.r.t. array1")
        return delta // 8

    @property
    def n_iterations(self) -> int:
        return self.n_train + 1

    def probe_line(self, value: int) -> int:
        """Victim-side transmit address for candidate ``value``."""
        return self.probe_base + value * self.probe_stride

    def attacker_probe_line(self, value: int) -> int:
        """Attacker-side (possibly aliased) measurement address."""
        return self.attacker_probe_base + value * self.probe_stride

    def result_addr(self, value: int) -> int:
        return self.results_base + value * 8

    def input_addr(self, iteration: int) -> int:
        return self.inputs_base + iteration * 8

    @staticmethod
    def same_page(n_values: int = 16, secret_value: int = 7,
                  **overrides) -> "AttackLayout":
        """A layout whose transmit lines live inside the secret's page
        (the S-Pattern-evading layout of the non-shared scenarios)."""
        layout = AttackLayout(
            n_values=n_values,
            secret_value=secret_value,
            probe_stride=LINE,
            **overrides,
        )
        # Transmit inside the secret page.
        secret_page = layout.secret_addr & ~(PAGE - 1)
        layout.probe_base = secret_page
        layout.attacker_probe_base = secret_page  # no alias: not shared
        if layout.n_values * LINE > layout.secret_addr - secret_page:
            raise SimulationError(
                "same-page transmit lines would overlap the secret line"
            )
        return layout

    # ---- page-table construction ------------------------------------------------

    def build_page_table(self, page_bytes: int = PAGE,
                         shared_probe: bool = True) -> PageTable:
        """Pre-map every region so PPNs are known to the code
        generators (the threat model grants the attacker knowledge of
        the layout).

        ``shared_probe`` maps the attacker's probe alias onto the same
        physical pages as the victim's transmit array (Flush+Reload
        style page sharing); the non-shared scenarios skip it.
        """
        table = PageTable(page_bytes=page_bytes)
        for base in (self.code_base, self.size_addr, self.array1_base,
                     self.secret_addr, self.results_base, self.inputs_base,
                     self.fnptr_addr):
            vpn = base // page_bytes
            if table.lookup(vpn) is None:
                table.map_page(vpn)
        # Victim transmit pages.
        for value in range(self.n_values):
            vpn = self.probe_line(value) // page_bytes
            if table.lookup(vpn) is None:
                table.map_page(vpn)
        if shared_probe and self.attacker_probe_base != self.probe_base:
            for value in range(self.n_values):
                victim_vpn = self.probe_line(value) // page_bytes
                attacker_vpn = self.attacker_probe_line(value) // page_bytes
                if table.lookup(attacker_vpn) is None:
                    table.map_shared(attacker_vpn, victim_vpn)
        return table

    def initial_data(self) -> Dict[int, int]:
        """Initial memory image: secret, bounds, benign array1 and the
        per-iteration victim inputs (in-bounds for training, the
        out-of-bounds index on the final iteration)."""
        data: Dict[int, int] = {
            self.secret_addr: self.secret_value,
            self.size_addr: 1,          # array1 has one legal element
            self.array1_base: 0,        # benign value -> candidate 0
        }
        for iteration in range(self.n_iterations):
            x = 0 if iteration < self.n_train else self.oob_index
            data[self.input_addr(iteration)] = x
        return data
