"""Spectre V1 (bounds check bypass) proof of concept.

Structure (one program, matching the paper's threat model of attacker
and victim on one machine):

1. warm the secret and array1 lines (victim recently used them);
2. training loop: ``n_train`` calls of the bounds-check gadget with an
   in-bounds ``x`` - the branch predictor learns *not taken*;
3. each iteration first resets the side channel (flush/evict/prime)
   and makes ``array1_size`` a delinquent access, opening the window;
4. the final iteration supplies the out-of-bounds ``x`` whose
   ``array1 + 8x`` aliases the secret: the check is speculated past,
   the secret is read, and ``probe[secret * stride]`` is refilled;
5. the receiver measures the channel and writes one timing word per
   candidate.
"""
from __future__ import annotations

from typing import Optional

from ..params import MachineParams
from .common import (
    AttackProgram,
    default_channel,
    default_machine,
    emit_prewarm,
    emit_training_loop,
    finish,
    make_builder,
)
from .gadgets import emit_bounds_check_gadget
from .layout import AttackLayout
from .sidechannel import Channel


def build_spectre_v1(
    channel: Optional[Channel] = None,
    layout: Optional[AttackLayout] = None,
    machine: Optional[MachineParams] = None,
) -> AttackProgram:
    """Assemble a Spectre V1 attack with the given receiver/layout."""
    channel = default_channel(channel)
    layout = layout if layout is not None else AttackLayout()
    machine = default_machine(machine)
    page_table = layout.build_page_table(
        shared_probe=channel.requires_shared_probe
    )
    channel.prepare(layout, page_table, machine)

    builder = make_builder(layout)
    emit_prewarm(builder, layout)
    emit_training_loop(builder, layout, channel, emit_bounds_check_gadget)
    return finish(
        f"spectre-v1/{channel.name}", builder, layout, channel, page_table
    )
