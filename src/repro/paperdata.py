"""The paper's published numbers, transcribed for side-by-side
comparison with measured results.

Sources (HPCA 2019 paper):

- :data:`TABLE5` — Table V "Filter Analysis" (all 22 benchmarks).
- :data:`TABLE6` — Table VI "Parameter Sensitivity Analysis"
  (A57-like / i7-like / Xeon-like overheads per benchmark).
- :data:`FIGURE5_AVERAGES` — Section VI.C average overheads.
- :data:`AREA` — Section VI.E hardware-overhead numbers.
- :data:`LRU_POLICY` — Section VII.A replacement-policy numbers.

Values are fractions (0.148 = 14.8%).  ``>99.9%`` and ``<0.1%`` are
stored as 0.999 and 0.001.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Table5Paper:
    """One row of the paper's Table V."""

    l1_hit_rate: float
    baseline_blocked: float
    cachehit_blocked: float
    spec_hit_rate: float
    tpbuf_blocked: float
    spattern_mismatch: float


#: Table V, in paper order.
TABLE5: Dict[str, Table5Paper] = {
    "astar":      Table5Paper(0.944, 0.746, 0.033, 0.904, 0.022, 0.145),
    "bwaves":     Table5Paper(0.813, 0.730, 0.056, 0.903, 0.055, 0.015),
    "bzip2":      Table5Paper(0.967, 0.778, 0.016, 0.955, 0.013, 0.050),
    "dealII":     Table5Paper(0.973, 0.587, 0.001, 0.994, 0.001, 0.155),
    "gamess":     Table5Paper(0.960, 0.750, 0.005, 0.988, 0.004, 0.108),
    "gcc":        Table5Paper(0.962, 0.791, 0.004, 0.953, 0.002, 0.188),
    "GemsFDTD":   Table5Paper(0.999, 0.791, 0.001, 0.999, 0.001, 0.002),
    "gobmk":      Table5Paper(0.953, 0.725, 0.016, 0.963, 0.002, 0.394),
    "gromacs":    Table5Paper(0.938, 0.714, 0.021, 0.948, 0.011, 0.190),
    "h264ref":    Table5Paper(0.991, 0.625, 0.003, 0.983, 0.001, 0.470),
    "hmmer":      Table5Paper(0.979, 0.654, 0.003, 0.994, 0.003, 0.021),
    "lbm":        Table5Paper(0.618, 0.659, 0.158, 0.607, 0.003, 0.862),
    "leslie3d":   Table5Paper(0.951, 0.853, 0.016, 0.965, 0.012, 0.172),
    "libquantum": Table5Paper(0.796, 0.884, 0.016, 0.952, 0.016, 0.001),
    "mcf":        Table5Paper(0.739, 0.652, 0.093, 0.751, 0.032, 0.326),
    "milc":       Table5Paper(0.662, 0.779, 0.130, 0.676, 0.092, 0.063),
    "namd":       Table5Paper(0.975, 0.774, 0.002, 0.996, 0.001, 0.319),
    "omnetpp":    Table5Paper(0.929, 0.767, 0.044, 0.782, 0.041, 0.008),
    "sjeng":      Table5Paper(0.994, 0.781, 0.001, 0.997, 0.001, 0.119),
    "soplex":     Table5Paper(0.849, 0.710, 0.033, 0.821, 0.033, 0.003),
    "sphinx3":    Table5Paper(0.979, 0.774, 0.003, 0.966, 0.002, 0.131),
    "zeusmp":     Table5Paper(0.553, 0.670, 0.150, 0.615, 0.039, 0.269),
}

#: Table V "Average" row.
TABLE5_AVERAGE = Table5Paper(0.887, 0.736, 0.036, 0.896, 0.017, 0.182)


@dataclass(frozen=True)
class Table6Paper:
    """One row of the paper's Table VI: overhead per (machine, mode)."""

    a57_baseline: float
    a57_cachehit: float
    a57_tpbuf: float
    i7_baseline: float
    i7_cachehit: float
    i7_tpbuf: float
    xeon_baseline: float
    xeon_cachehit: float
    xeon_tpbuf: float


#: Table VI, in paper order.
TABLE6: Dict[str, Table6Paper] = {
    "astar":      Table6Paper(0.460, 0.072, 0.055, 0.490, 0.098, 0.082,
                              0.538, 0.112, 0.092),
    "bwaves":     Table6Paper(0.896, 0.427, 0.418, 0.874, 0.518, 0.516,
                              0.887, 0.531, 0.525),
    "bzip2":      Table6Paper(0.433, 0.123, 0.093, 0.697, 0.210, 0.197,
                              0.858, 0.280, 0.223),
    "dealII":     Table6Paper(0.404, 0.007, 0.002, 0.180, 0.005, 0.007,
                              0.226, 0.009, 0.013),
    "gamess":     Table6Paper(0.259, 0.015, 0.014, 0.533, 0.022, 0.014,
                              0.614, 0.025, 0.017),
    "gcc":        Table6Paper(0.233, 0.026, 0.018, 0.252, 0.039, 0.027,
                              0.258, 0.044, 0.030),
    "GemsFDTD":   Table6Paper(0.326, 0.006, 0.006, 0.446, 0.005, 0.003,
                              0.531, -0.002, -0.006),
    "gobmk":      Table6Paper(0.360, 0.022, 0.012, 0.362, 0.037, 0.018,
                              0.404, 0.042, 0.020),
    "gromacs":    Table6Paper(0.437, 0.046, 0.055, 0.526, 0.078, 0.058,
                              0.554, 0.090, 0.070),
    "h264ref":    Table6Paper(0.195, 0.005, 0.001, 0.310, 0.007, 0.003,
                              0.377, 0.007, 0.003),
    "hmmer":      Table6Paper(1.094, 0.012, 0.011, 1.277, 0.017, 0.016,
                              1.560, 0.037, 0.036),
    "lbm":        Table6Paper(0.723, 0.478, 0.007, 0.744, 0.533, 0.011,
                              0.731, 0.478, 0.011),
    "leslie3d":   Table6Paper(0.456, 0.166, 0.129, 0.400, 0.216, 0.148,
                              0.380, 0.190, 0.131),
    "libquantum": Table6Paper(0.387, 0.104, 0.104, 0.255, 0.134, 0.134,
                              0.267, 0.142, 0.138),
    "mcf":        Table6Paper(0.160, 0.135, 0.036, 0.240, 0.197, 0.047,
                              0.251, 0.231, 0.050),
    "milc":       Table6Paper(0.356, 0.217, 0.104, 0.319, 0.239, 0.087,
                              0.320, 0.241, 0.101),
    "namd":       Table6Paper(0.377, 0.012, 0.006, 0.423, 0.014, 0.007,
                              0.500, 0.015, 0.008),
    "omnetpp":    Table6Paper(0.224, 0.084, 0.084, 0.525, 0.402, 0.400,
                              0.625, 0.458, 0.449),
    "sjeng":      Table6Paper(0.300, 0.004, 0.002, 0.322, 0.002, 0.002,
                              0.351, 0.003, 0.002),
    "soplex":     Table6Paper(0.026, 0.001, 0.001, 0.023, 0.002, 0.002,
                              0.031, 0.002, 0.002),
    "sphinx3":    Table6Paper(0.492, 0.042, 0.025, 0.524, 0.084, 0.053,
                              0.584, 0.088, 0.055),
    "zeusmp":     Table6Paper(0.441, 0.425, 0.144, 0.467, 0.459, 0.149,
                              0.471, 0.464, 0.150),
}

#: Table VI "Average" row.
TABLE6_AVERAGE = Table6Paper(0.411, 0.110, 0.060, 0.463, 0.151, 0.090,
                             0.514, 0.159, 0.096)

#: Section VI.C average overheads (Figure 5).
FIGURE5_AVERAGES = {
    "baseline": 0.536,
    "cache_hit": 0.128,
    "cache_hit_tpbuf": 0.068,
}

#: Section VI.C(1): branch-memory-only matrix average overhead; and the
#: astar worst case.
BRANCH_ONLY_AVERAGE = 0.230
BRANCH_ONLY_ASTAR = 0.655

#: Section VI.E hardware overhead.
AREA = {
    "matrix_mm2": 0.05,
    "matrix_vs_32kb_cache": 0.035,
    "matrix_timing_penalty": 0.014,
    "tpbuf_mm2": 0.00079,
    "tpbuf_vs_32kb_cache": 0.00055,
}

#: Section VII.A replacement-policy numbers.
LRU_POLICY = {
    "no_update_overhead": 0.0071,
    "delayed_gain_over_no_update": 0.0026,
}

#: Section VI.C prose: fraction of speculative accesses the Cache-hit
#: filter recognizes as safe.
CACHE_HIT_SAFE_FRACTION = 0.896
