"""Minimal single-gadget driver programs for the static scanner.

Each driver wraps one of the shared gadget emitters from
:mod:`repro.attacks.gadgets` in the smallest runnable program: no
training loops, no side-channel receiver — just the speculation source
and the S-Pattern (or a mitigated variant).  Every gadget comes in
three flavours:

- ``unsafe`` — the plain gadget; must be flagged *and* survive
  value-set refinement (it can really read a secret);
- ``fenced`` — serializing-FENCE mitigation; must analyze clean;
- ``masked`` — index-masking mitigation; still an S-Pattern to the
  taint pass (the precision cost of PR 1's over-approximation) but
  provably in-bounds, so value-set refinement must refute it.

They serve three masters: ``tools/scan_gadgets.py`` asserts the
flag/clean split, the cross-validation tests check static coverage of
the dynamic suspect set, and :func:`repro.analysis.verify.corpus_precision`
measures the false-positive rate before/after refinement.
"""
from __future__ import annotations

import dataclasses
import json
import os
from typing import Callable, Dict, Tuple

from ..attacks.gadgets import (
    MASKED_WORDS,
    R_ARG_PROBE,
    R_ARG_PTR,
    R_RET,
    R_X,
    emit_bounds_check_gadget,
    emit_indirect_gadget_body,
    emit_store_bypass_gadget,
    emit_transmit,
)
from ..attacks.layout import AttackLayout
from ..isa.builder import ProgramBuilder
from ..isa.program import Program

GADGET_KINDS: Tuple[str, ...] = ("v1", "v2", "v4", "rsb")

#: Mitigation flavours every corpus gadget is built in.
CORPUS_VARIANTS: Tuple[str, ...] = ("unsafe", "fenced", "masked")


def corpus_secret_words() -> Tuple[int, ...]:
    """Word addresses holding secrets in every corpus driver (the
    shared :class:`AttackLayout` secret) — passed to the value-set
    refinement so constant-address secret reads are never refuted."""
    return (AttackLayout().secret_addr,)


def _make_builder(layout: AttackLayout) -> ProgramBuilder:
    builder = ProgramBuilder(base_address=layout.code_base)
    for address, value in sorted(layout.initial_data().items()):
        builder.data_word(address, value)
    # Give array1 a full masked-access window of initialized words so
    # the region the masked variants stay inside actually exists.
    for index in range(MASKED_WORDS):
        address = layout.array1_base + index * 8
        if address not in layout.initial_data():
            builder.data_word(address, 0)
    return builder


def build_v1_gadget(fenced: bool = False, masked: bool = False) -> Program:
    """Bounds-check bypass: one in-bounds call of the V1 victim.  The
    input ``x`` is loaded from memory (like the real attack's input
    array), so its value is statically unknown — the unsafe variant
    cannot be refuted as in-bounds."""
    layout = AttackLayout()
    builder = _make_builder(layout)
    builder.li(9, layout.input_addr(0))
    builder.load(R_X, 9, note="prewarm input line")
    builder.load(R_X, 9, note="victim input x (fast hit)")
    emit_bounds_check_gadget(builder, layout, "demo",
                             fenced=fenced, masked=masked)
    builder.halt()
    return builder.build()


def build_v2_gadget(fenced: bool = False, masked: bool = False) -> Program:
    """Branch-target injection: an indirect jump plus a gadget body
    that is only reachable speculatively (it sits after HALT)."""
    layout = AttackLayout()
    builder = _make_builder(layout)
    builder.li(R_ARG_PTR, layout.secret_addr)
    builder.li(R_ARG_PROBE, layout.probe_base)
    builder.li_label(R_RET, "v2_done")
    builder.li_label(20, "v2_gadget_demo")
    builder.jmpi(20)
    builder.label("v2_done")
    builder.halt()
    emit_indirect_gadget_body(builder, layout, "demo",
                              fenced=fenced, masked=masked)
    return builder.build()


def build_v4_gadget(fenced: bool = False, masked: bool = False) -> Program:
    """Speculative store bypass: sanitizing store with a delinquent
    address followed by the stale-secret load and transmit."""
    layout = AttackLayout()
    builder = _make_builder(layout)
    builder.data_word(layout.fnptr_addr, layout.secret_addr)
    emit_store_bypass_gadget(builder, layout, "demo", layout.fnptr_addr,
                             fenced=fenced, masked=masked)
    builder.halt()
    return builder.build()


#: Word holding the rsb victim's architectural return target.  A *cold*
#: data word (never prewarmed), so the dynamic RET resolves slowly and
#: the stale RAS prediction gets a real speculation window — the same
#: role ``clflush`` plays in the full ``spectre_rsb`` attack.
RSB_RETADDR_ADDR = 0x86000


def build_rsb_gadget(fenced: bool = False, masked: bool = False) -> Program:
    """ret2spec: the victim function rewrites its return target (loaded
    from cold memory), so the RAS-predicted return speculatively
    executes the gadget planted after the call site."""
    layout = AttackLayout()
    builder = _make_builder(layout)
    builder.li(12, layout.input_addr(0) if masked else layout.secret_addr)
    builder.call("rsb_victim_demo")
    # ---- return-site gadget: executes only under the stale RAS
    # prediction, before the RET resolves to the benign exit.
    if fenced:
        builder.fence()
    if masked:
        builder.load(13, 12, note="public input read")
        builder.andi(13, 13, MASKED_WORDS - 1)
        builder.shli(13, 13, 3)
        builder.li(11, layout.array1_base)
        builder.add(13, 11, 13)
        builder.load(13, 13, note="masked in-bounds read")
    else:
        builder.load(13, 12, note="secret read via stale return prediction")
    emit_transmit(builder, layout, 13)
    builder.jmp("rsb_done")
    builder.label("rsb_victim_demo")
    builder.li(9, RSB_RETADDR_ADDR)
    builder.load(31, 9, note="return target from (cold) memory")
    builder.ret()
    builder.label("rsb_done")
    builder.halt()
    program = builder.build()
    # The return-target word holds a code label only known post-build;
    # `insert_fences` remaps label-valued data words, so the fenced
    # rewrite keeps pointing at (the fence before) `rsb_done`.
    return dataclasses.replace(
        program,
        initial_memory={**program.initial_memory,
                        RSB_RETADDR_ADDR: program.labels["rsb_done"]},
    )


GADGET_BUILDERS: Dict[str, Callable[..., Program]] = {
    "v1": build_v1_gadget,
    "v2": build_v2_gadget,
    "v4": build_v4_gadget,
    "rsb": build_rsb_gadget,
}


def build_gadget_program(kind: str, fenced: bool = False,
                         masked: bool = False) -> Program:
    """Driver program for ``kind`` (one of :data:`GADGET_KINDS`)."""
    return GADGET_BUILDERS[kind](fenced=fenced, masked=masked)


def build_corpus_variant(kind: str, variant: str) -> Program:
    """Driver for ``kind`` in one of :data:`CORPUS_VARIANTS`."""
    if variant not in CORPUS_VARIANTS:
        raise ValueError(f"unknown corpus variant {variant!r}")
    return build_gadget_program(
        kind,
        fenced=(variant == "fenced"),
        masked=(variant == "masked"),
    )


# ---------------------------------------------------------------------------
# Externally ingested gadgets (fuzz-found S-Pattern variants)
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class IngestedGadget:
    """One externally discovered gadget, stored as assembler text.

    Ingested entries *extend* the corpus: :func:`corpus_precision` and
    the precision study append them after the built-in
    ``kind × variant`` grid, so the 34-case baseline keeps its
    identities and ordering no matter how many gadgets a fuzz campaign
    adds.  ``secret_words`` defaults to the shared corpus secret when
    empty.
    """

    name: str
    source: str
    base_address: int = 0x1000
    is_gadget: bool = True
    secret_words: Tuple[int, ...] = ()
    #: Provenance, e.g. ``"fuzz-evolve:cache_hit"``.
    origin: str = ""

    def build(self) -> Program:
        from ..isa.assembler import assemble
        return assemble(self.source, base_address=self.base_address)

    def secrets(self) -> Tuple[int, ...]:
        return self.secret_words or corpus_secret_words()

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "source": self.source,
            "base_address": self.base_address,
            "is_gadget": self.is_gadget,
            "secret_words": list(self.secret_words),
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "IngestedGadget":
        secret_raw = data.get("secret_words", [])
        assert isinstance(secret_raw, list)
        return cls(
            name=str(data["name"]),
            source=str(data["source"]),
            base_address=int(data.get("base_address", 0x1000)),  # type: ignore[arg-type]
            is_gadget=bool(data.get("is_gadget", True)),
            secret_words=tuple(int(w) for w in secret_raw),
            origin=str(data.get("origin", "")),
        )


#: Registry of ingested gadgets, in registration order (name-keyed so
#: re-registration replaces rather than duplicates).
_INGESTED: Dict[str, IngestedGadget] = {}


def register_ingested_gadget(gadget: IngestedGadget) -> None:
    """Add ``gadget`` to the corpus extension (replaces same name)."""
    _INGESTED[gadget.name] = gadget


def ingested_gadgets() -> Tuple[IngestedGadget, ...]:
    """Currently registered extensions, in registration order."""
    return tuple(_INGESTED.values())


def clear_ingested_gadgets() -> None:
    """Empty the extension registry (tests and CLI resets)."""
    _INGESTED.clear()


def load_ingested_gadgets(directory: "os.PathLike[str] | str") -> int:
    """Register every ``*.json`` gadget file under ``directory``.

    Files are :meth:`IngestedGadget.to_dict` payloads.  Returns the
    number registered; a missing directory registers nothing.
    """
    if not os.path.isdir(directory):
        return 0
    count = 0
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json"):
            continue
        with open(os.path.join(directory, entry)) as handle:
            data = json.load(handle)
        assert isinstance(data, dict)
        register_ingested_gadget(IngestedGadget.from_dict(data))
        count += 1
    return count
