"""Minimal single-gadget driver programs for the static scanner.

Each driver wraps one of the shared gadget emitters from
:mod:`repro.attacks.gadgets` in the smallest runnable program: no
training loops, no side-channel receiver — just the speculation source
and the S-Pattern (or its fence-mitigated variant).  They serve two
masters:

- ``tools/scan_gadgets.py`` asserts the static analyzer flags every
  unfenced driver and passes every fenced one;
- the cross-validation tests run the same programs through the
  simulator and check static coverage of the dynamic suspect set.
"""
from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..attacks.gadgets import (
    R_ARG_PROBE,
    R_ARG_PTR,
    R_RET,
    R_X,
    emit_bounds_check_gadget,
    emit_indirect_gadget_body,
    emit_store_bypass_gadget,
    emit_transmit,
)
from ..attacks.layout import AttackLayout
from ..isa.builder import ProgramBuilder
from ..isa.program import Program

GADGET_KINDS: Tuple[str, ...] = ("v1", "v2", "v4", "rsb")


def _make_builder(layout: AttackLayout) -> ProgramBuilder:
    builder = ProgramBuilder(base_address=layout.code_base)
    for address, value in sorted(layout.initial_data().items()):
        builder.data_word(address, value)
    return builder


def build_v1_gadget(fenced: bool = False) -> Program:
    """Bounds-check bypass: one in-bounds call of the V1 victim."""
    layout = AttackLayout()
    builder = _make_builder(layout)
    builder.li(R_X, 0)
    emit_bounds_check_gadget(builder, layout, "demo", fenced=fenced)
    builder.halt()
    return builder.build()


def build_v2_gadget(fenced: bool = False) -> Program:
    """Branch-target injection: an indirect jump plus a gadget body
    that is only reachable speculatively (it sits after HALT)."""
    layout = AttackLayout()
    builder = _make_builder(layout)
    builder.li(R_ARG_PTR, layout.secret_addr)
    builder.li(R_ARG_PROBE, layout.probe_base)
    builder.li_label(R_RET, "v2_done")
    builder.li_label(20, "v2_gadget_demo")
    builder.jmpi(20)
    builder.label("v2_done")
    builder.halt()
    emit_indirect_gadget_body(builder, layout, "demo", fenced=fenced)
    return builder.build()


def build_v4_gadget(fenced: bool = False) -> Program:
    """Speculative store bypass: sanitizing store with a delinquent
    address followed by the stale-secret load and transmit."""
    layout = AttackLayout()
    builder = _make_builder(layout)
    builder.data_word(layout.fnptr_addr, layout.secret_addr)
    emit_store_bypass_gadget(builder, layout, "demo", layout.fnptr_addr,
                             fenced=fenced)
    builder.halt()
    return builder.build()


def build_rsb_gadget(fenced: bool = False) -> Program:
    """ret2spec: the victim function rewrites its return target, so the
    RAS-predicted return speculatively executes the gadget planted
    after the call site."""
    layout = AttackLayout()
    builder = _make_builder(layout)
    builder.li(12, layout.secret_addr)
    builder.call("rsb_victim_demo")
    # ---- return-site gadget: executes only under the stale RAS
    # prediction, before the RET resolves to the benign exit.
    if fenced:
        builder.fence()
    builder.load(13, 12, note="secret read via stale return prediction")
    emit_transmit(builder, layout, 13)
    builder.jmp("rsb_done")
    builder.label("rsb_victim_demo")
    builder.li_label(31, "rsb_done")
    builder.ret()
    builder.label("rsb_done")
    builder.halt()
    return builder.build()


GADGET_BUILDERS: Dict[str, Callable[[bool], Program]] = {
    "v1": build_v1_gadget,
    "v2": build_v2_gadget,
    "v4": build_v4_gadget,
    "rsb": build_rsb_gadget,
}


def build_gadget_program(kind: str, fenced: bool = False) -> Program:
    """Driver program for ``kind`` (one of :data:`GADGET_KINDS`)."""
    return GADGET_BUILDERS[kind](fenced)
