"""Basic-block control-flow graph over an assembled program.

The CFG is built directly from :class:`~repro.isa.program.Program`:
block leaders are the entry point, every direct branch/jump/call
target, every label (indirect jumps can only usefully land on code the
program names), and the instruction after any control instruction.
Unreachable blocks are kept — Spectre V2 gadget bodies are placed
after ``HALT`` and are *only* reached speculatively, so an analysis
that dropped them would miss exactly the interesting code.

Successor edges model *speculative* fetch behaviour, which is a
superset of architectural control flow:

- conditional branches: taken target and fall-through (a mispredict
  fetches either);
- ``JMP``/``CALL``: the static target (the front end always predicts
  these taken with the instruction-word target);
- ``JMPI``/``RET``: statically unknown.  The block is marked
  :attr:`BasicBlock.ends_indirect`; analyses over-approximate the
  successor set with every block in the program *plus* the
  fall-through (a cold BTB / empty RAS predicts not-taken);
- ``HALT``: no successors.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..isa.instructions import INSTRUCTION_BYTES, Instruction, Opcode
from ..isa.program import Program


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    index: int
    start: int
    #: ``(address, instruction)`` pairs in layout order.
    instructions: List[Tuple[int, Instruction]]
    #: Indices of statically-known successor blocks.
    successors: List[int] = field(default_factory=list)
    #: Indices of predecessor blocks (direct edges only).
    predecessors: List[int] = field(default_factory=list)
    #: Block ends in JMPI/RET: successors are statically unknown.
    ends_indirect: bool = False

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        if not self.instructions:
            return self.start
        return self.instructions[-1][0] + INSTRUCTION_BYTES

    @property
    def terminator(self) -> Optional[Tuple[int, Instruction]]:
        """The final control instruction, if the block ends in one."""
        if not self.instructions:
            return None
        addr, instr = self.instructions[-1]
        if instr.is_branch or instr.op is Opcode.HALT:
            return addr, instr
        return None

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BasicBlock(#{self.index} {self.start:#x}..{self.end:#x} "
                f"succ={self.successors})")


class ControlFlowGraph:
    """Blocks plus address-indexed lookup helpers."""

    def __init__(self, program: Program, blocks: List[BasicBlock]) -> None:
        self.program = program
        self.blocks = blocks
        self._block_of_addr: Dict[int, int] = {}
        for block in blocks:
            for addr, _ in block.instructions:
                self._block_of_addr[addr] = block.index

    # ---- lookup --------------------------------------------------------

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def entry(self) -> BasicBlock:
        entry_point = self.program.entry_point
        assert entry_point is not None
        return self.block_at(entry_point)

    def block_at(self, address: int) -> BasicBlock:
        """The block containing the instruction at ``address``."""
        return self.blocks[self._block_of_addr[address]]

    def instruction_at(self, address: int) -> Optional[Instruction]:
        return self.program.instruction_at(address)

    def iter_instructions(self) -> Iterator[Tuple[int, Instruction]]:
        for block in self.blocks:
            yield from block.instructions

    # ---- successor views -----------------------------------------------

    def successor_blocks(self, block: BasicBlock,
                         indirect_to_all: bool = True) -> List[BasicBlock]:
        """Successors of ``block``, over-approximating indirect edges.

        With ``indirect_to_all`` (the default) a block ending in
        ``JMPI``/``RET`` flows to every block: a poisoned BTB entry or
        stale RAS prediction can steer speculation anywhere the program
        has code.  With it disabled, only the fall-through edge of the
        indirect terminator is kept.
        """
        if block.ends_indirect and indirect_to_all:
            return list(self.blocks)
        return [self.blocks[i] for i in block.successors]

    # ---- whole-graph queries ---------------------------------------------

    def reachable_from_entry(self) -> List[BasicBlock]:
        """Blocks reachable along direct edges from the entry block
        (indirect successors excluded — this is the *architectural*
        reachability used to spot speculation-only code)."""
        seen = {self.entry.index}
        worklist = [self.entry]
        while worklist:
            block = worklist.pop()
            for succ in block.successors:
                if succ not in seen:
                    seen.add(succ)
                    worklist.append(self.blocks[succ])
        return [b for b in self.blocks if b.index in seen]

    def unreachable_blocks(self) -> List[BasicBlock]:
        reachable = {b.index for b in self.reachable_from_entry()}
        return [b for b in self.blocks if b.index not in reachable]

    def render(self) -> str:
        """Human-readable block listing with edges."""
        names: Dict[int, str] = {}
        for name, addr in self.program.labels.items():
            names.setdefault(addr, name)
        lines = []
        for block in self.blocks:
            label = names.get(block.start)
            head = f"block {block.index} @ {block.start:#x}"
            if label:
                head += f" ({label})"
            succ = ", ".join(str(i) for i in block.successors) or "-"
            if block.ends_indirect:
                succ += " +indirect"
            lines.append(f"{head}  -> {succ}")
            for addr, instr in block.instructions:
                lines.append(f"    {addr:#06x}  {instr}")
        return "\n".join(lines)


def build_cfg(program: Program) -> ControlFlowGraph:
    """Partition ``program`` into basic blocks and wire the edges."""
    addresses = [addr for addr, _ in program.iter_addressed()]
    if not addresses:
        return ControlFlowGraph(program, [])
    known = set(addresses)

    leaders = set()
    entry_point = program.entry_point
    if entry_point is not None and entry_point in known:
        leaders.add(entry_point)
    leaders.add(addresses[0])
    for addr in program.labels.values():
        if addr in known:
            leaders.add(addr)
    for addr, instr in program.iter_addressed():
        if instr.is_branch or instr.op is Opcode.HALT:
            follower = addr + INSTRUCTION_BYTES
            if follower in known:
                leaders.add(follower)
            if instr.is_branch and not instr.is_indirect \
                    and instr.target in known:
                leaders.add(instr.target)

    # Slice the layout into blocks at leaders and after terminators.
    blocks: List[BasicBlock] = []
    current: List[Tuple[int, Instruction]] = []
    for addr, instr in program.iter_addressed():
        if addr in leaders and current:
            blocks.append(BasicBlock(len(blocks), current[0][0], current))
            current = []
        current.append((addr, instr))
        if instr.is_branch or instr.op is Opcode.HALT:
            blocks.append(BasicBlock(len(blocks), current[0][0], current))
            current = []
    if current:
        blocks.append(BasicBlock(len(blocks), current[0][0], current))

    start_index = {block.start: block.index for block in blocks}

    def link(src: BasicBlock, target_addr: int) -> None:
        target = start_index.get(target_addr)
        if target is not None and target not in src.successors:
            src.successors.append(target)

    for block in blocks:
        term = block.terminator
        if term is None:
            # Fell off the end of the block because the next address is
            # a leader: plain fall-through edge.
            link(block, block.end)
            continue
        addr, instr = term
        if instr.op is Opcode.HALT:
            continue
        if instr.is_indirect:
            block.ends_indirect = True
            # A cold BTB / empty RAS predicts not-taken: keep the
            # fall-through as the one statically-known edge.
            link(block, addr + INSTRUCTION_BYTES)
            continue
        if instr.is_conditional_branch:
            link(block, instr.target)
            link(block, addr + INSTRUCTION_BYTES)
            continue
        # JMP / CALL: always predicted taken with the static target.
        link(block, instr.target)

    for block in blocks:
        for succ in block.successors:
            blocks[succ].predecessors.append(block.index)
    return ControlFlowGraph(program, blocks)
