"""Cross-validation of the static analysis against the dynamic matrix.

The static suspect set must *over-approximate* the dynamic one: every
memory instruction the simulator ever flags as suspect (non-zero
security-dependence row sampled at issue) or blocks (Baseline issue
block / Cache-hit filter discard) must be statically suspect at the
same PC.  The converse does not hold — static analysis cannot know
which branches resolve before a load issues — and is reported only as
a precision metric.

Dynamic dependences are recorded with the ordinary
:class:`~repro.pipeline.trace.PipelineTracer`: every retired *and*
squashed instruction is captured, so wrong-path suspects (the
instructions Spectre actually cares about) are included.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..core.policy import SecurityConfig
from ..isa.program import Program
from ..memory.tlb import PageTable
from ..params import MachineParams, paper_config
from ..pipeline.processor import Processor
from ..pipeline.trace import PipelineTracer
from .cfg import build_cfg
from .corpus import (
    CORPUS_VARIANTS,
    GADGET_KINDS,
    build_corpus_variant,
    corpus_secret_words,
    ingested_gadgets,
)
from .taint import DEFAULT_WINDOW, analyze_program, static_suspect_pcs
from .valueset import refine_report


@dataclass
class DynamicSuspects:
    """Per-PC dynamic security-dependence evidence from one run."""

    #: PCs of memory instructions sampled suspect at issue.
    suspect_pcs: Set[int] = field(default_factory=set)
    #: PCs of memory instructions blocked by the defense.
    blocked_pcs: Set[int] = field(default_factory=set)
    #: Dynamic occurrence counts per PC (suspect events).
    counts: Dict[int, int] = field(default_factory=dict)

    @property
    def all_pcs(self) -> Set[int]:
        return self.suspect_pcs | self.blocked_pcs


def record_dynamic_suspects(
    program: Program,
    machine: Optional[MachineParams] = None,
    security: Optional[SecurityConfig] = None,
    page_table: Optional[PageTable] = None,
    max_cycles: int = 3_000_000,
) -> DynamicSuspects:
    """Run ``program`` and collect every PC with a recorded security
    dependence (suspect sample or block event), wrong path included."""
    machine = machine if machine is not None else paper_config()
    security = (security if security is not None
                else SecurityConfig.cache_hit_tpbuf())
    tracer = PipelineTracer(limit=10_000_000)
    cpu = Processor(program, machine=machine, security=security,
                    page_table=page_table, tracer=tracer)
    cpu.run(max_cycles=max_cycles)
    suspects = DynamicSuspects()
    for record in tracer.records:
        if record.suspect:
            suspects.suspect_pcs.add(record.pc)
            suspects.counts[record.pc] = suspects.counts.get(record.pc, 0) + 1
        if record.blocked:
            suspects.blocked_pcs.add(record.pc)
    return suspects


@dataclass
class CrossValidation:
    """Result of one static-vs-dynamic comparison."""

    name: str
    window: int
    static_pcs: Tuple[int, ...]
    dynamic: DynamicSuspects
    #: Dynamic suspect PCs with no static coverage (must be empty).
    uncovered: Tuple[int, ...]
    #: Static suspect PCs never observed dynamically (precision cost).
    unobserved: Tuple[int, ...]

    @property
    def covered(self) -> bool:
        """True iff static findings cover 100% of dynamic dependences."""
        return not self.uncovered

    @property
    def coverage(self) -> float:
        dynamic = len(self.dynamic.all_pcs)
        if dynamic == 0:
            return 1.0
        return (dynamic - len(self.uncovered)) / dynamic

    def render(self) -> str:
        lines = [
            f"cross-validation: {self.name} (window {self.window})",
            f"  static suspects : {len(self.static_pcs)} PCs",
            f"  dynamic suspects: {len(self.dynamic.all_pcs)} PCs "
            f"({len(self.dynamic.blocked_pcs)} blocked)",
            f"  coverage        : {self.coverage:.0%}"
            + ("  [static over-approximates dynamic: OK]"
               if self.covered else "  [GAP]"),
        ]
        for pc in self.uncovered:
            lines.append(f"    UNCOVERED dynamic suspect at {pc:#x}")
        return "\n".join(lines)


def cross_validate(
    program: Program,
    machine: Optional[MachineParams] = None,
    security: Optional[SecurityConfig] = None,
    page_table: Optional[PageTable] = None,
    window: Optional[int] = None,
    name: str = "program",
    max_cycles: int = 3_000_000,
) -> CrossValidation:
    """Compare the static suspect set with one simulated run.

    The static window defaults to the machine's ROB size — the bound
    that makes the over-approximation argument airtight (producer and
    consumer of a dynamic dependence are co-resident in the ROB).
    """
    machine = machine if machine is not None else paper_config()
    if window is None:
        window = machine.core.rob_entries
    cfg = build_cfg(program)
    static = static_suspect_pcs(program, window=window, cfg=cfg)
    dynamic = record_dynamic_suspects(
        program, machine=machine, security=security,
        page_table=page_table, max_cycles=max_cycles,
    )
    uncovered = tuple(sorted(dynamic.all_pcs - static))
    unobserved = tuple(sorted(static - dynamic.all_pcs))
    return CrossValidation(
        name=name,
        window=window,
        static_pcs=tuple(sorted(static)),
        dynamic=dynamic,
        uncovered=uncovered,
        unobserved=unobserved,
    )


# ---------------------------------------------------------------------------
# Precision on the labelled gadget corpus
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PrecisionCase:
    """Scan + refinement verdict for one labelled corpus program.

    Ground truth comes from the corpus construction: ``unsafe``
    variants are real gadgets, ``fenced`` and ``masked`` ones are
    mitigated and must ultimately not be flagged.
    """

    kind: str
    variant: str
    #: Label: does the program contain an exploitable gadget?
    is_gadget: bool
    findings: int
    confirmed: int
    refuted: int

    @property
    def flagged_before(self) -> bool:
        return self.findings > 0

    @property
    def flagged_after(self) -> bool:
        return self.confirmed > 0

    @property
    def false_positive_before(self) -> bool:
        return not self.is_gadget and self.flagged_before

    @property
    def false_positive_after(self) -> bool:
        return not self.is_gadget and self.flagged_after

    @property
    def false_negative_before(self) -> bool:
        return self.is_gadget and not self.flagged_before

    @property
    def false_negative_after(self) -> bool:
        return self.is_gadget and not self.flagged_after


@dataclass
class CorpusPrecision:
    """False-positive / false-negative rates of the scanner on the
    gadget corpus, before and after value-set refinement."""

    window: int
    cases: Tuple[PrecisionCase, ...]

    def _rate(self, hits: int, total: int) -> float:
        return hits / total if total else 0.0

    @property
    def benign_cases(self) -> int:
        return sum(1 for case in self.cases if not case.is_gadget)

    @property
    def gadget_cases(self) -> int:
        return sum(1 for case in self.cases if case.is_gadget)

    @property
    def fp_rate_before(self) -> float:
        return self._rate(
            sum(1 for c in self.cases if c.false_positive_before),
            self.benign_cases,
        )

    @property
    def fp_rate_after(self) -> float:
        return self._rate(
            sum(1 for c in self.cases if c.false_positive_after),
            self.benign_cases,
        )

    @property
    def fn_rate_before(self) -> float:
        return self._rate(
            sum(1 for c in self.cases if c.false_negative_before),
            self.gadget_cases,
        )

    @property
    def fn_rate_after(self) -> float:
        return self._rate(
            sum(1 for c in self.cases if c.false_negative_after),
            self.gadget_cases,
        )

    def render(self) -> str:
        lines = [
            f"corpus precision (window {self.window}, "
            f"{len(self.cases)} programs):",
            f"  false-positive rate: {self.fp_rate_before:.0%} before "
            f"-> {self.fp_rate_after:.0%} after refinement",
            f"  false-negative rate: {self.fn_rate_before:.0%} before "
            f"-> {self.fn_rate_after:.0%} after refinement",
        ]
        for case in self.cases:
            verdict = (f"{case.findings} finding(s), "
                       f"{case.confirmed} confirmed, "
                       f"{case.refuted} refuted")
            lines.append(f"    {case.kind}-{case.variant:<7} "
                         f"[{'gadget' if case.is_gadget else 'benign'}] "
                         f"{verdict}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "window": self.window,
            "fp_rate_before": self.fp_rate_before,
            "fp_rate_after": self.fp_rate_after,
            "fn_rate_before": self.fn_rate_before,
            "fn_rate_after": self.fn_rate_after,
            "cases": [
                {
                    "kind": c.kind,
                    "variant": c.variant,
                    "is_gadget": c.is_gadget,
                    "findings": c.findings,
                    "confirmed": c.confirmed,
                    "refuted": c.refuted,
                }
                for c in self.cases
            ],
        }


def corpus_precision(
    window: int = DEFAULT_WINDOW,
    include_ingested: bool = True,
) -> CorpusPrecision:
    """Scan every corpus variant and measure refinement precision.

    The refutation layer must remove the masked false positives
    without losing any real gadget: ``fp_rate_after == 0`` and
    ``fn_rate_after == 0`` are asserted by the acceptance tests.

    Externally ingested gadgets (fuzz-found variants registered via
    :func:`repro.analysis.corpus.register_ingested_gadget`) are
    appended *after* the built-in grid, so the baseline cases keep
    their positions and the historical metrics stay comparable.
    """
    secrets = corpus_secret_words()
    cases = []
    for kind in GADGET_KINDS:
        for variant in CORPUS_VARIANTS:
            program = build_corpus_variant(kind, variant)
            report = analyze_program(program, window=window,
                                     name=f"{kind}-{variant}")
            refined = refine_report(program, report, secret_words=secrets)
            cases.append(PrecisionCase(
                kind=kind,
                variant=variant,
                is_gadget=(variant == "unsafe"),
                findings=len(report.findings),
                confirmed=len(refined.confirmed),
                refuted=len(refined.refuted),
            ))
    if include_ingested:
        for gadget in ingested_gadgets():
            program = gadget.build()
            report = analyze_program(program, window=window,
                                     name=gadget.name)
            refined = refine_report(program, report,
                                    secret_words=gadget.secrets())
            cases.append(PrecisionCase(
                kind=gadget.name,
                variant="ingested",
                is_gadget=gadget.is_gadget,
                findings=len(report.findings),
                confirmed=len(refined.confirmed),
                refuted=len(refined.refuted),
            ))
    return CorpusPrecision(window=window, cases=tuple(cases))
