"""Cross-validation of the static analysis against the dynamic matrix.

The static suspect set must *over-approximate* the dynamic one: every
memory instruction the simulator ever flags as suspect (non-zero
security-dependence row sampled at issue) or blocks (Baseline issue
block / Cache-hit filter discard) must be statically suspect at the
same PC.  The converse does not hold — static analysis cannot know
which branches resolve before a load issues — and is reported only as
a precision metric.

Dynamic dependences are recorded with the ordinary
:class:`~repro.pipeline.trace.PipelineTracer`: every retired *and*
squashed instruction is captured, so wrong-path suspects (the
instructions Spectre actually cares about) are included.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..core.policy import SecurityConfig
from ..isa.program import Program
from ..memory.tlb import PageTable
from ..params import MachineParams, paper_config
from ..pipeline.processor import Processor
from ..pipeline.trace import PipelineTracer
from .cfg import build_cfg
from .taint import static_suspect_pcs


@dataclass
class DynamicSuspects:
    """Per-PC dynamic security-dependence evidence from one run."""

    #: PCs of memory instructions sampled suspect at issue.
    suspect_pcs: Set[int] = field(default_factory=set)
    #: PCs of memory instructions blocked by the defense.
    blocked_pcs: Set[int] = field(default_factory=set)
    #: Dynamic occurrence counts per PC (suspect events).
    counts: Dict[int, int] = field(default_factory=dict)

    @property
    def all_pcs(self) -> Set[int]:
        return self.suspect_pcs | self.blocked_pcs


def record_dynamic_suspects(
    program: Program,
    machine: Optional[MachineParams] = None,
    security: Optional[SecurityConfig] = None,
    page_table: Optional[PageTable] = None,
    max_cycles: int = 3_000_000,
) -> DynamicSuspects:
    """Run ``program`` and collect every PC with a recorded security
    dependence (suspect sample or block event), wrong path included."""
    machine = machine if machine is not None else paper_config()
    security = (security if security is not None
                else SecurityConfig.cache_hit_tpbuf())
    tracer = PipelineTracer(limit=10_000_000)
    cpu = Processor(program, machine=machine, security=security,
                    page_table=page_table, tracer=tracer)
    cpu.run(max_cycles=max_cycles)
    suspects = DynamicSuspects()
    for record in tracer.records:
        if record.suspect:
            suspects.suspect_pcs.add(record.pc)
            suspects.counts[record.pc] = suspects.counts.get(record.pc, 0) + 1
        if record.blocked:
            suspects.blocked_pcs.add(record.pc)
    return suspects


@dataclass
class CrossValidation:
    """Result of one static-vs-dynamic comparison."""

    name: str
    window: int
    static_pcs: Tuple[int, ...]
    dynamic: DynamicSuspects
    #: Dynamic suspect PCs with no static coverage (must be empty).
    uncovered: Tuple[int, ...]
    #: Static suspect PCs never observed dynamically (precision cost).
    unobserved: Tuple[int, ...]

    @property
    def covered(self) -> bool:
        """True iff static findings cover 100% of dynamic dependences."""
        return not self.uncovered

    @property
    def coverage(self) -> float:
        dynamic = len(self.dynamic.all_pcs)
        if dynamic == 0:
            return 1.0
        return (dynamic - len(self.uncovered)) / dynamic

    def render(self) -> str:
        lines = [
            f"cross-validation: {self.name} (window {self.window})",
            f"  static suspects : {len(self.static_pcs)} PCs",
            f"  dynamic suspects: {len(self.dynamic.all_pcs)} PCs "
            f"({len(self.dynamic.blocked_pcs)} blocked)",
            f"  coverage        : {self.coverage:.0%}"
            + ("  [static over-approximates dynamic: OK]"
               if self.covered else "  [GAP]"),
        ]
        for pc in self.uncovered:
            lines.append(f"    UNCOVERED dynamic suspect at {pc:#x}")
        return "\n".join(lines)


def cross_validate(
    program: Program,
    machine: Optional[MachineParams] = None,
    security: Optional[SecurityConfig] = None,
    page_table: Optional[PageTable] = None,
    window: Optional[int] = None,
    name: str = "program",
    max_cycles: int = 3_000_000,
) -> CrossValidation:
    """Compare the static suspect set with one simulated run.

    The static window defaults to the machine's ROB size — the bound
    that makes the over-approximation argument airtight (producer and
    consumer of a dynamic dependence are co-resident in the ROB).
    """
    machine = machine if machine is not None else paper_config()
    if window is None:
        window = machine.core.rob_entries
    cfg = build_cfg(program)
    static = static_suspect_pcs(program, window=window, cfg=cfg)
    dynamic = record_dynamic_suspects(
        program, machine=machine, security=security,
        page_table=page_table, max_cycles=max_cycles,
    )
    uncovered = tuple(sorted(dynamic.all_pcs - static))
    unobserved = tuple(sorted(static - dynamic.all_pcs))
    return CrossValidation(
        name=name,
        window=window,
        static_pcs=tuple(sorted(static)),
        dynamic=dynamic,
        uncovered=uncovered,
        unobserved=unobserved,
    )
